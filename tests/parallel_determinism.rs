//! Property tests for the determinism contract of the parallel execution
//! layer: every parallelized path — blocked matmul kernels, K-fold
//! resampling fits, batched PI serving, fold assignment — must produce
//! bit-identical results at any requested thread count (see DESIGN.md,
//! "Determinism contract").

use cardest::conformal::{
    assign_folds, AbsoluteResidual, CvPlus, PiService, PiServiceConfig,
};
use cardest::estimators::fit_difficulty_model;
use cardest::gbdt::GbdtConfig;
use cardest::nn::Matrix;
use ce_parallel::with_threads;
use proptest::prelude::*;

/// Deterministic pseudo-random matrix from an LCG stream.
fn lcg_matrix(rows: usize, cols: usize, seed: u32) -> Matrix {
    let mut state = seed | 1;
    let data: Vec<Vec<f32>> = (0..rows)
        .map(|_| {
            (0..cols)
                .map(|_| {
                    state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                    (state >> 16) as f32 / 65_536.0 - 0.5
                })
                .collect()
        })
        .collect();
    Matrix::from_rows(&data)
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.data().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    /// All three blocked kernels are bit-identical at 1 vs 4 threads for
    /// arbitrary shapes (including ones straddling the K-tile boundary).
    #[test]
    fn matmul_kernels_are_thread_count_invariant(
        m in 1usize..10,
        k in 1usize..200,
        n in 1usize..10,
        seed in any::<u32>(),
    ) {
        let a = lcg_matrix(m, k, seed);
        let b = lcg_matrix(k, n, seed.wrapping_add(1));
        let c = lcg_matrix(m, n, seed.wrapping_add(2));
        let d = lcg_matrix(m, n, seed.wrapping_add(3));

        let serial = with_threads(1, || (a.matmul(&b), a.t_matmul(&c), c.matmul_t(&d)));
        let wide = with_threads(4, || (a.matmul(&b), a.t_matmul(&c), c.matmul_t(&d)));
        prop_assert_eq!(bits(&serial.0), bits(&wide.0));
        prop_assert_eq!(bits(&serial.1), bits(&wide.1));
        prop_assert_eq!(bits(&serial.2), bits(&wide.2));
    }

    /// CV+ with a GBDT trainer: fold fits and out-of-fold residuals run in
    /// parallel, yet the calibrated intervals match bitwise at 1 vs 4
    /// threads.
    #[test]
    fn cv_plus_fit_is_thread_count_invariant(
        n in 12usize..40,
        k in 2usize..5,
        seed in any::<u64>(),
    ) {
        let x: Vec<Vec<f32>> = (0..n).map(|i| vec![i as f32, (i * i % 7) as f32]).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() + i as f64 * 0.1).collect();
        let trainer = |x: &[Vec<f32>], y: &[f64], _seed: u64| {
            fit_difficulty_model(x, y, &GbdtConfig { n_trees: 12, ..Default::default() })
        };

        let serial = with_threads(1, || CvPlus::fit(&trainer, &x, &y, k, 0.1, seed));
        let wide = with_threads(4, || CvPlus::fit(&trainer, &x, &y, k, 0.1, seed));
        for f in &x {
            let a = serial.interval(f);
            let b = wide.interval(f);
            prop_assert_eq!(a.lo.to_bits(), b.lo.to_bits());
            prop_assert_eq!(a.hi.to_bits(), b.hi.to_bits());
        }
    }

    /// Batched serving equals the serial per-query loop, bit for bit, at
    /// any thread count.
    #[test]
    fn predict_interval_batch_is_thread_count_invariant(
        n_calib in 4usize..40,
        n_query in 1usize..30,
    ) {
        let calib_x: Vec<Vec<f32>> = (0..n_calib).map(|i| vec![i as f32]).collect();
        let calib_y: Vec<f64> =
            (0..n_calib).map(|i| i as f64 + ((i % 5) as f64 - 2.0) * 0.1).collect();
        let queries: Vec<Vec<f32>> =
            (0..n_query).map(|i| vec![i as f32 * 1.5 - 3.0]).collect();
        let model = |f: &[f32]| f[0] as f64;
        let service = PiService::new(
            model,
            AbsoluteResidual,
            &calib_x,
            &calib_y,
            PiServiceConfig::default(),
        );

        let one_by_one: Vec<_> = queries.iter().map(|q| service.interval(q)).collect();
        let serial = with_threads(1, || service.predict_interval_batch(&queries));
        let wide = with_threads(4, || service.predict_interval_batch(&queries));
        prop_assert_eq!(&serial, &one_by_one);
        prop_assert_eq!(&wide, &one_by_one);
    }

    /// Fold assignment is a pure function of `(n, k, seed)` — the ambient
    /// thread count must not leak into it — and stays balanced.
    #[test]
    fn assign_folds_is_thread_count_invariant(
        n in 2usize..200,
        k in 2usize..8,
        seed in any::<u64>(),
    ) {
        let k = k.min(n);
        let serial = with_threads(1, || assign_folds(n, k, seed));
        let wide = with_threads(4, || assign_folds(n, k, seed));
        prop_assert_eq!(&serial, &wide);

        let mut counts = vec![0usize; k];
        for &f in &serial {
            prop_assert!(f < k);
            counts[f] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        prop_assert!(max - min <= 1, "unbalanced folds: {:?}", counts);
    }
}
