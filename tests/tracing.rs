//! End-to-end tests for distributed request tracing (DESIGN.md §13): trace
//! ID propagation across the router→shard hop, per-stage latency
//! attribution, the anomaly flight recorder, and the observability
//! satellites (Prometheus content type, fleet-labeled aggregation, poller
//! counters).
//!
//! The trace rings, sample rate, and anomaly window are process-global by
//! design (one flight recorder per process), so every test here serializes
//! on a local mutex and resets the subsystem before touching it.

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use cardest::conformal::{
    AbsoluteResidual, BreakerConfig, HealConfig, OnlineConformal, PiServiceConfig,
    ResilientService, SelfHealingService,
};
use cardest::router::{start_cluster_router, ClusterRouterConfig, ClusterRouterHandle};
use cardest::serve::{start_server, HttpServeConfig, ServeEngine, ServeHandle};
use cardest::server::{
    HealthConfig, HttpClient, HttpServer, Request, Response, ServerConfig, TRACE_HEADER,
};
use ce_telemetry::trace;

/// Serializes tests in this binary: the trace subsystem is process-global.
fn trace_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A real PI-serving shard (tiny calibrated model) bound on an ephemeral
/// port. `delay` is injected into every model forward — tests that assert
/// on stage attribution use it to make inference the dominant cost, so
/// scheduling jitter stays inside their tolerance.
fn pi_shard(delay: Duration) -> ServeHandle {
    let n = 32usize;
    let xs: Vec<Vec<f32>> = (0..n).map(|i| vec![i as f32 / n as f32]).collect();
    let ys: Vec<f64> = (0..n).map(|i| i as f64 / n as f64 + 0.01).collect();
    let model = move |f: &[f32]| {
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        f[0] as f64
    };
    let healing = SelfHealingService::new(
        model,
        AbsoluteResidual,
        &xs,
        &ys,
        PiServiceConfig::default(),
        HealConfig::default(),
    );
    let engine = Arc::new(ServeEngine::new(healing, Vec::new(), 1));
    start_server(
        engine,
        "127.0.0.1:0",
        HttpServeConfig { workers: 2, ..Default::default() },
    )
    .expect("bind pi shard")
}

/// A router over one live PI shard, with a fast prober so readiness
/// settles immediately.
fn router_over(shard: &ServeHandle) -> ClusterRouterHandle {
    start_cluster_router(
        &[("shard-0".to_string(), shard.local_addr())],
        "127.0.0.1:0",
        ClusterRouterConfig {
            health: HealthConfig {
                probe_interval: Duration::from_millis(10),
                fail_threshold: 2,
                recover_threshold: 1,
                ..HealthConfig::default()
            },
            ..Default::default()
        },
    )
    .expect("bind router")
}

const PREDICT_BODY: &[u8] = b"{\"features\":[[0.5]]}";

/// Waits for a trace record to land in the flight recorder. The serving
/// thread publishes it right *after* flushing the response bytes, so a
/// client that just read the response can race the publish by a hair.
fn wait_for_record(id: u128) -> trace::TraceRecord {
    let deadline = Instant::now() + Duration::from_secs(2);
    loop {
        if let Some(r) = trace::trace_snapshot().into_iter().find(|r| r.id == id) {
            return r;
        }
        assert!(Instant::now() < deadline, "trace {id:x} never reached the flight recorder");
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn post_predict(
    client: &mut HttpClient,
    trace_header: Option<&str>,
) -> cardest::server::ClientResponse {
    let headers: Vec<(&str, &str)> = match trace_header {
        Some(v) => vec![("content-type", "application/json"), (TRACE_HEADER, v)],
        None => vec![("content-type", "application/json")],
    };
    client
        .request("POST", "/v1/predict", headers, PREDICT_BODY)
        .expect("predict request")
}

/// A client-minted trace ID rides the request direct to a shard and comes
/// back on the response — even with head sampling off, because an explicit
/// upstream ID forces sampling at this hop.
#[test]
fn client_trace_id_round_trips_direct_to_shard() {
    let _guard = trace_lock();
    trace::reset();
    trace::set_sample_rate(0);
    let shard = pi_shard(Duration::ZERO);
    let mut client = HttpClient::connect(shard.local_addr()).expect("connect");

    // No header, sampling off: the response carries no trace ID.
    let resp = post_predict(&mut client, None);
    assert_eq!(resp.status, 200);
    assert_eq!(resp.trace_id(), None, "untraced request must not mint an ID");

    let id = "00000000000000000000000000c0ffee";
    let resp = post_predict(&mut client, Some(id));
    assert_eq!(resp.status, 200);
    assert_eq!(resp.trace_id(), Some(id), "shard must echo the client's trace ID");
    let stages = resp.header("x-ce-stages").expect("stage breakdown header");
    assert!(stages.contains("infer="), "stage header missing infer: {stages}");

    // The flight recorder retained the record under the client's ID.
    wait_for_record(0xc0ffee);
    shard.drain();
}

/// Satellite: a request sent *through the router* returns the same trace
/// ID the client supplied — the router adopts it, propagates it to the
/// shard, and re-emits it on the merged response.
#[test]
fn router_echoes_the_clients_trace_id_end_to_end() {
    let _guard = trace_lock();
    trace::reset();
    trace::set_sample_rate(0);
    let shard = pi_shard(Duration::ZERO);
    let router = router_over(&shard);
    let mut client = HttpClient::connect(router.local_addr()).expect("connect");

    let id = "0000000000000000000000000000beef";
    let resp = post_predict(&mut client, Some(id));
    assert_eq!(resp.status, 200, "body: {}", String::from_utf8_lossy(&resp.body));
    assert_eq!(resp.trace_id(), Some(id), "router must echo the client's trace ID");
    // The router's merged stage view spans both hops: its own transport
    // stages plus the shard-reported inference breakdown.
    let stages = resp.header("x-ce-stages").expect("merged stage header");
    for stage in ["network=", "route=", "infer="] {
        assert!(stages.contains(stage), "merged stages missing {stage}: {stages}");
    }
    // Exactly one trace header on the wire — the router strips the shard's
    // echo before emitting its own.
    let count = resp.headers.iter().filter(|(k, _)| k == TRACE_HEADER).count();
    assert_eq!(count, 1, "duplicate trace headers on the routed response");

    router.drain();
    shard.drain();
}

/// Malformed or oversized `x-ce-trace` values are ignored — never an
/// error, never a minted trace — and the connection keeps working.
#[test]
fn malformed_trace_headers_are_ignored_without_poisoning_the_connection() {
    let _guard = trace_lock();
    trace::reset();
    trace::set_sample_rate(0);
    let shard = pi_shard(Duration::ZERO);
    let router = router_over(&shard);
    let oversized = "f".repeat(1024);
    let hostile = [
        "deadbeef",                            // too short
        "DEADBEEFDEADBEEFDEADBEEFDEADBEEF",    // uppercase hex
        "00000000000000000000000000000000",    // all-zero (reserved)
        "zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz",    // non-hex
        "00000000000000000000000000c0ffeez",   // trailing junk
        oversized.as_str(),                    // oversized
    ];
    for addr in [shard.local_addr(), router.local_addr()] {
        let mut client = HttpClient::connect(addr).expect("connect");
        for bad in hostile {
            let resp = post_predict(&mut client, Some(bad));
            assert_eq!(resp.status, 200, "malformed trace header must not fail the request");
            assert_eq!(resp.trace_id(), None, "malformed ID {bad:?} must not be adopted");
        }
        // Same connection, valid request: the parser state survived.
        let resp = post_predict(&mut client, Some("00000000000000000000000000000abc"));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.trace_id(), Some("00000000000000000000000000000abc"));
    }
    router.drain();
    shard.drain();
}

/// Acceptance: one traced request's transport stages sum to within 10% of
/// the client-observed end-to-end latency. The model forward is slowed to
/// 25ms so fixed costs — loopback RTT, thread wakeups — stay inside the
/// tolerance.
#[test]
fn stage_attribution_accounts_for_the_observed_latency() {
    let _guard = trace_lock();
    trace::reset();
    trace::set_sample_rate(0);
    let shard = pi_shard(Duration::from_millis(25));
    let mut client = HttpClient::connect(shard.local_addr()).expect("connect");
    // Warm the connection and the serving path untraced.
    assert_eq!(post_predict(&mut client, None).status, 200);

    let id = "00000000000000000000000000001a7e";
    let t0 = Instant::now();
    let resp = post_predict(&mut client, Some(id));
    let e2e_ns = t0.elapsed().as_nanos() as u64;
    assert_eq!(resp.status, 200);
    assert_eq!(resp.trace_id(), Some(id));

    let record = wait_for_record(0x1a7e);
    // Sum only the transport stages: telemetry span names (pi_batch, …)
    // nest inside `infer` and would double-count.
    let sum: u64 = record
        .stages()
        .iter()
        .filter(|s| trace::TRANSPORT_STAGES.contains(&s.name))
        .map(|s| s.ns)
        .sum();
    let delay_ns = 25_000_000u64;
    assert!(e2e_ns >= delay_ns, "the model delay bounds e2e from below");
    assert!(
        sum <= e2e_ns,
        "server-side stages ({sum}ns) cannot exceed client e2e ({e2e_ns}ns)"
    );
    assert!(
        sum >= e2e_ns - e2e_ns / 10,
        "stages must attribute >=90% of e2e: sum {sum}ns vs e2e {e2e_ns}ns \
         (stages: {:?})",
        record.stages()
    );
    shard.drain();
}

/// Acceptance: tripping a circuit breaker freezes a flight-recorder
/// snapshot containing the triggering event and at least one trace that
/// preceded it.
#[test]
fn breaker_open_freezes_an_anomaly_snapshot_with_preceding_traces() {
    let _guard = trace_lock();
    trace::reset();
    trace::set_sample_rate(1);
    let shard = pi_shard(Duration::ZERO);
    let mut client = HttpClient::connect(shard.local_addr()).expect("connect");

    // A healthy traced request first, so the dump has history to show.
    let id = "0000000000000000000000000000f00d";
    assert_eq!(post_predict(&mut client, Some(id)).status, 200);
    wait_for_record(0xf00d);

    // Force a breaker trip: a primary that only produces NaN, threshold 1.
    let nan_model = |_: &[f32]| f64::NAN;
    let primary = OnlineConformal::new(nan_model, AbsoluteResidual, &[], &[], 0.1);
    let mut svc = ResilientService::new(Box::new(primary))
        .with_breaker(BreakerConfig { failure_threshold: 1, cooldown_queries: 8 });
    svc.interval(&[0.5]).expect("conservative floor still answers");
    assert!(svc.stats().breaker_trips >= 1, "breaker must have tripped");

    let dump = trace::last_anomaly_dump().expect("anomaly must freeze a snapshot");
    assert!(dump.contains("breaker_open"), "dump missing the trigger: {dump}");
    assert!(
        dump.contains("0000000000000000000000000000f00d"),
        "dump missing the preceding trace"
    );
    // The live debug endpoint serves the same flight recorder.
    let resp = client.get("/debug/trace").expect("debug endpoint");
    assert_eq!(resp.status, 200);
    let body = String::from_utf8_lossy(&resp.body).to_string();
    assert!(body.contains("breaker_open"), "/debug/trace missing the event");
    assert!(body.contains("\"anomaly\": true"), "event not flagged anomalous");
    shard.drain();
}

/// Satellite regression: every `/metrics` endpoint — the shard's, and the
/// router's with telemetry on *and* off — declares the Prometheus
/// text-exposition version in its Content-Type.
#[test]
fn metrics_content_type_carries_the_prometheus_version_everywhere() {
    let _guard = trace_lock();
    trace::reset();
    trace::set_sample_rate(0);
    let shard = pi_shard(Duration::ZERO);
    let router = router_over(&shard);
    let was_enabled = ce_telemetry::enabled();
    for telemetry_on in [true, false] {
        ce_telemetry::set_enabled(telemetry_on);
        for addr in [shard.local_addr(), router.local_addr()] {
            let mut client = HttpClient::connect(addr).expect("connect");
            let resp = client.get("/metrics").expect("scrape");
            assert_eq!(resp.status, 200);
            let ct = resp.header("content-type").expect("content type");
            assert!(
                ct.contains("version=0.0.4"),
                "telemetry={telemetry_on}: missing exposition version in {ct:?}"
            );
        }
    }
    ce_telemetry::set_enabled(was_enabled);
    router.drain();
    shard.drain();
}

/// Satellite: the event-driven poller's counters surface on the shard's
/// `/metrics` exposition.
#[test]
fn poller_counters_surface_in_shard_metrics() {
    let _guard = trace_lock();
    trace::reset();
    trace::set_sample_rate(0);
    let was_enabled = ce_telemetry::enabled();
    ce_telemetry::set_enabled(true);
    let shard = pi_shard(Duration::ZERO);
    let mut client = HttpClient::connect(shard.local_addr()).expect("connect");
    assert_eq!(post_predict(&mut client, None).status, 200);
    let resp = client.get("/metrics").expect("scrape");
    assert_eq!(resp.status, 200);
    let body = String::from_utf8_lossy(&resp.body).to_string();
    for metric in [
        "cardest_serve_poller_wakeups",
        "cardest_serve_poller_dispatches",
        "cardest_serve_parked_conns",
        "cardest_serve_dispatch_depth",
    ] {
        assert!(body.contains(metric), "missing {metric} in exposition:\n{body}");
    }
    ce_telemetry::set_enabled(was_enabled);
    shard.drain();
}

/// The router's `/metrics` aggregates every live shard's exposition with a
/// `shard="…"` label — and hostile shard names (quotes, newlines) are
/// escaped per the Prometheus text format.
#[test]
fn router_metrics_aggregate_the_fleet_with_escaped_labels() {
    let _guard = trace_lock();
    trace::reset();
    trace::set_sample_rate(0);
    let was_enabled = ce_telemetry::enabled();
    ce_telemetry::set_enabled(true);
    let shard = pi_shard(Duration::ZERO);
    // A second "shard" with a hostile name, exposing one bare metric line.
    let hostile = HttpServer::bind(
        "127.0.0.1:0",
        ServerConfig::default(),
        Arc::new(|req: &Request| match (req.method, req.path()) {
            ("GET", "/readyz") => Response::text(200, "ready"),
            ("GET", "/metrics") => Response::new(200)
                .header("Content-Type", "text/plain; version=0.0.4")
                .body("# TYPE hostile_up gauge\nhostile_up 1\n".to_string()),
            _ => Response::text(404, "nope"),
        }),
    )
    .expect("bind hostile shard");
    let router = start_cluster_router(
        &[
            ("shard-0".to_string(), shard.local_addr()),
            ("ev\"il\nshard".to_string(), hostile.local_addr()),
        ],
        "127.0.0.1:0",
        ClusterRouterConfig::default(),
    )
    .expect("bind router");
    let mut client = HttpClient::connect(router.local_addr()).expect("connect");
    // Prime the shard's own metrics registry, then scrape the router.
    let mut shard_client = HttpClient::connect(shard.local_addr()).expect("connect");
    assert_eq!(shard_client.get("/metrics").expect("prime").status, 200);
    let resp = client.get("/metrics").expect("scrape");
    assert_eq!(resp.status, 200);
    let body = String::from_utf8_lossy(&resp.body).to_string();
    assert!(
        body.contains("{shard=\"shard-0\"}") || body.contains("shard=\"shard-0\","),
        "missing shard-labeled samples:\n{body}"
    );
    assert!(
        body.contains("hostile_up{shard=\"ev\\\"il\\nshard\"} 1"),
        "hostile shard name not escaped:\n{body}"
    );
    // The merged view must stay free of per-shard comment lines (duplicate
    // # TYPE metadata would make the exposition invalid).
    assert!(!body.contains("# TYPE hostile_up"), "shard comments must be dropped");
    ce_telemetry::set_enabled(was_enabled);
    router.drain();
    hostile.shutdown();
    shard.drain();
}
