//! Property and integration tests for cluster mode: the consistent-hash
//! ring's placement laws, and the routed fleet's failover behavior over
//! real loopback shards.
//!
//! The ring properties are the load-bearing guarantees of DESIGN.md §11:
//!
//! - **Balance** — with enough virtual nodes, no shard owns a wildly
//!   disproportionate share of the keyspace.
//! - **Minimal movement** — ejecting a shard moves *only* that shard's
//!   keys (everyone else's placement is untouched), and readmitting it
//!   restores the exact original placement, so a restarted shard gets its
//!   own keys back.
//! - **Determinism** — placement is a pure function of (shard names,
//!   vnodes, key): two independently built rings agree on every key, which
//!   is what lets any router replica (or an offline audit) compute where a
//!   query lives.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use cardest::router::request_signature;
use cardest::server::{
    Fleet, HashRing, Headers, HealthConfig, HttpClient, HttpServer, Request, Response,
    Router, RouterConfig, ServerConfig,
};
use proptest::prelude::*;

/// Builds a ring over `n` shards named `shard-0..n`.
fn ring(n: usize, vnodes: usize) -> HashRing {
    let names: Vec<String> = (0..n).map(|i| format!("shard-{i}")).collect();
    HashRing::new(&names, vnodes)
}

/// Key signatures derived from a seed — arbitrary but reproducible.
fn signatures(seed: u64, count: usize) -> Vec<u64> {
    (0..count as u64)
        .map(|i| request_signature(format!("key-{seed}-{i}").as_bytes()))
        .collect()
}

proptest! {
    /// Balance: over thousands of keys, every shard's share stays within
    /// a constant factor of fair (vnodes smooth the ring enough that no
    /// shard is starved or doubly loaded beyond bound).
    #[test]
    fn ring_distributes_keys_roughly_evenly(
        n_shards in 2usize..8,
        seed in 0u64..1_000,
    ) {
        let ring = ring(n_shards, 512);
        let keys = signatures(seed, 4_000);
        let mut counts: HashMap<String, usize> = HashMap::new();
        for &k in &keys {
            *counts.entry(ring.primary(k).expect("live ring").to_string()).or_default() += 1;
        }
        let fair = keys.len() as f64 / n_shards as f64;
        for i in 0..n_shards {
            let got = *counts.get(&format!("shard-{i}")).unwrap_or(&0) as f64;
            prop_assert!(
                got > fair * 0.5 && got < fair * 1.7,
                "shard-{} owns {} of {} keys (fair share {:.0})",
                i, got, keys.len(), fair
            );
        }
    }

    /// Minimal movement: ejecting one shard relocates exactly that shard's
    /// keys — every key owned by a surviving shard keeps its owner — and
    /// readmission restores the original placement for every key.
    #[test]
    fn eject_moves_only_the_dead_shards_keys_and_readmit_restores(
        n_shards in 2usize..8,
        victim in 0usize..8,
        seed in 0u64..1_000,
    ) {
        let victim = victim % n_shards;
        let victim_name = format!("shard-{victim}");
        let mut ring = ring(n_shards, 64);
        let keys = signatures(seed, 1_000);
        let before: Vec<String> =
            keys.iter().map(|&k| ring.primary(k).expect("live").to_string()).collect();
        ring.eject(&victim_name);
        for (&k, owner_before) in keys.iter().zip(&before) {
            let owner_after = ring.primary(k).expect("survivors stay live");
            if owner_before == &victim_name {
                prop_assert!(
                    owner_after != victim_name,
                    "key still on the ejected shard"
                );
            } else {
                prop_assert_eq!(
                    owner_after, owner_before.as_str(),
                    "a survivor's key moved on an unrelated ejection"
                );
            }
        }
        ring.readmit(&victim_name);
        for (&k, owner_before) in keys.iter().zip(&before) {
            prop_assert_eq!(
                ring.primary(k).expect("live"), owner_before.as_str(),
                "readmission must restore the exact original placement"
            );
        }
    }

    /// Determinism: placement and failover order are pure functions of the
    /// configuration — two independently constructed rings agree on every
    /// key's owner, on the full candidate walk, and on every replica set.
    #[test]
    fn independently_built_rings_agree_on_every_placement(
        n_shards in 1usize..8,
        vnodes in 1usize..128,
        seed in 0u64..1_000,
    ) {
        let a = ring(n_shards, vnodes);
        let b = ring(n_shards, vnodes);
        for &k in &signatures(seed, 500) {
            prop_assert_eq!(a.primary(k), b.primary(k));
            prop_assert_eq!(a.candidates(k), b.candidates(k));
            prop_assert_eq!(a.replica_set(k, 2), b.replica_set(k, 2));
            prop_assert_eq!(a.replica_set(k, 3), b.replica_set(k, 3));
        }
    }

    /// Replica sets are distinct live prefixes of the candidate walk: the
    /// set has exactly `min(r, live)` members, no duplicates, every member
    /// live, and failover order (the walk) starts with exactly the set.
    #[test]
    fn replica_sets_are_distinct_live_prefixes_of_the_candidate_walk(
        n_shards in 1usize..8,
        r in 1usize..5,
        ejected in 0usize..8,
        seed in 0u64..1_000,
    ) {
        let mut ring = ring(n_shards, 32);
        if n_shards > 1 {
            ring.eject(&format!("shard-{}", ejected % n_shards));
        }
        for &k in &signatures(seed, 200) {
            let set = ring.replica_set(k, r);
            prop_assert_eq!(set.len(), r.min(ring.live_count()));
            let mut uniq = set.clone();
            uniq.sort_unstable();
            uniq.dedup();
            prop_assert_eq!(uniq.len(), set.len(), "duplicate replica");
            for name in &set {
                prop_assert!(ring.is_live(name), "dead shard in a replica set");
            }
            prop_assert_eq!(&ring.candidates(k)[..set.len()], &set[..]);
        }
    }

    /// Ejection stability: only replica sets containing the dead shard
    /// change, and those change in exactly one position — the victim drops
    /// out, every survivor keeps its slot and relative order, and the next
    /// eligible shard (if any) is appended at the end. This is what keeps
    /// an R-1 subset of every affected set warm across a failure.
    #[test]
    fn ejection_changes_only_sets_containing_the_victim_and_only_in_one_slot(
        n_shards in 2usize..8,
        victim in 0usize..8,
        r in 2usize..4,
        seed in 0u64..1_000,
    ) {
        let victim_name = format!("shard-{}", victim % n_shards);
        let mut ring = ring(n_shards, 64);
        let keys = signatures(seed, 500);
        let before: Vec<Vec<String>> = keys
            .iter()
            .map(|&k| ring.replica_set(k, r).iter().map(|s| s.to_string()).collect())
            .collect();
        ring.eject(&victim_name);
        for (&k, old) in keys.iter().zip(&before) {
            let new: Vec<String> =
                ring.replica_set(k, r).iter().map(|s| s.to_string()).collect();
            if !old.contains(&victim_name) {
                prop_assert_eq!(&new, old, "an unaffected replica set changed");
                continue;
            }
            let survivors: Vec<String> =
                old.iter().filter(|s| **s != victim_name).cloned().collect();
            prop_assert!(
                new.len() >= survivors.len() && new.len() <= survivors.len() + 1,
                "ejection changed more than one slot: {:?} -> {:?}", old, new
            );
            prop_assert_eq!(
                &new[..survivors.len()], &survivors[..],
                "survivors must keep their slots and order"
            );
        }
    }

    /// The candidate walk is a permutation of the live shards starting at
    /// the primary: failover always has somewhere to go until the fleet is
    /// actually empty.
    #[test]
    fn candidates_cover_every_live_shard_exactly_once(
        n_shards in 1usize..8,
        ejected in 0usize..8,
        seed in 0u64..1_000,
    ) {
        let mut ring = ring(n_shards, 32);
        if n_shards > 1 {
            ring.eject(&format!("shard-{}", ejected % n_shards));
        }
        for &k in &signatures(seed, 200) {
            let candidates = ring.candidates(k);
            prop_assert_eq!(candidates.len(), ring.live_count());
            let mut seen: Vec<&str> = candidates.clone();
            seen.sort_unstable();
            seen.dedup();
            prop_assert_eq!(seen.len(), candidates.len(), "duplicate candidate");
            prop_assert_eq!(candidates.first().copied(), ring.primary(k));
            for name in candidates {
                prop_assert!(ring.is_live(name), "dead shard offered as a candidate");
            }
        }
    }
}

/// An echo shard for integration tests: tags responses so the test can see
/// which shard served each request.
fn echo_shard(tag: &'static str) -> HttpServer {
    HttpServer::bind(
        "127.0.0.1:0",
        ServerConfig { read_tick: Duration::from_millis(2), ..ServerConfig::default() },
        Arc::new(move |req: &Request| match (req.method, req.path()) {
            ("GET", "/readyz") => Response::text(200, "ready"),
            ("POST", "/v1/predict") => {
                let mut body = req.body.to_vec();
                body.extend_from_slice(tag.as_bytes());
                Response::json(200, body)
            }
            _ => Response::text(404, "nope"),
        }),
    )
    .expect("bind echo shard")
}

/// End-to-end restart-by-name: kill a shard, rebind it on a *different*
/// port, re-register the same ring name at the new address, and verify the
/// shard's keys come home — the property the cluster experiment relies on
/// for checkpoint-resume.
#[test]
fn restarted_shard_on_a_new_port_gets_its_keys_back() {
    let s0 = echo_shard("@0");
    let s1 = echo_shard("@1");
    let fleet = Fleet::new(
        &[
            ("shard-0".to_string(), s0.local_addr()),
            ("shard-1".to_string(), s1.local_addr()),
        ],
        64,
        HealthConfig {
            fail_threshold: 1,
            recover_threshold: 1,
            ..HealthConfig::default()
        },
    );
    let router = Router::new(
        fleet.clone(),
        RouterConfig { retry_budget: 2, ..RouterConfig::default() },
    );
    let post = |router: &Router, body: &[u8]| -> Vec<u8> {
        let req = Request {
            method: "POST",
            target: "/v1/predict",
            http11: true,
            headers: Headers::from_pairs(&[("content-type", "application/json")]),
            body,
        };
        let resp = router.forward(&req, request_signature(body));
        assert_eq!(resp.status, 200, "forward failed");
        resp.body.clone()
    };
    // Find a body owned by shard-0.
    let body = (0..64)
        .map(|i| format!("{{\"q\":{i}}}").into_bytes())
        .find(|b| post(&router, b).ends_with(b"@0"))
        .expect("some key must land on shard-0");
    // Kill shard-0 and mark it ejected (the prober's job, done by hand here
    // so the test controls timing). Its keys fail over to shard-1.
    s0.shutdown();
    fleet.report("shard-0", false, true);
    assert!(!fleet.is_live("shard-0"));
    assert!(post(&router, &body).ends_with(b"@1"), "failover to the survivor");
    // Restart under the same name on a fresh port; readmit. The key
    // returns to shard-0 even though its address changed.
    let s0b = echo_shard("@0");
    assert!(fleet.set_addr("shard-0", s0b.local_addr()));
    fleet.report("shard-0", true, true);
    assert!(fleet.is_live("shard-0"));
    assert!(
        post(&router, &body).ends_with(b"@0"),
        "restarted shard must get its keys back at the new address"
    );
    s0b.shutdown();
    s1.shutdown();
}

/// A drained (connection-refusing) shard never costs an accepted query:
/// the router keeps answering 200 through the survivors while the dead
/// shard refuses every leg.
#[test]
fn refusing_shard_never_costs_a_request() {
    let s0 = echo_shard("@0");
    let s1 = echo_shard("@1");
    let dead_addr = s0.local_addr();
    let fleet = Fleet::new(
        &[
            ("shard-0".to_string(), dead_addr),
            ("shard-1".to_string(), s1.local_addr()),
        ],
        64,
        HealthConfig::default(),
    );
    let router = Router::new(fleet.clone(), RouterConfig::default());
    s0.shutdown(); // port now refuses, but the ring still lists shard-0
    for i in 0..24 {
        let body = format!("{{\"q\":{i}}}").into_bytes();
        let req = Request {
            method: "POST",
            target: "/v1/predict",
            http11: true,
            headers: Headers::empty(),
            body: &body,
        };
        let resp = router.forward(&req, request_signature(&body));
        assert_eq!(resp.status, 200, "request {i} lost to a refusing shard");
    }
    assert!(router.stats().served_failover >= 1, "shard-0's keys must have failed over");
    s1.shutdown();
}

/// The cardest-level cluster router serves its local endpoints and proxies
/// predicts with a stable content-addressed placement (same body, same
/// shard) — exercised over real sockets.
#[test]
fn cluster_router_end_to_end_over_loopback() {
    let s0 = echo_shard("@0");
    let s1 = echo_shard("@1");
    let handle = cardest::router::start_cluster_router(
        &[
            ("shard-0".to_string(), s0.local_addr()),
            ("shard-1".to_string(), s1.local_addr()),
        ],
        "127.0.0.1:0",
        cardest::router::ClusterRouterConfig {
            health: HealthConfig {
                probe_interval: Duration::from_millis(10),
                ..HealthConfig::default()
            },
            ..Default::default()
        },
    )
    .expect("bind cluster router");
    let mut client = HttpClient::connect(handle.local_addr()).expect("connect");
    assert_eq!(client.get("/healthz").expect("healthz").status, 200);
    assert_eq!(client.get("/readyz").expect("readyz").status, 200);
    let body = br#"{"features":[[0.25]]}"#;
    let first = client.post("/v1/predict", body).expect("predict");
    assert_eq!(first.status, 200);
    for _ in 0..8 {
        let again = client.post("/v1/predict", body).expect("repeat predict");
        assert_eq!(again.body, first.body, "placement must be content-addressed");
    }
    handle.drain();
    assert!(
        HttpClient::connect(handle.local_addr()).is_err(),
        "router port still accepting after drain"
    );
}

/// The router-fleet gate: two independently constructed fleets serve
/// byte-identical replica placements through a scripted churn sequence —
/// ejection, live shard addition, readmission, a second ejection. Any
/// router replica (or an offline audit) can therefore compute where a
/// query and its backups live at every point in the fleet's history.
#[test]
fn two_fleets_agree_on_replica_placement_under_scripted_churn() {
    let spec: Vec<(String, std::net::SocketAddr)> = (0..4)
        .map(|i| (format!("shard-{i}"), format!("127.0.0.1:{}", 9100 + i).parse().unwrap()))
        .collect();
    let config = HealthConfig {
        fail_threshold: 1,
        recover_threshold: 1,
        ..HealthConfig::default()
    };
    let a = Fleet::new(&spec, 128, config.clone());
    let b = Fleet::new(&spec, 128, config.clone());
    let sigs = signatures(1234, 400);
    let check = |a: &Fleet, b: &Fleet, step: &str| {
        for &sig in &sigs {
            for r in [1usize, 2, 3] {
                assert_eq!(
                    a.replica_set(sig, r),
                    b.replica_set(sig, r),
                    "fleets diverged after {step} (r={r})"
                );
            }
        }
    };
    check(&a, &b, "construction");
    for fleet in [&a, &b] {
        fleet.report("shard-2", false, true);
    }
    check(&a, &b, "ejecting shard-2");
    let new_addr: std::net::SocketAddr = "127.0.0.1:9104".parse().unwrap();
    for fleet in [&a, &b] {
        assert!(fleet.add_shard("shard-4", new_addr), "live addition must register");
    }
    check(&a, &b, "adding shard-4");
    for fleet in [&a, &b] {
        fleet.report("shard-2", true, true);
    }
    check(&a, &b, "readmitting shard-2");
    // With every shard live again, the *grown* fleet must place exactly
    // like a fleet constructed fresh with the full five-shard roster —
    // live addition is indistinguishable from having always been there.
    let mut full_spec = spec.clone();
    full_spec.push(("shard-4".to_string(), new_addr));
    let fresh = Fleet::new(&full_spec, 128, config);
    check(&a, &fresh, "comparing grown against fresh construction");
    for fleet in [&a, &b] {
        fleet.report("shard-0", false, true);
    }
    check(&a, &b, "ejecting shard-0");
}

/// A raw TCP stub that answers any request with headers and then dribbles
/// the body one byte at a time — each individual read on the scraping side
/// succeeds within its socket timeout, so only a wall-clock deadline can
/// bound the scrape. Returns the address and a stop flag.
fn dribble_shard() -> (std::net::SocketAddr, Arc<std::sync::atomic::AtomicBool>) {
    use std::io::{Read, Write};
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind dribbler");
    let addr = listener.local_addr().expect("dribbler addr");
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            if flag.load(std::sync::atomic::Ordering::SeqCst) {
                break;
            }
            let Ok(mut stream) = stream else { break };
            let flag = Arc::clone(&flag);
            std::thread::spawn(move || {
                let mut buf = [0u8; 1024];
                let _ = stream.read(&mut buf);
                let _ = stream.write_all(b"HTTP/1.1 200 OK\r\ncontent-length: 100\r\n\r\n");
                for _ in 0..100 {
                    if flag.load(std::sync::atomic::Ordering::SeqCst) {
                        break;
                    }
                    if stream.write_all(b"x").is_err() {
                        break;
                    }
                    let _ = stream.flush();
                    std::thread::sleep(Duration::from_millis(50));
                }
            });
        }
    });
    (addr, stop)
}

/// A shard whose `/metrics` is a fixed marker line, so the fleet scrape
/// test can recognize its section in the merged exposition.
fn metric_shard(marker: &'static str) -> HttpServer {
    HttpServer::bind(
        "127.0.0.1:0",
        ServerConfig { read_tick: Duration::from_millis(2), ..ServerConfig::default() },
        Arc::new(move |req: &Request| match (req.method, req.path()) {
            ("GET", "/readyz") => Response::text(200, "ready"),
            ("GET", "/metrics") => Response::text(200, marker),
            _ => Response::text(404, "nope"),
        }),
    )
    .expect("bind metric shard")
}

/// Scrape-timeout regression: a shard that accepts connections but
/// dribbles its `/metrics` body byte by byte must not stall the router's
/// fleet exposition. The merged view returns within the fleet deadline,
/// still carries the healthy shard's section, and `fleet_scrape_timeouts`
/// records the drop.
#[test]
fn a_dribbling_shard_cannot_stall_fleet_metrics() {
    let (slow_addr, stop) = dribble_shard();
    let healthy = metric_shard("healthy_scrape_marker 7\n");
    let handle = cardest::router::start_cluster_router(
        &[
            ("shard-slow".to_string(), slow_addr),
            ("shard-ok".to_string(), healthy.local_addr()),
        ],
        "127.0.0.1:0",
        cardest::router::ClusterRouterConfig {
            // Keep the prober out of the picture: the dribbler only speaks
            // to the scrape, and hysteresis never ejects it mid-test.
            health: HealthConfig {
                probe_interval: Duration::from_secs(60),
                fail_threshold: 1_000,
                ..HealthConfig::default()
            },
            ..Default::default()
        },
    )
    .expect("bind cluster router");
    let mut client = HttpClient::connect_with(
        handle.local_addr(),
        cardest::server::ClientConfig {
            read_timeout: Duration::from_secs(10),
            ..cardest::server::ClientConfig::default()
        },
    )
    .expect("connect");
    // First scrape hits the deadline and charges the counter; the counter
    // line itself is rendered before the fleet section, so a second scrape
    // reads the recorded drop.
    for round in 0..2 {
        let t = std::time::Instant::now();
        let resp = client.get("/metrics").expect("metrics");
        let elapsed = t.elapsed();
        assert_eq!(resp.status, 200);
        assert!(
            elapsed < Duration::from_secs(3),
            "scrape round {round} stalled for {elapsed:?}"
        );
        let body = String::from_utf8_lossy(&resp.body).into_owned();
        assert!(
            body.contains("healthy_scrape_marker{shard=\"shard-ok\"} 7"),
            "healthy shard's section missing:\n{body}"
        );
    }
    let resp = client.get("/metrics").expect("metrics");
    let body = String::from_utf8_lossy(&resp.body).into_owned();
    let timeouts: u64 = body
        .lines()
        .find_map(|line| line.strip_prefix("cluster_fleet_scrape_timeouts "))
        .expect("fleet_scrape_timeouts line")
        .trim()
        .parse()
        .expect("counter value");
    assert!(timeouts >= 2, "dribbled scrapes must be counted, saw {timeouts}");
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    handle.drain();
}
