//! Property and integration tests for cluster mode: the consistent-hash
//! ring's placement laws, and the routed fleet's failover behavior over
//! real loopback shards.
//!
//! The ring properties are the load-bearing guarantees of DESIGN.md §11:
//!
//! - **Balance** — with enough virtual nodes, no shard owns a wildly
//!   disproportionate share of the keyspace.
//! - **Minimal movement** — ejecting a shard moves *only* that shard's
//!   keys (everyone else's placement is untouched), and readmitting it
//!   restores the exact original placement, so a restarted shard gets its
//!   own keys back.
//! - **Determinism** — placement is a pure function of (shard names,
//!   vnodes, key): two independently built rings agree on every key, which
//!   is what lets any router replica (or an offline audit) compute where a
//!   query lives.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use cardest::router::request_signature;
use cardest::server::{
    Fleet, HashRing, Headers, HealthConfig, HttpClient, HttpServer, Request, Response,
    Router, RouterConfig, ServerConfig,
};
use proptest::prelude::*;

/// Builds a ring over `n` shards named `shard-0..n`.
fn ring(n: usize, vnodes: usize) -> HashRing {
    let names: Vec<String> = (0..n).map(|i| format!("shard-{i}")).collect();
    HashRing::new(&names, vnodes)
}

/// Key signatures derived from a seed — arbitrary but reproducible.
fn signatures(seed: u64, count: usize) -> Vec<u64> {
    (0..count as u64)
        .map(|i| request_signature(format!("key-{seed}-{i}").as_bytes()))
        .collect()
}

proptest! {
    /// Balance: over thousands of keys, every shard's share stays within
    /// a constant factor of fair (vnodes smooth the ring enough that no
    /// shard is starved or doubly loaded beyond bound).
    #[test]
    fn ring_distributes_keys_roughly_evenly(
        n_shards in 2usize..8,
        seed in 0u64..1_000,
    ) {
        let ring = ring(n_shards, 512);
        let keys = signatures(seed, 4_000);
        let mut counts: HashMap<String, usize> = HashMap::new();
        for &k in &keys {
            *counts.entry(ring.primary(k).expect("live ring").to_string()).or_default() += 1;
        }
        let fair = keys.len() as f64 / n_shards as f64;
        for i in 0..n_shards {
            let got = *counts.get(&format!("shard-{i}")).unwrap_or(&0) as f64;
            prop_assert!(
                got > fair * 0.5 && got < fair * 1.7,
                "shard-{} owns {} of {} keys (fair share {:.0})",
                i, got, keys.len(), fair
            );
        }
    }

    /// Minimal movement: ejecting one shard relocates exactly that shard's
    /// keys — every key owned by a surviving shard keeps its owner — and
    /// readmission restores the original placement for every key.
    #[test]
    fn eject_moves_only_the_dead_shards_keys_and_readmit_restores(
        n_shards in 2usize..8,
        victim in 0usize..8,
        seed in 0u64..1_000,
    ) {
        let victim = victim % n_shards;
        let victim_name = format!("shard-{victim}");
        let mut ring = ring(n_shards, 64);
        let keys = signatures(seed, 1_000);
        let before: Vec<String> =
            keys.iter().map(|&k| ring.primary(k).expect("live").to_string()).collect();
        ring.eject(&victim_name);
        for (&k, owner_before) in keys.iter().zip(&before) {
            let owner_after = ring.primary(k).expect("survivors stay live");
            if owner_before == &victim_name {
                prop_assert!(
                    owner_after != victim_name,
                    "key still on the ejected shard"
                );
            } else {
                prop_assert_eq!(
                    owner_after, owner_before.as_str(),
                    "a survivor's key moved on an unrelated ejection"
                );
            }
        }
        ring.readmit(&victim_name);
        for (&k, owner_before) in keys.iter().zip(&before) {
            prop_assert_eq!(
                ring.primary(k).expect("live"), owner_before.as_str(),
                "readmission must restore the exact original placement"
            );
        }
    }

    /// Determinism: placement and failover order are pure functions of the
    /// configuration — two independently constructed rings agree on every
    /// key's owner and on the full candidate walk.
    #[test]
    fn independently_built_rings_agree_on_every_placement(
        n_shards in 1usize..8,
        vnodes in 1usize..128,
        seed in 0u64..1_000,
    ) {
        let a = ring(n_shards, vnodes);
        let b = ring(n_shards, vnodes);
        for &k in &signatures(seed, 500) {
            prop_assert_eq!(a.primary(k), b.primary(k));
            prop_assert_eq!(a.candidates(k), b.candidates(k));
        }
    }

    /// The candidate walk is a permutation of the live shards starting at
    /// the primary: failover always has somewhere to go until the fleet is
    /// actually empty.
    #[test]
    fn candidates_cover_every_live_shard_exactly_once(
        n_shards in 1usize..8,
        ejected in 0usize..8,
        seed in 0u64..1_000,
    ) {
        let mut ring = ring(n_shards, 32);
        if n_shards > 1 {
            ring.eject(&format!("shard-{}", ejected % n_shards));
        }
        for &k in &signatures(seed, 200) {
            let candidates = ring.candidates(k);
            prop_assert_eq!(candidates.len(), ring.live_count());
            let mut seen: Vec<&str> = candidates.clone();
            seen.sort_unstable();
            seen.dedup();
            prop_assert_eq!(seen.len(), candidates.len(), "duplicate candidate");
            prop_assert_eq!(candidates.first().copied(), ring.primary(k));
            for name in candidates {
                prop_assert!(ring.is_live(name), "dead shard offered as a candidate");
            }
        }
    }
}

/// An echo shard for integration tests: tags responses so the test can see
/// which shard served each request.
fn echo_shard(tag: &'static str) -> HttpServer {
    HttpServer::bind(
        "127.0.0.1:0",
        ServerConfig { read_tick: Duration::from_millis(2), ..ServerConfig::default() },
        Arc::new(move |req: &Request| match (req.method, req.path()) {
            ("GET", "/readyz") => Response::text(200, "ready"),
            ("POST", "/v1/predict") => {
                let mut body = req.body.to_vec();
                body.extend_from_slice(tag.as_bytes());
                Response::json(200, body)
            }
            _ => Response::text(404, "nope"),
        }),
    )
    .expect("bind echo shard")
}

/// End-to-end restart-by-name: kill a shard, rebind it on a *different*
/// port, re-register the same ring name at the new address, and verify the
/// shard's keys come home — the property the cluster experiment relies on
/// for checkpoint-resume.
#[test]
fn restarted_shard_on_a_new_port_gets_its_keys_back() {
    let s0 = echo_shard("@0");
    let s1 = echo_shard("@1");
    let fleet = Fleet::new(
        &[
            ("shard-0".to_string(), s0.local_addr()),
            ("shard-1".to_string(), s1.local_addr()),
        ],
        64,
        HealthConfig {
            fail_threshold: 1,
            recover_threshold: 1,
            ..HealthConfig::default()
        },
    );
    let router = Router::new(
        fleet.clone(),
        RouterConfig { retry_budget: 2, ..RouterConfig::default() },
    );
    let post = |router: &Router, body: &[u8]| -> Vec<u8> {
        let req = Request {
            method: "POST",
            target: "/v1/predict",
            http11: true,
            headers: Headers::from_pairs(&[("content-type", "application/json")]),
            body,
        };
        let resp = router.forward(&req, request_signature(body));
        assert_eq!(resp.status, 200, "forward failed");
        resp.body.clone()
    };
    // Find a body owned by shard-0.
    let body = (0..64)
        .map(|i| format!("{{\"q\":{i}}}").into_bytes())
        .find(|b| post(&router, b).ends_with(b"@0"))
        .expect("some key must land on shard-0");
    // Kill shard-0 and mark it ejected (the prober's job, done by hand here
    // so the test controls timing). Its keys fail over to shard-1.
    s0.shutdown();
    fleet.report("shard-0", false, true);
    assert!(!fleet.is_live("shard-0"));
    assert!(post(&router, &body).ends_with(b"@1"), "failover to the survivor");
    // Restart under the same name on a fresh port; readmit. The key
    // returns to shard-0 even though its address changed.
    let s0b = echo_shard("@0");
    assert!(fleet.set_addr("shard-0", s0b.local_addr()));
    fleet.report("shard-0", true, true);
    assert!(fleet.is_live("shard-0"));
    assert!(
        post(&router, &body).ends_with(b"@0"),
        "restarted shard must get its keys back at the new address"
    );
    s0b.shutdown();
    s1.shutdown();
}

/// A drained (connection-refusing) shard never costs an accepted query:
/// the router keeps answering 200 through the survivors while the dead
/// shard refuses every leg.
#[test]
fn refusing_shard_never_costs_a_request() {
    let s0 = echo_shard("@0");
    let s1 = echo_shard("@1");
    let dead_addr = s0.local_addr();
    let fleet = Fleet::new(
        &[
            ("shard-0".to_string(), dead_addr),
            ("shard-1".to_string(), s1.local_addr()),
        ],
        64,
        HealthConfig::default(),
    );
    let router = Router::new(fleet.clone(), RouterConfig::default());
    s0.shutdown(); // port now refuses, but the ring still lists shard-0
    for i in 0..24 {
        let body = format!("{{\"q\":{i}}}").into_bytes();
        let req = Request {
            method: "POST",
            target: "/v1/predict",
            http11: true,
            headers: Headers::empty(),
            body: &body,
        };
        let resp = router.forward(&req, request_signature(&body));
        assert_eq!(resp.status, 200, "request {i} lost to a refusing shard");
    }
    assert!(router.stats().served_failover >= 1, "shard-0's keys must have failed over");
    s1.shutdown();
}

/// The cardest-level cluster router serves its local endpoints and proxies
/// predicts with a stable content-addressed placement (same body, same
/// shard) — exercised over real sockets.
#[test]
fn cluster_router_end_to_end_over_loopback() {
    let s0 = echo_shard("@0");
    let s1 = echo_shard("@1");
    let handle = cardest::router::start_cluster_router(
        &[
            ("shard-0".to_string(), s0.local_addr()),
            ("shard-1".to_string(), s1.local_addr()),
        ],
        "127.0.0.1:0",
        cardest::router::ClusterRouterConfig {
            health: HealthConfig {
                probe_interval: Duration::from_millis(10),
                ..HealthConfig::default()
            },
            ..Default::default()
        },
    )
    .expect("bind cluster router");
    let mut client = HttpClient::connect(handle.local_addr()).expect("connect");
    assert_eq!(client.get("/healthz").expect("healthz").status, 200);
    assert_eq!(client.get("/readyz").expect("readyz").status, 200);
    let body = br#"{"features":[[0.25]]}"#;
    let first = client.post("/v1/predict", body).expect("predict");
    assert_eq!(first.status, 200);
    for _ in 0..8 {
        let again = client.post("/v1/predict", body).expect("repeat predict");
        assert_eq!(again.body, first.body, "placement must be content-addressed");
    }
    handle.drain();
    assert!(
        HttpClient::connect(handle.local_addr()).is_err(),
        "router port still accepting after drain"
    );
}
