//! End-to-end integration over star-join workloads: featurization, the
//! star-layout MSCN, PI wrapping, and the optimizer injection experiment.

use cardest::conformal::{conformal_quantile, AbsoluteResidual, SplitConformal};
use cardest::datagen::{dsb_star, job_star};
use cardest::estimators::{Mscn, MscnConfig, MscnLayout, PostgresEstimator, StarFeaturizer};
use cardest::optimizer::{optimize, true_cost, CostModel, PiInjectedOracle};
use cardest::query::{
    generate_join_workload, random_templates, split, JoinGeneratorConfig, JoinWorkload,
};
use cardest::storage::StarSchema;

fn encode(feat: &StarFeaturizer, w: &JoinWorkload) -> (Vec<Vec<f32>>, Vec<f64>) {
    (
        w.iter().map(|lq| feat.encode(&lq.query)).collect(),
        w.iter().map(|lq| lq.selectivity).collect(),
    )
}

fn star_workload(star: &StarSchema, seed: u64) -> JoinWorkload {
    let templates = random_templates(star, 8, seed);
    generate_join_workload(star, &templates, 40, &JoinGeneratorConfig::default(), seed + 1)
}

#[test]
fn star_mscn_with_split_conformal_covers() {
    let star = dsb_star(4_000, 0);
    let feat = StarFeaturizer::new(&star);
    let w = star_workload(&star, 0);
    let parts = split(&w, &[0.5, 0.25, 0.25], 1);
    let (tx, ty) = encode(&feat, &parts[0]);
    let (cx, cy) = encode(&feat, &parts[1]);
    let (ex, ey) = encode(&feat, &parts[2]);

    let mscn = Mscn::fit(
        MscnLayout::Star(feat),
        &tx,
        &ty,
        &MscnConfig { epochs: 25, ..Default::default() },
    );
    let scp = SplitConformal::calibrate(mscn, AbsoluteResidual, &cx, &cy, 0.1);
    let covered = ex
        .iter()
        .zip(&ey)
        .filter(|(f, &y)| scp.interval(f).clip(0.0, 1.0).contains(y))
        .count() as f64
        / ex.len() as f64;
    assert!(covered >= 0.85, "join-query coverage {covered}");
}

#[test]
fn star_featurizer_round_trips_preserve_cardinality() {
    let star = job_star(2_000, 1);
    let feat = StarFeaturizer::new(&star);
    for lq in star_workload(&star, 2).iter().take(60) {
        let decoded = feat.decode(&feat.encode(&lq.query));
        assert_eq!(star.count(&decoded), lq.cardinality);
    }
}

#[test]
fn pi_injection_does_not_hurt_and_usually_helps_plan_cost() {
    let star = job_star(5_000, 3);
    let estimator = PostgresEstimator::build(&star);
    let cm = CostModel::default();
    let templates: Vec<_> = random_templates(&star, 16, 4)
        .into_iter()
        .filter(|t| t.dims.len() >= 2)
        .collect();
    let gen = JoinGeneratorConfig {
        min_selectivity: 0.01,
        max_selectivity: 0.5,
        ..Default::default()
    };
    let w = generate_join_workload(&star, &templates, 30, &gen, 5);
    assert!(w.len() >= 40, "workload too small: {}", w.len());
    let parts = split(&w, &[0.5, 0.5], 6);
    let (calib, test) = (&parts[0], &parts[1]);

    let scores: Vec<f64> = calib
        .iter()
        .map(|lq| (lq.selectivity - estimator.estimate_selectivity(&lq.query)).abs())
        .collect();
    let delta = conformal_quantile(&scores, 0.1);
    assert!(delta.is_finite() && delta > 0.0);
    let injected = PiInjectedOracle::new(estimator.clone(), delta);

    let mut plain = 0.0;
    let mut with_pi = 0.0;
    for lq in test {
        let (p0, _) = optimize(&star, &lq.query, &estimator, &cm);
        let (p1, _) = optimize(&star, &lq.query, &injected, &cm);
        plain += true_cost(&star, &lq.query, &p0, &cm);
        with_pi += true_cost(&star, &lq.query, &p1, &cm);
    }
    assert!(
        with_pi <= plain * 1.02,
        "PI injection should not meaningfully hurt: {with_pi} vs {plain}"
    );
}

#[test]
fn upper_bounds_reduce_tail_q_error_under_underestimation() {
    use cardest::conformal::{percentiles, q_error};
    let star = job_star(5_000, 7);
    let estimator = PostgresEstimator::build(&star);
    let templates: Vec<_> = random_templates(&star, 16, 8)
        .into_iter()
        .filter(|t| t.dims.len() >= 2)
        .collect();
    let gen = JoinGeneratorConfig {
        min_selectivity: 0.01,
        max_selectivity: 0.5,
        ..Default::default()
    };
    let w = generate_join_workload(&star, &templates, 30, &gen, 9);
    let parts = split(&w, &[0.5, 0.5], 10);
    let scores: Vec<f64> = parts[0]
        .iter()
        .map(|lq| (lq.selectivity - estimator.estimate_selectivity(&lq.query)).abs())
        .collect();
    let delta = conformal_quantile(&scores, 0.1);
    let n = star.fact().n_rows() as f64;
    let (mut q_plain, mut q_pi) = (Vec::new(), Vec::new());
    for lq in &parts[1] {
        let est = estimator.estimate_selectivity(&lq.query);
        q_plain.push(q_error(est * n, lq.cardinality as f64, 1.0));
        q_pi.push(q_error((est + delta).min(1.0) * n, lq.cardinality as f64, 1.0));
    }
    let pp = percentiles(&q_plain);
    let pi = percentiles(&q_pi);
    assert!(
        pi.p90 < pp.p90,
        "upper bound should cut the q-error tail: {} vs {}",
        pi.p90,
        pp.p90
    );
}
