//! End-to-end integration: dataset → workload → models → every PI method,
//! checking the paper's headline properties at test scale.

use cardest::conformal::Regressor;
use cardest::pipeline::{
    run_cqr, run_jackknife_cv_mscn, run_locally_weighted, run_split_conformal,
    train_lwnn, train_mscn, train_mscn_quantile_heads, train_naru, EncodedSet,
    ScoreKind, SingleTableBench, SplitSpec,
};
use cardest::query::GeneratorConfig;

const ALPHA: f64 = 0.1;
const FLOOR: f64 = 1e-6;

fn bench() -> SingleTableBench {
    let table = cardest::datagen::dmv(4_000, 0);
    SingleTableBench::prepare(
        table,
        900,
        &GeneratorConfig::low_selectivity(),
        SplitSpec::default(),
        0,
    )
}

#[test]
fn all_four_methods_cover_mscn() {
    let b = bench();
    let mscn = train_mscn(&b.feat, &b.train, 20, 0);

    let scp = run_split_conformal(
        mscn.clone(),
        ScoreKind::Residual,
        &b.calib,
        &b.test,
        ALPHA,
        FLOOR,
    );
    assert!(scp.report.coverage >= 0.85, "S-CP coverage {}", scp.report.coverage);

    let lw = run_locally_weighted(
        mscn.clone(),
        ScoreKind::Residual,
        &b.train,
        &b.calib,
        &b.test,
        ALPHA,
        FLOOR,
        0,
    );
    assert!(lw.report.coverage >= 0.85, "LW coverage {}", lw.report.coverage);

    let mut labeled = b.train.clone();
    labeled.x.extend(b.calib.x.iter().cloned());
    labeled.y.extend(b.calib.y.iter().cloned());
    let labeled = EncodedSet { x: labeled.x, y: labeled.y };
    let jk = run_jackknife_cv_mscn(&b.feat, &labeled, &b.test, 5, ALPHA, 15, 0);
    assert!(jk.report.coverage >= 0.85, "JK coverage {}", jk.report.coverage);

    let (lo, hi) = train_mscn_quantile_heads(&b.feat, &b.train, 40, ALPHA, 0);
    let cqr = run_cqr(lo, hi, &b.calib, &b.test, ALPHA);
    assert!(cqr.report.coverage >= 0.85, "CQR coverage {}", cqr.report.coverage);

    // All intervals are clipped into valid selectivity space.
    for r in [&scp, &lw, &jk, &cqr] {
        for iv in &r.intervals {
            assert!(iv.lo >= 0.0 && iv.hi <= 1.0 && iv.lo <= iv.hi);
        }
    }
}

#[test]
fn locally_weighted_is_adaptive_while_scp_is_constant() {
    let b = bench();
    let mscn = train_mscn(&b.feat, &b.train, 20, 1);
    let scp = run_split_conformal(
        mscn.clone(),
        ScoreKind::Residual,
        &b.calib,
        &b.test,
        ALPHA,
        FLOOR,
    );
    let lw = run_locally_weighted(
        mscn,
        ScoreKind::Residual,
        &b.train,
        &b.calib,
        &b.test,
        ALPHA,
        FLOOR,
        1,
    );
    // Clipping to [0, 1] perturbs both, so compare relative width spread:
    // the adaptive method's widths must disperse far more than S-CP's
    // (whose unclipped width is one constant).
    let spread = |ivs: &[cardest::conformal::PredictionInterval]| {
        let widths: Vec<f64> = ivs.iter().map(|iv| iv.width()).collect();
        let mean = widths.iter().sum::<f64>() / widths.len() as f64;
        let var = widths.iter().map(|w| (w - mean) * (w - mean)).sum::<f64>()
            / widths.len() as f64;
        var.sqrt() / mean
    };
    assert!(
        spread(&lw.intervals) > 2.0 * spread(&scp.intervals),
        "LW should vary more: {} vs {}",
        spread(&lw.intervals),
        spread(&scp.intervals)
    );
}

#[test]
fn naru_covers_and_is_tighter_than_lwnn() {
    let b = bench();
    let naru = train_naru(&b.table, 2, 48, 0);
    let lwnn = train_lwnn(&b.table, &b.train, 10, 0);
    let naru_r = run_split_conformal(
        naru,
        ScoreKind::Residual,
        &b.calib,
        &b.test,
        ALPHA,
        FLOOR,
    );
    let lwnn_r = run_split_conformal(
        lwnn,
        ScoreKind::Residual,
        &b.calib,
        &b.test,
        ALPHA,
        FLOOR,
    );
    assert!(naru_r.report.coverage >= 0.85, "naru coverage {}", naru_r.report.coverage);
    assert!(lwnn_r.report.coverage >= 0.85, "lwnn coverage {}", lwnn_r.report.coverage);
    // The paper's accuracy ordering: the data-driven Naru earns tighter
    // intervals than the lightweight LW-NN.
    assert!(
        naru_r.report.mean_width < lwnn_r.report.mean_width,
        "naru {} vs lwnn {}",
        naru_r.report.mean_width,
        lwnn_r.report.mean_width
    );
}

#[test]
fn higher_coverage_means_wider_intervals() {
    let b = bench();
    let mscn = train_mscn(&b.feat, &b.train, 20, 2);
    let w90 = run_split_conformal(
        mscn.clone(),
        ScoreKind::Residual,
        &b.calib,
        &b.test,
        0.10,
        FLOOR,
    )
    .report
    .mean_width;
    let w99 = run_split_conformal(
        mscn,
        ScoreKind::Residual,
        &b.calib,
        &b.test,
        0.01,
        FLOOR,
    )
    .report
    .mean_width;
    assert!(w99 >= w90, "99% width {w99} must be >= 90% width {w90}");
}

#[test]
fn better_trained_model_earns_tighter_intervals() {
    let b = bench();
    let weak = train_mscn(&b.feat, &b.train, 2, 3);
    let strong = train_mscn(&b.feat, &b.train, 40, 3);
    let width = |m: cardest::estimators::Mscn| {
        run_split_conformal(m, ScoreKind::Residual, &b.calib, &b.test, ALPHA, FLOOR)
            .report
            .mean_width
    };
    let ww = width(weak);
    let ws = width(strong);
    assert!(ws < ww, "strong model width {ws} vs weak {ww}");
}

#[test]
fn point_estimates_sit_inside_their_intervals() {
    let b = bench();
    let mscn = train_mscn(&b.feat, &b.train, 20, 4);
    let scp = run_split_conformal(
        mscn.clone(),
        ScoreKind::Residual,
        &b.calib,
        &b.test,
        ALPHA,
        FLOOR,
    );
    for (f, iv) in b.test.x.iter().zip(&scp.intervals) {
        let est = mscn.predict(f).clamp(0.0, 1.0);
        assert!(
            iv.contains(est),
            "estimate {est} outside its own interval [{}, {}]",
            iv.lo,
            iv.hi
        );
    }
}
