//! Cross-crate consistency: the evaluators, generators, and estimators must
//! agree with each other on shared quantities.

use cardest::datagen::{census, dmv, dsb_star, forest, power};
use cardest::estimators::{AviModel, SingleTableFeaturizer, TableStatistics};
use cardest::query::{generate_workload, GeneratorConfig};
use cardest::storage::{ConjunctiveQuery, IndexedTable, Predicate, StarQuery};

#[test]
fn naive_and_indexed_counts_agree_on_every_dataset() {
    for (name, table) in [
        ("dmv", dmv(3_000, 1)),
        ("census", census(3_000, 2)),
        ("forest", forest(3_000, 3)),
        ("power", power(3_000, 4)),
    ] {
        let workload = generate_workload(&table, 120, &GeneratorConfig::default(), 5);
        let indexed = IndexedTable::build(table.clone());
        for lq in &workload {
            assert_eq!(
                table.count(&lq.query),
                indexed.count(&lq.query),
                "{name}: {:?}",
                lq.query
            );
        }
    }
}

#[test]
fn workload_labels_match_match_mask_counts() {
    let table = dmv(2_000, 6);
    let workload = generate_workload(&table, 80, &GeneratorConfig::default(), 7);
    for lq in &workload {
        let mask_count =
            lq.query.predicates.iter().fold(vec![true; table.n_rows()], |mut m, p| {
                let col = table.column(p.column);
                for (mi, &v) in m.iter_mut().zip(col) {
                    *mi = *mi && p.op.matches(v);
                }
                m
            });
        assert_eq!(
            mask_count.iter().filter(|&&b| b).count() as u64,
            lq.cardinality
        );
    }
}

#[test]
fn avi_estimator_is_exact_under_real_independence() {
    // A table whose columns are genuinely independent: AVI should be nearly
    // exact on conjunctions (up to sampling noise), validating both the
    // histogram math and the generator's independence when no parents are
    // declared.
    use cardest::datagen::{ColumnSpec, Dist, TableSpec};
    use cardest::storage::ColumnKind;
    let table = TableSpec {
        name: "indep".into(),
        n_rows: 40_000,
        columns: vec![
            ColumnSpec::new("a", 4, ColumnKind::Categorical, Dist::Uniform),
            ColumnSpec::new("b", 4, ColumnKind::Categorical, Dist::Uniform),
        ],
    }
    .generate(11);
    let stats = TableStatistics::build(&table);
    let q = ConjunctiveQuery::new(vec![Predicate::eq(0, 1), Predicate::eq(1, 2)]);
    let avi = stats.avi_selectivity(&q);
    let truth = table.selectivity(&q);
    assert!(
        (avi - truth).abs() < 0.01,
        "independent columns: AVI {avi} vs truth {truth}"
    );
}

#[test]
fn avi_model_prediction_equals_direct_estimate_on_workload() {
    let table = power(2_000, 8);
    let model = AviModel::build(&table, 1e-9);
    let stats = TableStatistics::build(&table);
    let feat = SingleTableFeaturizer::new(table.schema().clone());
    let workload = generate_workload(&table, 60, &GeneratorConfig::default(), 9);
    for lq in &workload {
        let via_features =
            cardest::conformal::Regressor::predict(&model, &feat.encode(&lq.query));
        let direct = stats.avi_selectivity(&lq.query).max(1e-9);
        assert!(
            (via_features - direct).abs() < 1e-12,
            "encoding round-trip changed the estimate"
        );
    }
}

#[test]
fn star_count_is_monotone_in_joined_dimensions() {
    // Adding a (filtered) dimension can only reduce the join cardinality.
    let star = dsb_star(3_000, 10);
    let q = StarQuery {
        fact: ConjunctiveQuery::default(),
        dims: vec![
            Some(ConjunctiveQuery::new(vec![Predicate::eq(0, 1)])),
            Some(ConjunctiveQuery::new(vec![Predicate::eq(0, 0)])),
            None,
            None,
        ],
    };
    let both = star.count_with_dims(&q, &[0, 1]);
    let only0 = star.count_with_dims(&q, &[0]);
    let only1 = star.count_with_dims(&q, &[1]);
    let none = star.count_with_dims(&q, &[]);
    assert!(both <= only0 && both <= only1);
    assert!(only0 <= none && only1 <= none);
    assert_eq!(none as usize, star.fact().n_rows());
}

#[test]
fn generator_respects_predicate_count_bounds() {
    let table = census(1_500, 12);
    let config = GeneratorConfig {
        min_predicates: 2,
        max_predicates: 3,
        ..Default::default()
    };
    let workload = generate_workload(&table, 100, &config, 13);
    for lq in &workload {
        assert!((2..=3).contains(&lq.query.len()), "{:?}", lq.query);
    }
}
