//! Model persistence: trained estimators serialize to JSON and reload with
//! bit-identical predictions — the deploy path of a production estimator
//! service (train offline, ship the artifact, wrap with conformal online).

use cardest::conformal::Regressor;
use cardest::estimators::{
    AviModel, LwNn, Mscn, Naru, NaruConfig, PostgresEstimator, SamplingEstimator,
};
use cardest::pipeline::{train_lwnn, train_mscn, SingleTableBench, SplitSpec};
use cardest::query::GeneratorConfig;

fn bench() -> SingleTableBench {
    let table = cardest::datagen::dmv(2_000, 0);
    SingleTableBench::prepare(
        table,
        300,
        &GeneratorConfig::default(),
        SplitSpec::default(),
        0,
    )
}

fn assert_identical_predictions<M: Regressor>(a: &M, b: &M, probes: &[Vec<f32>]) {
    for f in probes {
        assert_eq!(a.predict(f), b.predict(f), "prediction changed across reload");
    }
}

#[test]
fn mscn_round_trips_through_json() {
    let b = bench();
    let model = train_mscn(&b.feat, &b.train, 5, 1);
    let json = serde_json::to_string(&model).expect("serialize MSCN");
    let reloaded: Mscn = serde_json::from_str(&json).expect("deserialize MSCN");
    assert_identical_predictions(&model, &reloaded, &b.test.x);
}

#[test]
fn lwnn_round_trips_through_json() {
    let b = bench();
    let model = train_lwnn(&b.table, &b.train, 5, 1);
    let json = serde_json::to_string(&model).expect("serialize LW-NN");
    let reloaded: LwNn = serde_json::from_str(&json).expect("deserialize LW-NN");
    assert_identical_predictions(&model, &reloaded, &b.test.x);
}

#[test]
fn naru_round_trips_through_json() {
    let b = bench();
    let model = Naru::fit(
        &b.table,
        &NaruConfig { epochs: 1, samples: 16, ..Default::default() },
    );
    let json = serde_json::to_string(&model).expect("serialize Naru");
    let reloaded: Naru = serde_json::from_str(&json).expect("deserialize Naru");
    // Naru inference seeds its sampler from the feature hash, so reloaded
    // models reproduce predictions exactly.
    assert_identical_predictions(&model, &reloaded, &b.test.x[..20]);
}

#[test]
fn classical_estimators_round_trip() {
    let b = bench();
    let avi = AviModel::build(&b.table, 1e-9);
    let avi2: AviModel =
        serde_json::from_str(&serde_json::to_string(&avi).unwrap()).unwrap();
    assert_identical_predictions(&avi, &avi2, &b.test.x);

    let smp = SamplingEstimator::build(&b.table, 300, 2, 1e-9);
    let smp2: SamplingEstimator =
        serde_json::from_str(&serde_json::to_string(&smp).unwrap()).unwrap();
    assert_identical_predictions(&smp, &smp2, &b.test.x);
}

#[test]
fn postgres_estimator_round_trips() {
    let star = cardest::datagen::dsb_star(500, 3);
    let est = PostgresEstimator::build(&star);
    let est2: PostgresEstimator =
        serde_json::from_str(&serde_json::to_string(&est).unwrap()).unwrap();
    let templates = cardest::query::random_templates(&star, 3, 4);
    let w = cardest::query::generate_join_workload(
        &star,
        &templates,
        5,
        &cardest::query::JoinGeneratorConfig::default(),
        5,
    );
    for lq in &w {
        assert_eq!(
            est.estimate_selectivity(&lq.query),
            est2.estimate_selectivity(&lq.query)
        );
    }
}

#[test]
fn reloaded_model_composes_with_conformal_wrapping() {
    use cardest::conformal::{AbsoluteResidual, SplitConformal};
    let b = bench();
    let model = train_mscn(&b.feat, &b.train, 5, 6);
    let reloaded: Mscn =
        serde_json::from_str(&serde_json::to_string(&model).unwrap()).unwrap();
    let scp_orig =
        SplitConformal::calibrate(model, AbsoluteResidual, &b.calib.x, &b.calib.y, 0.1);
    let scp_again = SplitConformal::calibrate(
        reloaded,
        AbsoluteResidual,
        &b.calib.x,
        &b.calib.y,
        0.1,
    );
    assert_eq!(scp_orig.delta(), scp_again.delta());
    for f in &b.test.x[..20] {
        assert_eq!(scp_orig.interval(f), scp_again.interval(f));
    }
}
