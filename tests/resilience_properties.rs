//! Adversarial property tests for the fault-tolerance layer: every PI
//! method must keep ordered, non-NaN interval bounds no matter how the
//! calibration data or query features are corrupted, and the resilient
//! service must never let an injected model panic escape to the caller.

use cardest::conformal::{
    install_quiet_chaos_hook, AbsoluteResidual, ChaosConfig, ChaosRegressor,
    ConformalizedQuantileRegression, LocalizedConformal, LocallyWeightedConformal,
    OnlineConformal, PredictionInterval, ResilientService, SplitConformal,
};
use proptest::prelude::*;

fn ordered_non_nan(iv: &PredictionInterval) -> bool {
    !iv.lo.is_nan() && !iv.hi.is_nan() && iv.lo <= iv.hi
}

/// The query feature vectors no serving path may choke on.
fn adversarial_queries() -> Vec<Vec<f32>> {
    vec![
        vec![0.5],
        vec![f32::NAN],
        vec![f32::INFINITY],
        vec![f32::NEG_INFINITY],
    ]
}

proptest! {
    /// Calibration labels poisoned with NaN/±Inf at arbitrary positions:
    /// every method still calibrates (via try_*) and every interval it
    /// produces — including on non-finite query features — has ordered,
    /// non-NaN bounds. Corruption may only widen, never wedge.
    #[test]
    fn poisoned_calibration_never_yields_nan_bounds(
        mut ys in prop::collection::vec(0.0f64..1.0, 1..40),
        corrupt in prop::collection::vec(0usize..64, 0..8),
        kind in 0usize..3,
    ) {
        let n = ys.len();
        for (j, &at) in corrupt.iter().enumerate() {
            ys[at % n] = match (kind + j) % 3 {
                0 => f64::NAN,
                1 => f64::INFINITY,
                _ => f64::NEG_INFINITY,
            };
        }
        let xs: Vec<Vec<f32>> =
            (0..n).map(|i| vec![i as f32 / n as f32]).collect();
        let model = |f: &[f32]| f[0] as f64;

        let scp = SplitConformal::try_calibrate(model, AbsoluteResidual, &xs, &ys, 0.1)
            .expect("poisoned labels are not a calibration error");
        let online = OnlineConformal::try_new(model, AbsoluteResidual, &xs, &ys, 0.1)
            .expect("poisoned labels are not a calibration error");
        let cqr = ConformalizedQuantileRegression::try_calibrate(
            |f: &[f32]| f[0] as f64 - 0.1,
            |f: &[f32]| f[0] as f64 + 0.1,
            &xs,
            &ys,
            0.1,
        )
        .expect("poisoned labels are not a calibration error");
        let lw = LocallyWeightedConformal::try_calibrate(
            model,
            |_: &[f32]| 1.0,
            AbsoluteResidual,
            &xs,
            &ys,
            0.1,
            1e-6,
        )
        .expect("poisoned labels are not a calibration error");
        let localized = LocalizedConformal::try_calibrate(
            model,
            AbsoluteResidual,
            &xs,
            &ys,
            3,
            0.1,
        )
        .expect("poisoned labels are not a calibration error");

        for q in adversarial_queries() {
            prop_assert!(ordered_non_nan(&scp.interval(&q)));
            prop_assert!(ordered_non_nan(&online.interval(&q)));
            prop_assert!(ordered_non_nan(&cqr.interval(&q)));
            prop_assert!(ordered_non_nan(&lw.interval(&q)));
            prop_assert!(ordered_non_nan(&localized.interval(&q)));
        }
    }

    /// A chain fronted by an arbitrarily hostile ChaosRegressor (any mix of
    /// NaN and panic rates, any seed) never propagates a panic: the stream
    /// below completes, every answer is ordered and non-NaN, and the
    /// bookkeeping adds up.
    #[test]
    fn resilient_service_never_propagates_chaos_panics(
        seed in 0u64..500,
        nan_rate in 0.0f64..1.0,
        panic_rate in 0.0f64..1.0,
    ) {
        install_quiet_chaos_hook();
        let chaos = ChaosRegressor::new(
            |f: &[f32]| f[0] as f64,
            ChaosConfig { nan_rate, panic_rate, seed, ..Default::default() },
        );
        let primary = OnlineConformal::new(chaos, AbsoluteResidual, &[], &[], 0.1);
        let mut service = ResilientService::new(Box::new(primary))
            .with_fallback(Box::new(OnlineConformal::new(
                |f: &[f32]| f[0] as f64,
                AbsoluteResidual,
                &[],
                &[],
                0.1,
            )))
            .with_expected_dims(1);
        for i in 0..200u32 {
            let x = [i as f32 / 200.0];
            let iv = service.interval(&x).expect("floor-enabled service always answers");
            prop_assert!(ordered_non_nan(&iv));
            service.observe(&x, i as f64 / 200.0);
        }
        let stats = service.stats();
        prop_assert_eq!(stats.queries, 200);
        prop_assert_eq!(stats.answered, 200);
        let served: u64 = stats.served_by.iter().sum();
        prop_assert_eq!(served + stats.floor_served, stats.answered);
    }
}

/// The two calibration shapes the paper's pipelines can realistically feed
/// a serving path at startup: a single calibration point and a constant
/// workload. Both must serve ordered, non-NaN (possibly infinite) bounds.
#[test]
fn single_point_and_constant_calibration_serve_sane_bounds() {
    let model = |f: &[f32]| f[0] as f64;
    let cases: Vec<(Vec<Vec<f32>>, Vec<f64>)> = vec![
        (vec![vec![0.3]], vec![0.3]),
        (vec![vec![0.5]; 20], vec![0.5; 20]),
    ];
    for (xs, ys) in cases {
        let scp = SplitConformal::try_calibrate(model, AbsoluteResidual, &xs, &ys, 0.1)
            .expect("degenerate calibration still calibrates");
        let online = OnlineConformal::try_new(model, AbsoluteResidual, &xs, &ys, 0.1)
            .expect("degenerate calibration still calibrates");
        let lw = LocallyWeightedConformal::try_calibrate(
            model,
            |_: &[f32]| 1.0,
            AbsoluteResidual,
            &xs,
            &ys,
            0.1,
            1e-6,
        )
        .expect("degenerate calibration still calibrates");
        let localized =
            LocalizedConformal::try_calibrate(model, AbsoluteResidual, &xs, &ys, 3, 0.1)
                .expect("degenerate calibration still calibrates");
        for q in adversarial_queries() {
            assert!(ordered_non_nan(&scp.interval(&q)), "split on {q:?}");
            assert!(ordered_non_nan(&online.interval(&q)), "online on {q:?}");
            assert!(ordered_non_nan(&lw.interval(&q)), "lw on {q:?}");
            assert!(ordered_non_nan(&localized.interval(&q)), "localized on {q:?}");
        }
    }
}
