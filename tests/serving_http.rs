//! Adversarial property tests for the HTTP serving substrate, plus
//! concurrency tests for the micro-batcher and the full loopback server.
//!
//! The parser faces the network, so it gets the same treatment as the
//! checkpoint codec: arbitrary garbage must never panic or wedge it,
//! chunk boundaries must be invisible, truncated bodies must never
//! surface as requests, and every size limit must map to the right 4xx.
//! The batcher and server face N concurrent callers, so the tests here
//! hammer them from thread fleets and assert nothing deadlocks and no
//! result is lost or cross-wired.

use std::sync::Arc;

use cardest::conformal::{
    AbsoluteResidual, HealConfig, PiServiceConfig, SelfHealingService,
};
use cardest::serve::{start_server, HttpServeConfig, ServeEngine};
use cardest::server::{BatcherConfig, HttpClient, MicroBatcher, ParserLimits, RequestParser};
use proptest::prelude::*;

/// Drains every complete request currently parseable from `parser`.
fn drain(parser: &mut RequestParser) -> Result<Vec<cardest::server::Request>, u16> {
    let mut out = Vec::new();
    loop {
        match parser.next_request() {
            Ok(Some(req)) => out.push(req),
            Ok(None) => return Ok(out),
            Err(e) => return Err(e.status()),
        }
    }
}

/// Builds one syntactically valid POST with the given body.
fn valid_post(path_tag: usize, body: &[u8]) -> Vec<u8> {
    let mut raw = format!(
        "POST /echo/{path_tag} HTTP/1.1\r\nHost: test\r\nX-Tag: {path_tag}\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    raw.extend_from_slice(body);
    raw
}

proptest! {
    /// Arbitrary bytes from the network: the parser either produces
    /// requests, asks for more bytes, or dies with a mappable 4xx/5xx
    /// status — it never panics and never loops.
    #[test]
    fn parser_survives_arbitrary_garbage(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let mut parser = RequestParser::new(ParserLimits::default());
        parser.push(&bytes);
        match drain(&mut parser) {
            Ok(requests) => {
                for req in requests {
                    prop_assert!(!req.method.is_empty());
                }
            }
            Err(status) => {
                prop_assert!((400..=505).contains(&status), "unmappable status {status}");
                // Poisoned: the same error must keep coming back.
                prop_assert_eq!(drain(&mut parser).unwrap_err(), status);
            }
        }
    }

    /// A pipelined stream of valid requests parses to the same requests no
    /// matter how the bytes are split into socket reads — chunk boundaries
    /// (mid-line, mid-header, mid-body) are invisible.
    #[test]
    fn chunk_boundaries_are_invisible(
        bodies in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..96), 1..6),
        chunk_sizes in prop::collection::vec(1usize..48, 1..12),
    ) {
        let mut stream = Vec::new();
        for (i, body) in bodies.iter().enumerate() {
            stream.extend_from_slice(&valid_post(i, body));
        }

        let mut whole = RequestParser::new(ParserLimits::default());
        whole.push(&stream);
        let expect = drain(&mut whole).expect("valid stream");
        prop_assert_eq!(expect.len(), bodies.len());

        let mut chunked = RequestParser::new(ParserLimits::default());
        let mut got = Vec::new();
        let mut at = 0;
        let mut turn = 0;
        while at < stream.len() {
            let step = chunk_sizes[turn % chunk_sizes.len()].min(stream.len() - at);
            chunked.push(&stream[at..at + step]);
            at += step;
            turn += 1;
            got.extend(drain(&mut chunked).expect("valid stream, chunked"));
        }
        prop_assert_eq!(got.len(), expect.len());
        for (a, b) in got.iter().zip(&expect) {
            prop_assert_eq!(&a.method, &b.method);
            prop_assert_eq!(&a.target, &b.target);
            prop_assert_eq!(&a.body, &b.body);
            prop_assert_eq!(a.header("x-tag"), b.header("x-tag"));
        }
    }

    /// A truncated body never surfaces as a request: with every byte short
    /// of `Content-Length` the parser reports "need more", and the final
    /// byte completes exactly one request with the full body.
    #[test]
    fn truncated_bodies_never_surface(body in prop::collection::vec(any::<u8>(), 1..256)) {
        let raw = valid_post(0, &body);
        let mut parser = RequestParser::new(ParserLimits::default());
        parser.push(&raw[..raw.len() - 1]);
        prop_assert!(drain(&mut parser).expect("prefix is not an error").is_empty());
        parser.push(&raw[raw.len() - 1..]);
        let done = drain(&mut parser).expect("completed request");
        prop_assert_eq!(done.len(), 1);
        prop_assert_eq!(&done[0].body, &body);
    }

    /// Oversized request lines, header blocks, and declared bodies die with
    /// the matching status (414 / 431 / 413) instead of buffering without
    /// bound — even when the oversized head arrives one byte at a time.
    #[test]
    fn size_limits_map_to_statuses(fill in 1usize..64, drip in any::<bool>()) {
        let limits = ParserLimits {
            max_request_line: 128,
            max_head_bytes: 512,
            max_headers: 8,
            max_body_bytes: 256,
        };

        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(128 + fill));
        let mut parser = RequestParser::new(limits);
        if drip {
            for b in long_line.as_bytes() {
                parser.push(std::slice::from_ref(b));
                if drain(&mut parser).is_err() {
                    break;
                }
            }
        } else {
            parser.push(long_line.as_bytes());
        }
        prop_assert_eq!(drain(&mut parser).unwrap_err(), 414);

        let mut many_headers = String::from("GET / HTTP/1.1\r\n");
        for i in 0..(8 + fill) {
            many_headers.push_str(&format!("X-H-{i}: v\r\n"));
        }
        many_headers.push_str("\r\n");
        let mut parser = RequestParser::new(limits);
        parser.push(many_headers.as_bytes());
        prop_assert_eq!(drain(&mut parser).unwrap_err(), 431);

        let big_body =
            format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 256 + fill);
        let mut parser = RequestParser::new(limits);
        parser.push(big_body.as_bytes());
        prop_assert_eq!(drain(&mut parser).unwrap_err(), 413);
    }
}

#[test]
fn malformed_request_lines_reject_cleanly() {
    for (raw, want) in [
        (&b"GARBAGE\r\n\r\n"[..], 400u16),
        (b"GET /x HTTP/2.0\r\n\r\n", 505),
        (b"GET /x HTTP/1.1\r\nno-colon\r\n\r\n", 400),
        (b"POST /x HTTP/1.1\r\nContent-Length: two\r\n\r\n", 400),
        (b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501),
        (b"POST /x HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n", 400),
    ] {
        let mut parser = RequestParser::new(ParserLimits::default());
        parser.push(raw);
        let err = parser.next_request().expect_err("malformed input must error");
        assert_eq!(err.status(), want, "for {:?}", String::from_utf8_lossy(raw));
    }
}

/// A fleet of threads pushing overlapping batches through one micro-batcher:
/// every submission must come back complete, in order, and correctly paired
/// (no cross-wiring between coalesced submissions), with nothing deadlocked.
#[test]
fn micro_batcher_survives_a_concurrent_fleet() {
    let batcher: Arc<MicroBatcher<u64, u64>> = MicroBatcher::new(
        BatcherConfig {
            queue_cap: 256,
            max_batch: 16,
            window: std::time::Duration::from_micros(200),
        },
        |items: Vec<u64>| items.iter().map(|v| v * 2 + 1).collect(),
    );
    let threads: Vec<_> = (0..8)
        .map(|t| {
            let batcher = Arc::clone(&batcher);
            std::thread::spawn(move || {
                for round in 0..50u64 {
                    let base = t * 10_000 + round * 100;
                    let items: Vec<u64> = (base..base + 1 + round % 7).collect();
                    let results = batcher.submit_all(items.clone()).expect("calm submit");
                    assert_eq!(results.len(), items.len());
                    for (x, y) in items.iter().zip(&results) {
                        assert_eq!(*y, x * 2 + 1, "cross-wired batch result");
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("fleet thread panicked");
    }
    let stats = batcher.stats();
    assert_eq!(stats.shed, 0, "calm fleet must not shed");
    assert!(stats.admitted >= 8 * 50, "all submissions admitted");
    batcher.shutdown();
}

/// End-to-end loopback serving: concurrent keep-alive clients stream
/// predict batches (with prequential truths) through the real HTTP server
/// and micro-batcher; everything answers 200, nothing deadlocks, and a
/// graceful drain closes the port.
#[test]
fn loopback_fleet_never_deadlocks_the_server() {
    let n = 64usize;
    let xs: Vec<Vec<f32>> = (0..n).map(|i| vec![i as f32 / n as f32]).collect();
    let ys: Vec<f64> = (0..n).map(|i| i as f64 / n as f64 + 0.02).collect();
    let model = |f: &[f32]| f[0] as f64;
    let healing = SelfHealingService::new(
        model,
        AbsoluteResidual,
        &xs,
        &ys,
        PiServiceConfig::default(),
        HealConfig::default(),
    );
    let engine = Arc::new(ServeEngine::new(healing, Vec::new(), 1));
    let handle = start_server(
        Arc::clone(&engine),
        "127.0.0.1:0",
        HttpServeConfig {
            workers: 4,
            queue_cap: 64,
            max_batch: 8,
            batch_window: std::time::Duration::from_micros(200),
            ..Default::default()
        },
    )
    .expect("bind loopback server");
    let addr = handle.local_addr();

    let clients: Vec<_> = (0..8)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = HttpClient::connect(addr).expect("connect");
                for r in 0..15 {
                    let v = (c * 17 + r) as f64 / 120.0;
                    let body = format!(
                        "{{\"features\":[[{v}],[{}]],\"truths\":[{v},{}]}}",
                        v / 2.0,
                        v / 2.0 + 0.01,
                    );
                    let resp =
                        client.post("/v1/predict", body.as_bytes()).expect("predict");
                    assert_eq!(
                        resp.status,
                        200,
                        "predict failed: {}",
                        String::from_utf8_lossy(&resp.body)
                    );
                    let text = String::from_utf8_lossy(&resp.body).to_string();
                    assert!(text.contains("\"results\":[{"), "unexpected body {text}");
                }
                let health = client.get("/healthz").expect("healthz");
                assert_eq!(health.status, 200);
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread panicked");
    }
    assert_eq!(engine.observations(), 8 * 15 * 2, "prequential truths lost");
    assert_eq!(handle.batcher_stats().shed, 0, "calm fleet must not shed");

    handle.drain();
    assert!(
        HttpClient::connect(addr).is_err(),
        "port still accepting after graceful drain"
    );
}
