//! Adversarial property tests for the HTTP serving substrate, plus
//! concurrency tests for the micro-batcher and the full loopback server.
//!
//! The parser faces the network, so it gets the same treatment as the
//! checkpoint codec: arbitrary garbage must never panic or wedge it,
//! chunk boundaries must be invisible, truncated bodies must never
//! surface as requests, and every size limit must map to the right 4xx.
//! The batcher and server face N concurrent callers, so the tests here
//! hammer them from thread fleets and assert nothing deadlocks and no
//! result is lost or cross-wired.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cardest::conformal::{
    AbsoluteResidual, HealConfig, PiServiceConfig, SelfHealingService,
};
use cardest::serve::{start_server, HttpServeConfig, ServeEngine};
use cardest::server::{
    BatcherConfig, HttpClient, HttpServer, MicroBatcher, ParserLimits, Request, RequestParser,
    Response, ServerConfig,
};
use proptest::prelude::*;

/// Drains every complete request currently parseable from `parser`.
///
/// The parser hands out zero-copy views borrowed from its buffer, so the
/// helper detaches each one (`to_owned`) before pulling the next.
fn drain(parser: &mut RequestParser) -> Result<Vec<cardest::server::OwnedRequest>, u16> {
    let mut out = Vec::new();
    loop {
        match parser.next_request() {
            Ok(Some(req)) => out.push(req.to_owned()),
            Ok(None) => return Ok(out),
            Err(e) => return Err(e.status()),
        }
    }
}

/// Builds one syntactically valid POST with the given body.
fn valid_post(path_tag: usize, body: &[u8]) -> Vec<u8> {
    let mut raw = format!(
        "POST /echo/{path_tag} HTTP/1.1\r\nHost: test\r\nX-Tag: {path_tag}\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    raw.extend_from_slice(body);
    raw
}

proptest! {
    /// Arbitrary bytes from the network: the parser either produces
    /// requests, asks for more bytes, or dies with a mappable 4xx/5xx
    /// status — it never panics and never loops.
    #[test]
    fn parser_survives_arbitrary_garbage(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let mut parser = RequestParser::new(ParserLimits::default());
        parser.push(&bytes);
        match drain(&mut parser) {
            Ok(requests) => {
                for req in requests {
                    prop_assert!(!req.method.is_empty());
                }
            }
            Err(status) => {
                prop_assert!((400..=505).contains(&status), "unmappable status {status}");
                // Poisoned: the same error must keep coming back.
                prop_assert_eq!(drain(&mut parser).unwrap_err(), status);
            }
        }
    }

    /// A pipelined stream of valid requests parses to the same requests no
    /// matter how the bytes are split into socket reads — chunk boundaries
    /// (mid-line, mid-header, mid-body) are invisible.
    #[test]
    fn chunk_boundaries_are_invisible(
        bodies in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..96), 1..6),
        chunk_sizes in prop::collection::vec(1usize..48, 1..12),
    ) {
        let mut stream = Vec::new();
        for (i, body) in bodies.iter().enumerate() {
            stream.extend_from_slice(&valid_post(i, body));
        }

        let mut whole = RequestParser::new(ParserLimits::default());
        whole.push(&stream);
        let expect = drain(&mut whole).expect("valid stream");
        prop_assert_eq!(expect.len(), bodies.len());

        let mut chunked = RequestParser::new(ParserLimits::default());
        let mut got = Vec::new();
        let mut at = 0;
        let mut turn = 0;
        while at < stream.len() {
            let step = chunk_sizes[turn % chunk_sizes.len()].min(stream.len() - at);
            chunked.push(&stream[at..at + step]);
            at += step;
            turn += 1;
            got.extend(drain(&mut chunked).expect("valid stream, chunked"));
        }
        prop_assert_eq!(got.len(), expect.len());
        for (a, b) in got.iter().zip(&expect) {
            prop_assert_eq!(&a.method, &b.method);
            prop_assert_eq!(&a.target, &b.target);
            prop_assert_eq!(&a.body, &b.body);
            prop_assert_eq!(a.header("x-tag"), b.header("x-tag"));
        }
    }

    /// A truncated body never surfaces as a request: with every byte short
    /// of `Content-Length` the parser reports "need more", and the final
    /// byte completes exactly one request with the full body.
    #[test]
    fn truncated_bodies_never_surface(body in prop::collection::vec(any::<u8>(), 1..256)) {
        let raw = valid_post(0, &body);
        let mut parser = RequestParser::new(ParserLimits::default());
        parser.push(&raw[..raw.len() - 1]);
        prop_assert!(drain(&mut parser).expect("prefix is not an error").is_empty());
        parser.push(&raw[raw.len() - 1..]);
        let done = drain(&mut parser).expect("completed request");
        prop_assert_eq!(done.len(), 1);
        prop_assert_eq!(&done[0].body, &body);
    }

    /// Oversized request lines, header blocks, and declared bodies die with
    /// the matching status (414 / 431 / 413) instead of buffering without
    /// bound — even when the oversized head arrives one byte at a time.
    #[test]
    fn size_limits_map_to_statuses(fill in 1usize..64, drip in any::<bool>()) {
        let limits = ParserLimits {
            max_request_line: 128,
            max_head_bytes: 512,
            max_headers: 8,
            max_body_bytes: 256,
        };

        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(128 + fill));
        let mut parser = RequestParser::new(limits);
        if drip {
            for b in long_line.as_bytes() {
                parser.push(std::slice::from_ref(b));
                if drain(&mut parser).is_err() {
                    break;
                }
            }
        } else {
            parser.push(long_line.as_bytes());
        }
        prop_assert_eq!(drain(&mut parser).unwrap_err(), 414);

        let mut many_headers = String::from("GET / HTTP/1.1\r\n");
        for i in 0..(8 + fill) {
            many_headers.push_str(&format!("X-H-{i}: v\r\n"));
        }
        many_headers.push_str("\r\n");
        let mut parser = RequestParser::new(limits);
        parser.push(many_headers.as_bytes());
        prop_assert_eq!(drain(&mut parser).unwrap_err(), 431);

        let big_body =
            format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 256 + fill);
        let mut parser = RequestParser::new(limits);
        parser.push(big_body.as_bytes());
        prop_assert_eq!(drain(&mut parser).unwrap_err(), 413);
    }
}

#[test]
fn malformed_request_lines_reject_cleanly() {
    for (raw, want) in [
        (&b"GARBAGE\r\n\r\n"[..], 400u16),
        (b"GET /x HTTP/2.0\r\n\r\n", 505),
        (b"GET /x HTTP/1.1\r\nno-colon\r\n\r\n", 400),
        (b"POST /x HTTP/1.1\r\nContent-Length: two\r\n\r\n", 400),
        (b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501),
        (b"POST /x HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n", 400),
    ] {
        let mut parser = RequestParser::new(ParserLimits::default());
        parser.push(raw);
        let err = parser.next_request().expect_err("malformed input must error");
        assert_eq!(err.status(), want, "for {:?}", String::from_utf8_lossy(raw));
    }
}

/// A fleet of threads pushing overlapping batches through one micro-batcher:
/// every submission must come back complete, in order, and correctly paired
/// (no cross-wiring between coalesced submissions), with nothing deadlocked.
#[test]
fn micro_batcher_survives_a_concurrent_fleet() {
    let batcher: Arc<MicroBatcher<u64, u64>> = MicroBatcher::new(
        BatcherConfig {
            queue_cap: 256,
            max_batch: 16,
            window: std::time::Duration::from_micros(200),
        },
        |items: Vec<u64>| items.iter().map(|v| v * 2 + 1).collect(),
    );
    let threads: Vec<_> = (0..8)
        .map(|t| {
            let batcher = Arc::clone(&batcher);
            std::thread::spawn(move || {
                for round in 0..50u64 {
                    let base = t * 10_000 + round * 100;
                    let items: Vec<u64> = (base..base + 1 + round % 7).collect();
                    let results = batcher.submit_all(items.clone()).expect("calm submit");
                    assert_eq!(results.len(), items.len());
                    for (x, y) in items.iter().zip(&results) {
                        assert_eq!(*y, x * 2 + 1, "cross-wired batch result");
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("fleet thread panicked");
    }
    let stats = batcher.stats();
    assert_eq!(stats.shed, 0, "calm fleet must not shed");
    assert!(stats.admitted >= 8 * 50, "all submissions admitted");
    batcher.shutdown();
}

/// End-to-end loopback serving: concurrent keep-alive clients stream
/// predict batches (with prequential truths) through the real HTTP server
/// and micro-batcher; everything answers 200, nothing deadlocks, and a
/// graceful drain closes the port.
#[test]
fn loopback_fleet_never_deadlocks_the_server() {
    let n = 64usize;
    let xs: Vec<Vec<f32>> = (0..n).map(|i| vec![i as f32 / n as f32]).collect();
    let ys: Vec<f64> = (0..n).map(|i| i as f64 / n as f64 + 0.02).collect();
    let model = |f: &[f32]| f[0] as f64;
    let healing = SelfHealingService::new(
        model,
        AbsoluteResidual,
        &xs,
        &ys,
        PiServiceConfig::default(),
        HealConfig::default(),
    );
    let engine = Arc::new(ServeEngine::new(healing, Vec::new(), 1));
    let handle = start_server(
        Arc::clone(&engine),
        "127.0.0.1:0",
        HttpServeConfig {
            workers: 4,
            queue_cap: 64,
            max_batch: 8,
            batch_window: std::time::Duration::from_micros(200),
            ..Default::default()
        },
    )
    .expect("bind loopback server");
    let addr = handle.local_addr();

    let clients: Vec<_> = (0..8)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = HttpClient::connect(addr).expect("connect");
                for r in 0..15 {
                    let v = (c * 17 + r) as f64 / 120.0;
                    let body = format!(
                        "{{\"features\":[[{v}],[{}]],\"truths\":[{v},{}]}}",
                        v / 2.0,
                        v / 2.0 + 0.01,
                    );
                    let resp =
                        client.post("/v1/predict", body.as_bytes()).expect("predict");
                    assert_eq!(
                        resp.status,
                        200,
                        "predict failed: {}",
                        String::from_utf8_lossy(&resp.body)
                    );
                    let text = String::from_utf8_lossy(&resp.body).to_string();
                    assert!(text.contains("\"results\":[{"), "unexpected body {text}");
                }
                let health = client.get("/healthz").expect("healthz");
                assert_eq!(health.status, 200);
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread panicked");
    }
    assert_eq!(engine.observations(), 8 * 15 * 2, "prequential truths lost");
    assert_eq!(handle.batcher_stats().shed, 0, "calm fleet must not shed");

    handle.drain();
    assert!(
        HttpClient::connect(addr).is_err(),
        "port still accepting after graceful drain"
    );
}

/// A bare echo server for connection-level stress tests (no estimator, no
/// batcher — just the event-driven substrate).
fn stress_server(read_timeout: Duration) -> HttpServer {
    HttpServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            read_timeout,
            max_conns: 2048,
            ..ServerConfig::default()
        },
        Arc::new(|req: &Request| match (req.method, req.path()) {
            ("GET", "/ping") => Response::text(200, "pong"),
            ("POST", "/echo") => Response::json(200, req.body),
            _ => Response::text(404, "nope"),
        }),
    )
    .expect("bind stress server")
}

/// One poller thread multiplexes a thousand idle keep-alive connections:
/// every connection stays open and parked between requests, sampled
/// connections can still issue a second request (dispatched by the poller,
/// not a per-connection thread), and the whole fleet fits in
/// `workers + pollers + 1` server threads.
#[test]
fn one_poller_parks_a_thousand_idle_keepalive_connections() {
    let server = stress_server(Duration::from_secs(30));
    if !server.event_driven() {
        eprintln!("skipping: event mode unsupported on this platform");
        return;
    }
    let addr = server.local_addr();
    let mut clients = Vec::with_capacity(1000);
    for i in 0..1000 {
        let mut client = HttpClient::connect(addr).expect("connect");
        let resp = client.get("/ping").unwrap_or_else(|e| panic!("request {i}: {e}"));
        assert_eq!(resp.status, 200);
        clients.push(client);
    }
    let stats = server.stats();
    assert_eq!(stats.open, 1000, "every keep-alive connection must stay parked");
    assert_eq!(stats.requests, 1000);
    // Parked connections are live: a second request on a sample must be
    // noticed by the poller and dispatched to a worker.
    for client in clients.iter_mut().step_by(97) {
        assert_eq!(client.get("/ping").expect("reuse parked conn").status, 200);
    }
    let stats = server.stats();
    assert!(stats.poller_dispatches > 0, "reuse must flow through the poller");
    drop(clients);
    server.shutdown();
}

/// A slowloris client dripping bytes cannot wedge the server: while it
/// drips, other clients are served (the poller never blocks a worker on the
/// dripper); once the drip stops, the connection is reaped at the idle
/// deadline instead of holding resources forever.
#[test]
fn slowloris_drip_neither_blocks_others_nor_survives_the_idle_deadline() {
    let server = stress_server(Duration::from_millis(150));
    let addr = server.local_addr();
    let mut dripper = TcpStream::connect(addr).expect("connect dripper");
    let mut healthy = HttpClient::connect(addr).expect("connect healthy");
    // Drip a request head a few bytes at a time, slower than any sane
    // client but faster than the idle deadline: the connection survives
    // (bytes are activity) and healthy traffic flows throughout.
    for chunk in [&b"GET /pi"[..], b"ng HTT", b"P/1."] {
        dripper.write_all(chunk).expect("drip");
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(healthy.get("/ping").expect("healthy during drip").status, 200);
    }
    // Stop dripping mid-request-line: the idle deadline must reap the
    // connection without ever producing a response.
    dripper.set_read_timeout(Some(Duration::from_millis(250))).unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut buf = [0u8; 64];
    loop {
        match dripper.read(&mut buf) {
            Ok(0) => break, // clean EOF: reaped
            Ok(n) => panic!("server answered a half-request: {:?}", &buf[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                assert!(Instant::now() < deadline, "stalled dripper never reaped");
            }
            Err(_) => break, // reset: an equally clean reap
        }
    }
    assert_eq!(healthy.get("/ping").expect("healthy after reap").status, 200);
    server.shutdown();
}

/// An abrupt half-close (FIN) mid-body releases the connection cleanly: no
/// response is invented for the truncated request, the connection slot is
/// freed, and the server keeps serving others.
#[test]
fn abrupt_half_close_mid_body_releases_the_connection() {
    let server = stress_server(Duration::from_secs(5));
    let addr = server.local_addr();
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(b"POST /echo HTTP/1.1\r\nContent-Length: 64\r\n\r\npartial")
        .expect("send truncated request");
    s.shutdown(std::net::Shutdown::Write).expect("half-close");
    // The server sees EOF with an incomplete body: it must close without
    // answering (an invented 200/400 here would desync any pipeline).
    s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    let mut rest = Vec::new();
    // An Err here (reset) is an equally clean release.
    if s.read_to_end(&mut rest).is_ok() {
        assert!(rest.is_empty(), "no response for a truncated body");
    }
    // The slot is freed and service continues.
    let deadline = Instant::now() + Duration::from_secs(2);
    while server.stats().open > 0 {
        assert!(Instant::now() < deadline, "half-closed connection never released");
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut healthy = HttpClient::connect(addr).expect("connect after half-close");
    assert_eq!(healthy.get("/ping").expect("serve after half-close").status, 200);
    server.shutdown();
}

/// The SIGTERM drain path (`ServeHandle::drain`, what the CLI's signal
/// handler invokes) completes promptly even with a fleet of idle
/// connections parked in the poller — parked conns are dropped, in-flight
/// work finishes, and the port closes.
#[test]
fn drain_completes_promptly_with_connections_parked_in_the_poller() {
    let xs: Vec<Vec<f32>> = (0..32).map(|i| vec![i as f32 / 32.0]).collect();
    let ys: Vec<f64> = (0..32).map(|i| i as f64 / 32.0).collect();
    let healing = SelfHealingService::new(
        |f: &[f32]| f[0] as f64,
        AbsoluteResidual,
        &xs,
        &ys,
        PiServiceConfig::default(),
        HealConfig::default(),
    );
    let engine = Arc::new(ServeEngine::new(healing, Vec::new(), 1));
    let handle = start_server(engine, "127.0.0.1:0", HttpServeConfig::default())
        .expect("bind server");
    let addr = handle.local_addr();
    let clients: Vec<HttpClient> = (0..32)
        .map(|_| {
            let mut client = HttpClient::connect(addr).expect("connect");
            assert_eq!(client.get("/healthz").expect("warm request").status, 200);
            client
        })
        .collect();
    // All 32 are idle and parked. Drain must not wait out any read timeout.
    let t0 = Instant::now();
    handle.drain();
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "drain stalled on parked connections ({:?})",
        t0.elapsed()
    );
    assert!(HttpClient::connect(addr).is_err(), "port open after drain");
    drop(clients);
}
