//! Property-based tests of the conformal core's invariants, plus
//! cross-crate round-trip properties.

use cardest::conformal::{
    conformal_quantile, conformal_quantile_lower, AbsoluteResidual, PredictionInterval,
    QErrorScore, RelativeErrorScore, ScoreFunction, SplitConformal,
};
use cardest::estimators::SingleTableFeaturizer;
use cardest::storage::{ColumnKind, ConjunctiveQuery, Predicate, Schema};
use proptest::prelude::*;

fn scores_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1e6, 1..200)
}

proptest! {
    /// The conformal quantile is an order statistic: permutation-invariant,
    /// at least the median for alpha <= 0.5, and monotone in alpha.
    #[test]
    fn conformal_quantile_is_permutation_invariant(mut scores in scores_strategy(), alpha in 0.01f64..0.5) {
        let q1 = conformal_quantile(&scores, alpha);
        scores.reverse();
        let q2 = conformal_quantile(&scores, alpha);
        prop_assert_eq!(q1, q2);
    }

    #[test]
    fn conformal_quantile_is_monotone_in_alpha(scores in scores_strategy(), a in 0.02f64..0.4, b in 0.02f64..0.4) {
        let (lo_a, hi_a) = (a.min(b), a.max(b));
        // Smaller alpha (higher coverage) -> larger threshold.
        let q_hi_cov = conformal_quantile(&scores, lo_a);
        let q_lo_cov = conformal_quantile(&scores, hi_a);
        prop_assert!(q_hi_cov >= q_lo_cov);
    }

    #[test]
    fn conformal_quantile_bounds_the_right_mass(scores in scores_strategy(), alpha in 0.05f64..0.5) {
        let q = conformal_quantile(&scores, alpha);
        if q.is_finite() {
            let below = scores.iter().filter(|&&s| s <= q).count() as f64;
            // By construction at least ceil((1-alpha)(n+1)) of n+1 ranks are
            // covered; on the observed n that is at least (1-alpha)*n.
            prop_assert!(below >= ((1.0 - alpha) * scores.len() as f64).floor());
        }
    }

    #[test]
    fn lower_quantile_never_exceeds_upper(scores in scores_strategy(), alpha in 0.01f64..0.5) {
        prop_assert!(
            conformal_quantile_lower(&scores, alpha) <= conformal_quantile(&scores, alpha)
        );
    }

    /// Score inversion: any y inside the returned interval scores <= delta.
    #[test]
    fn absolute_residual_inversion_sound(y_hat in -1e3f64..1e3, delta in 0.0f64..1e3, t in 0.0f64..1.0) {
        let (lo, hi) = AbsoluteResidual.interval(y_hat, delta);
        let y = lo + t * (hi - lo);
        prop_assert!(AbsoluteResidual.score(y, y_hat) <= delta + 1e-9);
    }

    #[test]
    fn q_error_inversion_sound(y_hat in 1e-6f64..1.0, delta in 1.0f64..1e3, t in 0.0f64..1.0) {
        let score = QErrorScore::new(1e-9);
        let (lo, hi) = score.interval(y_hat, delta);
        let y = lo + t * (hi - lo);
        prop_assert!(score.score(y, y_hat) <= delta * (1.0 + 1e-9));
    }

    #[test]
    fn relative_error_inversion_sound(y_hat in 1e-6f64..1.0, delta in 0.0f64..3.0, t in 0.0f64..1.0) {
        let score = RelativeErrorScore::new(1e-12);
        let (lo, hi) = score.interval(y_hat, delta);
        prop_assert!(hi.is_finite(), "estimate-normalized inversion is bounded");
        let y = lo + t * (hi - lo);
        prop_assert!(score.score(y, y_hat) <= delta + 1e-9);
    }

    /// Q-error is symmetric, >= 1, and multiplicative-scale invariant.
    #[test]
    fn q_error_score_properties(a in 1e-6f64..1e6, b in 1e-6f64..1e6, k in 0.5f64..2.0) {
        let s = QErrorScore::new(1e-12);
        prop_assert!((s.score(a, b) - s.score(b, a)).abs() < 1e-9 * s.score(a, b));
        prop_assert!(s.score(a, b) >= 1.0);
        let scaled = s.score(a * k, b * k);
        prop_assert!((scaled - s.score(a, b)).abs() < 1e-6 * scaled);
    }

    /// Interval clipping: result inside [min,max], ordered, width shrinks.
    #[test]
    fn clip_properties(lo in -2.0f64..2.0, hi in -2.0f64..2.0) {
        let iv = PredictionInterval::new(lo, hi);
        let clipped = iv.clip(0.0, 1.0);
        prop_assert!(clipped.lo >= 0.0 && clipped.hi <= 1.0);
        prop_assert!(clipped.lo <= clipped.hi);
        prop_assert!(clipped.width() <= iv.width() + 1e-12);
    }

    /// The canonical encoding round-trips arbitrary valid queries exactly.
    #[test]
    fn featurizer_round_trip(
        a_val in 0u32..7,
        b_lo in 0u32..50,
        b_width in 0u32..49,
        c_val in 0u32..3,
        use_a in any::<bool>(),
        use_b in any::<bool>(),
        use_c in any::<bool>(),
    ) {
        let schema = Schema::from_specs(&[
            ("a", 7, ColumnKind::Categorical),
            ("b", 50, ColumnKind::Numeric),
            ("c", 3, ColumnKind::Categorical),
        ]);
        let feat = SingleTableFeaturizer::new(schema);
        let mut preds = Vec::new();
        if use_a { preds.push(Predicate::eq(0, a_val)); }
        if use_b {
            let hi = (b_lo + b_width).min(49);
            preds.push(Predicate::range(1, b_lo.min(hi), hi));
        }
        if use_c { preds.push(Predicate::eq(2, c_val)); }
        let q = ConjunctiveQuery::new(preds);
        prop_assert_eq!(feat.decode(&feat.encode(&q)), q);
    }

    /// Split conformal around an arbitrary linear model on exchangeable
    /// noisy data achieves close-to-nominal coverage.
    #[test]
    fn split_conformal_covers_synthetic(seed in 0u64..1000) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let gen = |rng: &mut StdRng| {
            let x: Vec<Vec<f32>> = (0..150).map(|_| vec![rng.gen_range(0.0..1.0f32)]).collect();
            let y: Vec<f64> = x.iter().map(|f| f[0] as f64 + rng.gen_range(-0.2..0.2)).collect();
            (x, y)
        };
        let (cx, cy) = gen(&mut rng);
        let (tx, ty) = gen(&mut rng);
        let model = |f: &[f32]| f[0] as f64;
        let scp = SplitConformal::calibrate(model, AbsoluteResidual, &cx, &cy, 0.2);
        let covered = tx.iter().zip(&ty)
            .filter(|(f, &y)| scp.interval(f).contains(y))
            .count() as f64 / tx.len() as f64;
        // Per-seed bound is deliberately loose (n = 150 gives ~0.04 std and
        // proptest tries hundreds of seeds); the tight check on the *mean*
        // coverage lives in `mean_coverage_hits_nominal_rate` below.
        prop_assert!(covered >= 0.55, "coverage {}", covered);
    }
}

/// Averaged over many seeds, split-conformal coverage meets the nominal
/// rate — the sharp version of the property above.
#[test]
fn mean_coverage_hits_nominal_rate() {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut total = 0.0;
    let trials = 40;
    for seed in 0..trials {
        let mut rng = StdRng::seed_from_u64(seed);
        let gen = |rng: &mut StdRng| {
            let x: Vec<Vec<f32>> =
                (0..150).map(|_| vec![rng.gen_range(0.0..1.0f32)]).collect();
            let y: Vec<f64> =
                x.iter().map(|f| f[0] as f64 + rng.gen_range(-0.2..0.2)).collect();
            (x, y)
        };
        let (cx, cy) = gen(&mut rng);
        let (tx, ty) = gen(&mut rng);
        let model = |f: &[f32]| f[0] as f64;
        let scp = SplitConformal::calibrate(model, AbsoluteResidual, &cx, &cy, 0.2);
        total += tx
            .iter()
            .zip(&ty)
            .filter(|(f, &y)| scp.interval(f).contains(y))
            .count() as f64
            / tx.len() as f64;
    }
    let mean = total / trials as f64;
    assert!(mean >= 0.78, "mean coverage {mean} below nominal 0.8");
}
