//! Observability-layer integration tests: [`CoverageMonitor`] sliding-window
//! semantics as properties against a reference implementation, and the
//! telemetry registry's JSON/Prometheus exports round-tripped through a real
//! JSON parser to prove both formats carry identical values.

use std::collections::VecDeque;

use cardest::conformal::{CoverageMonitor, CoverageMonitorConfig};
use proptest::prelude::*;

proptest! {
    /// Rolling coverage always equals the exact covered fraction of a
    /// reference sliding window — and is therefore always in `[0, 1]` and
    /// based on at most `window` observations.
    #[test]
    fn coverage_matches_reference_window(
        outcomes in prop::collection::vec(any::<bool>(), 1..300),
        window in 1usize..64,
    ) {
        let mut m = CoverageMonitor::new(CoverageMonitorConfig {
            window,
            min_samples: 1,
            ..Default::default()
        });
        let mut reference: VecDeque<bool> = VecDeque::new();
        for (i, &covered) in outcomes.iter().enumerate() {
            m.observe(covered, i as f64);
            if reference.len() == window {
                reference.pop_front();
            }
            reference.push_back(covered);
            let expected = reference.iter().filter(|&&c| c).count() as f64
                / reference.len() as f64;
            prop_assert!((m.coverage() - expected).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&m.coverage()));
            prop_assert_eq!(m.len(), reference.len());
        }
        prop_assert_eq!(m.observed_total(), outcomes.len() as u64);
    }

    /// Eviction is strictly FIFO: with strictly increasing widths, the
    /// narrowest surviving width identifies exactly which observations were
    /// evicted, and the widest is always the most recent.
    #[test]
    fn window_evicts_in_fifo_order(
        n in 1usize..300,
        window in 1usize..48,
    ) {
        let mut m = CoverageMonitor::new(CoverageMonitorConfig {
            window,
            min_samples: 1,
            ..Default::default()
        });
        for i in 0..n {
            m.observe(true, i as f64);
        }
        let kept = n.min(window);
        prop_assert_eq!(m.len(), kept);
        prop_assert_eq!(m.width_quantile(0.0), (n - kept) as f64);
        prop_assert_eq!(m.width_quantile(1.0), (n - 1) as f64);
    }

    /// Hysteresis invariants hold after every observation: an active alarm
    /// implies coverage below the clear point; a silent monitor with a
    /// full-enough window implies coverage at or above the raise floor; and
    /// the activation count never decreases.
    #[test]
    fn alarm_hysteresis_invariants(
        outcomes in prop::collection::vec(any::<bool>(), 1..400),
    ) {
        let config = CoverageMonitorConfig {
            window: 40,
            min_samples: 10,
            ..Default::default()
        };
        let raise_floor = 1.0 - config.alpha - config.epsilon;
        let clear_point = 1.0 - config.alpha - 0.5 * config.epsilon;
        let mut m = CoverageMonitor::new(config);
        let mut last_alarms = 0;
        for &covered in &outcomes {
            m.observe(covered, 1.0);
            if m.drift().is_some() {
                prop_assert!(
                    m.coverage() < clear_point,
                    "active alarm with coverage {} >= clear point {clear_point}",
                    m.coverage()
                );
            } else if m.len() >= config.min_samples {
                prop_assert!(
                    m.coverage() >= raise_floor,
                    "silent monitor with coverage {} < floor {raise_floor}",
                    m.coverage()
                );
            }
            prop_assert!(m.alarms_raised() >= last_alarms);
            last_alarms = m.alarms_raised();
        }
    }
}

/// Parses Prometheus text exposition into `(metric-with-labels, value)`
/// pairs, skipping `# TYPE` comment lines.
fn parse_prometheus(text: &str) -> Vec<(String, f64)> {
    text.lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .map(|l| {
            let (name, value) = l.rsplit_once(' ').expect("prom line is `name value`");
            (name.to_string(), value.parse().expect("prom value parses as f64"))
        })
        .collect()
}

fn prom_value(prom: &[(String, f64)], name: &str) -> f64 {
    prom.iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("metric `{name}` missing from prometheus export"))
        .1
}

/// `object.field` as an f64, panicking with the path on any mismatch.
fn json_num(value: &serde_json::Value, field: &str) -> f64 {
    value
        .field(field)
        .and_then(serde_json::Value::as_f64)
        .unwrap_or_else(|e| panic!("field `{field}`: {e}"))
}

/// The acceptance check for the export layer: record into a private
/// registry, then parse the JSON export with a real JSON parser and the
/// Prometheus export by hand, and verify both carry the same counter,
/// gauge, and histogram values (including every cumulative bucket).
#[test]
fn json_and_prometheus_exports_round_trip() {
    let registry = ce_telemetry::Registry::new();
    ce_telemetry::set_enabled(true);
    registry.counter("events.total").add(42);
    registry.gauge("queue.depth").set(7.5);
    let samples: [u64; 8] = [0, 1, 2, 3, 100, 1000, 65_535, 1_000_000];
    let h = registry.histogram("latency.ns");
    for v in samples {
        h.record(v);
    }
    let json_text = registry.to_json();
    let prom_text = registry.to_prometheus();
    ce_telemetry::set_enabled(false);

    let json = serde_json::parse(&json_text).expect("JSON export parses");
    let prom = parse_prometheus(&prom_text);

    // Counter and gauge agree across formats.
    let counters = json.field("counters").expect("counters section");
    assert_eq!(json_num(counters, "events.total"), 42.0);
    assert_eq!(prom_value(&prom, "cardest_events_total"), 42.0);
    let gauges = json.field("gauges").expect("gauges section");
    assert_eq!(json_num(gauges, "queue.depth"), 7.5);
    assert_eq!(prom_value(&prom, "cardest_queue_depth"), 7.5);

    // Histogram summary values agree.
    let sum: u64 = samples.iter().sum();
    let hist = json
        .field("histograms")
        .and_then(|h| h.field("latency.ns"))
        .expect("latency.ns histogram");
    assert_eq!(json_num(hist, "count"), samples.len() as f64);
    assert_eq!(json_num(hist, "sum"), sum as f64);
    assert_eq!(json_num(hist, "max"), 1_000_000.0);
    assert_eq!(prom_value(&prom, "cardest_latency_ns_count"), samples.len() as f64);
    assert_eq!(prom_value(&prom, "cardest_latency_ns_sum"), sum as f64);

    // Every cumulative bucket in the JSON export has a Prometheus twin with
    // the identical count, and vice versa (same number of bucket lines).
    let serde_json::Value::Array(json_buckets) = hist.field("buckets").expect("buckets")
    else {
        panic!("buckets is not an array");
    };
    assert!(!json_buckets.is_empty());
    for pair in json_buckets {
        let serde_json::Value::Array(pair) = pair else { panic!("bucket is [le, cum]") };
        let label = match &pair[0] {
            serde_json::Value::Num(le) => format!("{le:.0}"),
            serde_json::Value::Str(s) => {
                assert_eq!(s, "+Inf", "non-numeric le is +Inf");
                s.clone()
            }
            other => panic!("unexpected le {other:?}"),
        };
        let cum = pair[1].as_f64().expect("cumulative count");
        let prom_bucket =
            prom_value(&prom, &format!("cardest_latency_ns_bucket{{le=\"{label}\"}}"));
        assert_eq!(prom_bucket, cum, "bucket le={label} diverges across formats");
    }
    let prom_bucket_lines =
        prom.iter().filter(|(n, _)| n.starts_with("cardest_latency_ns_bucket")).count();
    assert_eq!(prom_bucket_lines, json_buckets.len());

    // The +Inf bucket equals the total count in both formats.
    let last = json_buckets.last().unwrap();
    let serde_json::Value::Array(last) = last else { panic!("bucket is [le, cum]") };
    assert_eq!(last[0], serde_json::Value::Str("+Inf".into()));
    assert_eq!(last[1].as_f64().unwrap(), samples.len() as f64);
}
