//! Multi-tenant serving: a registry of named engines with hot reload,
//! per-tenant fairness, and an interval cache (DESIGN.md §15).
//!
//! A production estimator fleet serves *many* models and tenants from one
//! process. This module promotes the single [`ServeEngine`] of
//! [`crate::serve`] into a [`ModelRegistry`]:
//!
//! - **Named routes** — `POST /v1/predict/{model}` and
//!   `POST /v1/observe/{model}` address one registered engine each;
//!   unknown names answer `404`. The bare `POST /v1/predict` and
//!   `POST /v1/observe` stay wire-compatible, aliased to the
//!   [`DEFAULT_MODEL`] — a PR 9 cluster router keeps working unchanged.
//! - **Hot reload** — `POST /v1/admin/models/{model}` with a raw
//!   checkpoint body builds a *shadow* engine through the registry's
//!   factory, validates it against a held-back replay buffer of recently
//!   observed truths (coverage ≥ 1−α−ε and bounded width blow-up — the
//!   same acceptance rule the `SelfHealingService` applies to its own
//!   recalibration candidates), then atomically swaps it in. A failed
//!   validation rolls back: the old engine keeps serving, the response is
//!   `409`, and the `reload.*` counters + flight-recorder events record
//!   the trail. In-flight requests always finish on the engine they
//!   started on — a swap drops no requests.
//! - **Per-tenant fairness** — admission is token-bucket rate limited per
//!   `x-ce-tenant` header ([`ce_server::TenantLimiter`]): an exhausted
//!   bucket sheds with JSON `429` + deterministic `Retry-After`, and the
//!   admission-queue 503 hands the tenant currently over its fair share a
//!   longer hint than its victims. Per-tenant shed counters and
//!   queue-depth gauges ride `/metrics`.
//! - **Interval cache** — an LRU keyed by (model, request-signature,
//!   reload generation, serving epoch) memoizes predict response bodies.
//!   Truth-carrying requests bypass it (they mutate state). The epoch pair
//!   is seqlock-style: every serving-state change (any observation,
//!   promotion/rollback inside one, a breaker transition, a reload)
//!   advances it, and an entry is only written when two even reads
//!   bracketing the computation match — so a hit is *byte-identical* to a
//!   fresh prediction at the same epoch, which the `tenant` experiment
//!   bit-audits on the wire. Reload additionally invalidates the model's
//!   entries wholesale.
//!
//! Lock order: the registry's model map read-lock, then a model's engine
//! slot read-lock, then the engine's documented `resilient → healing`
//! chain order. The cache and limiter use their own leaf mutexes and are
//! never held across an engine call.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

use crate::conformal::{
    decode_checkpoint, CardEstError, Checkpoint, HealState, PredictionInterval, Regressor,
    ScoreFunction,
};
use crate::serve::{
    json_error, parse_predict_body, parse_truth_id, publish_server_stats, render_predict_body,
    HttpServeConfig, ServeEngine, ServeHandle,
};
use ce_server::{
    fnv1a64, Admission, BatchError, BatcherConfig, BatcherStats, HttpServer, MicroBatcher,
    RateLimit, Request, Response, ServerConfig, ServerStatsProbe, TenantLimiter,
    STAGES_HEADER, TENANT_HEADER, TRACE_HEADER, TRUTH_HEADER,
};
use ce_telemetry::trace::{self, TraceId};

/// The model name the bare (PR 5–9 era) endpoints alias to.
pub const DEFAULT_MODEL: &str = "default";

/// Builds a fresh engine from a decoded checkpoint — the hot-reload
/// hook. The model weights are not in the checkpoint (they are retrained
/// or cloned deterministically by the host), so the registry owner
/// supplies the closure that marries a checkpoint's calibration state to
/// a model and fallback chain.
pub type EngineFactory<M, S> =
    Box<dyn Fn(Checkpoint) -> Result<ServeEngine<M, S>, CardEstError> + Send + Sync>;

/// Interval results for one batch, as produced by the resilient chain.
type BatchResults = Vec<Result<PredictionInterval, CardEstError>>;

/// Monotonic nanoseconds since the first call in this process — the
/// limiter's deterministic clock input.
fn now_nanos() -> u64 {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    let anchor = *ANCHOR.get_or_init(Instant::now);
    anchor.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

// ---------------------------------------------------------------------------
// Registry tuning
// ---------------------------------------------------------------------------

/// Tuning shared by every model in a [`ModelRegistry`].
#[derive(Debug, Clone, Copy)]
pub struct RegistryTuning {
    /// Per-model micro-batcher admission tuning.
    pub batcher: BatcherConfig,
    /// Interval-cache capacity in entries; `0` disables caching.
    pub cache_entries: usize,
    /// Held-back replay pairs kept per model for reload validation.
    pub replay_cap: usize,
    /// Minimum replay pairs required to validate a reload candidate; with
    /// fewer, validation is *skipped* (the swap reports
    /// `"validated":false`) — a freshly registered model has nothing to
    /// validate against yet.
    pub min_replay: usize,
}

impl Default for RegistryTuning {
    fn default() -> Self {
        RegistryTuning {
            batcher: BatcherConfig {
                queue_cap: 1024,
                max_batch: 64,
                window: std::time::Duration::ZERO,
            },
            cache_entries: 0,
            replay_cap: 256,
            min_replay: 32,
        }
    }
}

impl RegistryTuning {
    /// Batcher tuning lifted from the single-engine HTTP config (cache and
    /// limiter off — [`crate::serve::start_server`] semantics).
    pub fn from_http(config: &HttpServeConfig) -> RegistryTuning {
        RegistryTuning {
            batcher: BatcherConfig {
                queue_cap: config.queue_cap,
                max_batch: config.max_batch,
                window: config.batch_window,
            },
            ..RegistryTuning::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Interval cache
// ---------------------------------------------------------------------------

/// Cache key: one model's request signature at one serving state. The
/// (reload generation, serving epoch) pair makes stale entries
/// unreachable rather than deleted — any state change moves the key
/// space, and LRU pressure reclaims the orphans.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    model: String,
    signature: u64,
    reload_gen: u64,
    epoch: u64,
}

struct CacheSlot {
    stamp: u64,
    body: Arc<str>,
}

#[derive(Default)]
struct CacheInner {
    map: HashMap<CacheKey, CacheSlot>,
    /// True LRU order: stamp → key, oldest first. Stamps are unique (the
    /// clock increments on every touch), so `BTreeMap` gives O(log n)
    /// touch and eviction.
    lru: BTreeMap<u64, CacheKey>,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
}

/// Counters for the metrics surface and the bench gates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a body.
    pub hits: u64,
    /// Lookups that missed (including epoch moves).
    pub misses: u64,
    /// Entries evicted by capacity pressure.
    pub evictions: u64,
    /// Entries dropped by wholesale model invalidation (reload).
    pub invalidations: u64,
    /// Entries resident now.
    pub entries: usize,
}

/// The LRU interval cache (module docs). The PostBOUND
/// `PreciseCardinalityHintGenerator` keeps a per-estimator cardinality
/// cache that is manually reset on data shift; this is that idea adapted
/// to interval *responses*, with the reset made automatic and provable
/// via the epoch key.
pub struct IntervalCache {
    cap: usize,
    inner: Mutex<CacheInner>,
}

impl IntervalCache {
    /// A cache holding at most `cap` bodies; `cap == 0` disables it (every
    /// lookup misses, every insert is dropped).
    pub fn new(cap: usize) -> IntervalCache {
        IntervalCache { cap, inner: Mutex::new(CacheInner::default()) }
    }

    /// Whether inserts can ever succeed.
    pub fn enabled(&self) -> bool {
        self.cap > 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn get(&self, model: &str, signature: u64, reload_gen: u64, epoch: u64) -> Option<Arc<str>> {
        if self.cap == 0 {
            return None;
        }
        let key = CacheKey { model: model.to_string(), signature, reload_gen, epoch };
        let mut inner = self.lock();
        inner.clock += 1;
        let stamp = inner.clock;
        match inner.map.get_mut(&key) {
            Some(slot) => {
                let old = std::mem::replace(&mut slot.stamp, stamp);
                let body = Arc::clone(&slot.body);
                inner.lru.remove(&old);
                inner.lru.insert(stamp, key);
                inner.hits += 1;
                Some(body)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    fn insert(&self, model: &str, signature: u64, reload_gen: u64, epoch: u64, body: &str) {
        if self.cap == 0 {
            return;
        }
        let key = CacheKey { model: model.to_string(), signature, reload_gen, epoch };
        let mut inner = self.lock();
        inner.clock += 1;
        let stamp = inner.clock;
        if let Some(old) = inner.map.remove(&key) {
            inner.lru.remove(&old.stamp);
        }
        while inner.map.len() >= self.cap {
            let Some((&oldest, _)) = inner.lru.iter().next() else { break };
            if let Some(victim) = inner.lru.remove(&oldest) {
                inner.map.remove(&victim);
                inner.evictions += 1;
            }
        }
        inner.lru.insert(stamp, key.clone());
        inner.map.insert(key, CacheSlot { stamp, body: Arc::from(body) });
    }

    /// Drops every entry belonging to `model` (any generation or epoch) —
    /// the wholesale reset on reload. The epoch key already makes stale
    /// entries unreachable; this reclaims their memory immediately.
    fn invalidate_model(&self, model: &str) {
        let mut inner = self.lock();
        let victims: Vec<CacheKey> =
            inner.map.keys().filter(|k| k.model == model).cloned().collect();
        for key in victims {
            if let Some(slot) = inner.map.remove(&key) {
                inner.lru.remove(&slot.stamp);
                inner.invalidations += 1;
            }
        }
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            invalidations: inner.invalidations,
            entries: inner.map.len(),
        }
    }
}

// ---------------------------------------------------------------------------
// Model entries and the registry
// ---------------------------------------------------------------------------

/// One named model: the engine slot (swapped atomically on reload), its
/// micro-batcher (which outlives reloads — in-flight batches finish on
/// the engine they resolved), the reload seqlock, and the held-back
/// replay buffer.
pub struct ModelEntry<M, S> {
    name: String,
    slot: Arc<RwLock<Arc<ServeEngine<M, S>>>>,
    batcher: Arc<MicroBatcher<Vec<f32>, Result<PredictionInterval, CardEstError>>>,
    /// Seqlock generation for engine swaps: odd while a swap is in
    /// progress, +2 per completed reload. Part of every cache key.
    reload_gen: AtomicU64,
    reloads: AtomicU64,
    reload_rejects: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    replay: Mutex<VecDeque<(Vec<f32>, f64)>>,
    replay_cap: usize,
}

impl<M, S> ModelEntry<M, S>
where
    M: Regressor + Clone + Send + Sync + 'static,
    S: ScoreFunction + Clone + Send + Sync + 'static,
{
    fn new(name: &str, engine: Arc<ServeEngine<M, S>>, tuning: &RegistryTuning) -> ModelEntry<M, S> {
        let slot = Arc::new(RwLock::new(engine));
        let batcher_slot = Arc::clone(&slot);
        let batcher = MicroBatcher::new(tuning.batcher, move |items: Vec<Vec<f32>>| {
            // Resolve the engine per batch and release the slot lock before
            // inference: a reload swap never waits on a running batch, and
            // the batch finishes on the engine it started with.
            let engine =
                Arc::clone(&*batcher_slot.read().unwrap_or_else(|e| e.into_inner()));
            engine.predict_batch(&items)
        });
        ModelEntry {
            name: name.to_string(),
            slot,
            batcher,
            reload_gen: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            reload_rejects: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            replay: Mutex::new(VecDeque::new()),
            replay_cap: tuning.replay_cap,
        }
    }

    /// The model's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The engine serving this model right now.
    pub fn engine(&self) -> Arc<ServeEngine<M, S>> {
        Arc::clone(&*self.slot.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// The reload seqlock value (even = quiescent).
    pub fn reload_gen(&self) -> u64 {
        self.reload_gen.load(Ordering::SeqCst)
    }

    /// Completed reload swaps.
    pub fn reloads(&self) -> u64 {
        self.reloads.load(Ordering::Relaxed)
    }

    /// Reload candidates rejected by shadow validation.
    pub fn reload_rejects(&self) -> u64 {
        self.reload_rejects.load(Ordering::Relaxed)
    }

    /// Atomically swaps the serving engine (seqlock around the store, so
    /// cache writers that straddle the swap abandon their insert).
    fn swap(&self, engine: Arc<ServeEngine<M, S>>) {
        self.reload_gen.fetch_add(1, Ordering::SeqCst);
        *self.slot.write().unwrap_or_else(|e| e.into_inner()) = engine;
        self.reload_gen.fetch_add(1, Ordering::SeqCst);
    }

    /// Remembers observed truths for reload validation (bounded FIFO).
    fn remember(&self, features: &[Vec<f32>], truths: &[f64]) {
        let mut replay = self.replay.lock().unwrap_or_else(|e| e.into_inner());
        for (x, y) in features.iter().zip(truths) {
            if replay.len() == self.replay_cap {
                replay.pop_front();
            }
            replay.push_back((x.clone(), *y));
        }
    }

    /// A copy of the held-back replay pairs.
    fn replay_snapshot(&self) -> Vec<(Vec<f32>, f64)> {
        self.replay.lock().unwrap_or_else(|e| e.into_inner()).iter().cloned().collect()
    }

    /// Replay pairs currently held.
    pub fn replay_len(&self) -> usize {
        self.replay.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

/// Why a reload request failed before reaching validation.
#[derive(Debug)]
pub enum ReloadError {
    /// No model registered under that name.
    UnknownModel,
    /// The registry has no [`EngineFactory`] — reload is not supported.
    NoFactory,
    /// The posted bytes are not a valid checkpoint.
    BadCheckpoint(CardEstError),
    /// The factory could not build an engine from the checkpoint.
    BuildFailed(CardEstError),
}

/// What a reload attempt measured and decided.
#[derive(Debug, Clone)]
pub struct ReloadReport {
    /// Model name.
    pub model: String,
    /// Whether the candidate was promoted (swapped in).
    pub promoted: bool,
    /// Whether shadow validation actually ran (enough replay pairs).
    pub validated: bool,
    /// Replay pairs the candidate was validated against.
    pub replay_len: usize,
    /// Candidate coverage on the replay buffer (NaN when not validated).
    pub shadow_coverage: f64,
    /// Coverage floor the candidate had to clear: 1 − α − ε.
    pub coverage_floor: f64,
    /// Mean candidate width over mean live width (NaN when not validated).
    pub width_ratio: f64,
    /// Width ceiling from the live engine's heal config.
    pub width_ceiling: f64,
}

impl ReloadReport {
    /// The report as a JSON object (the admin endpoint's response body).
    pub fn to_json(&self) -> String {
        let escaped = self.model.replace('\\', "\\\\").replace('"', "\\\"");
        format!(
            "{{\"model\":\"{}\",\"promoted\":{},\"validated\":{},\"replay\":{},\
             \"shadow_coverage\":{},\"coverage_floor\":{},\"width_ratio\":{},\
             \"width_ceiling\":{}}}",
            escaped,
            self.promoted,
            self.validated,
            self.replay_len,
            crate::serve::json_f64(self.shadow_coverage),
            crate::serve::json_f64(self.coverage_floor),
            crate::serve::json_f64(self.width_ratio),
            crate::serve::json_f64(self.width_ceiling),
        )
    }
}

/// The registry: named engines plus the shared cache, limiter, and reload
/// factory (module docs).
pub struct ModelRegistry<M, S> {
    tuning: RegistryTuning,
    models: RwLock<BTreeMap<String, Arc<ModelEntry<M, S>>>>,
    cache: IntervalCache,
    limiter: Option<TenantLimiter>,
    factory: Option<EngineFactory<M, S>>,
}

impl<M, S> ModelRegistry<M, S>
where
    M: Regressor + Clone + Send + Sync + 'static,
    S: ScoreFunction + Clone + Send + Sync + 'static,
{
    /// An empty registry with the given tuning (no limiter, no factory).
    pub fn new(tuning: RegistryTuning) -> ModelRegistry<M, S> {
        ModelRegistry {
            tuning,
            models: RwLock::new(BTreeMap::new()),
            cache: IntervalCache::new(tuning.cache_entries),
            limiter: None,
            factory: None,
        }
    }

    /// Attaches per-tenant token-bucket rate limiting.
    pub fn with_limiter(mut self, limit: RateLimit) -> Self {
        self.limiter = Some(TenantLimiter::new(limit));
        self
    }

    /// Attaches the checkpoint→engine factory that enables hot reload.
    pub fn with_factory(mut self, factory: EngineFactory<M, S>) -> Self {
        self.factory = Some(factory);
        self
    }

    fn models_read(
        &self,
    ) -> std::sync::RwLockReadGuard<'_, BTreeMap<String, Arc<ModelEntry<M, S>>>> {
        self.models.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers (or replaces) a model under `name`.
    pub fn register(&self, name: &str, engine: ServeEngine<M, S>) -> Arc<ModelEntry<M, S>> {
        self.register_shared(name, Arc::new(engine))
    }

    /// Registers (or replaces) a model around a caller-held engine `Arc`
    /// (the caller keeps it for checkpointing, like
    /// [`crate::serve::start_server`] does).
    pub fn register_shared(
        &self,
        name: &str,
        engine: Arc<ServeEngine<M, S>>,
    ) -> Arc<ModelEntry<M, S>> {
        let entry = Arc::new(ModelEntry::new(name, engine, &self.tuning));
        let mut models = self.models.write().unwrap_or_else(|e| e.into_inner());
        models.insert(name.to_string(), Arc::clone(&entry));
        entry
    }

    /// The entry serving `name`, if registered.
    pub fn entry(&self, name: &str) -> Option<Arc<ModelEntry<M, S>>> {
        self.models_read().get(name).cloned()
    }

    /// Registered model names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.models_read().keys().cloned().collect()
    }

    /// The shared interval cache.
    pub fn cache(&self) -> &IntervalCache {
        &self.cache
    }

    /// The per-tenant limiter, when rate limiting is on.
    pub fn limiter(&self) -> Option<&TenantLimiter> {
        self.limiter.as_ref()
    }

    /// The `Retry-After` hint for an admission-queue overflow: a tenant
    /// currently over its fair share of in-flight depth is told to back
    /// off longer than the tenants it is crowding out.
    fn overflow_retry_hint(&self, tenant: &str) -> &'static str {
        match &self.limiter {
            Some(limiter) if limiter.over_fair_share(tenant) => "3",
            _ => "1",
        }
    }

    /// Hot reload (module docs): decode → build shadow → validate on the
    /// replay buffer → atomic swap, or roll back. Never touches the live
    /// engine on any failure path.
    pub fn reload(&self, name: &str, checkpoint_bytes: &[u8]) -> Result<ReloadReport, ReloadError> {
        let entry = self.entry(name).ok_or(ReloadError::UnknownModel)?;
        let factory = self.factory.as_ref().ok_or(ReloadError::NoFactory)?;
        let checkpoint = decode_checkpoint(checkpoint_bytes).map_err(|e| {
            ce_telemetry::counter("reload.invalid").inc();
            trace::event("reload", &format!("model {name}: bad checkpoint ({e})"));
            ReloadError::BadCheckpoint(e)
        })?;
        let shadow = factory(checkpoint).map_err(|e| {
            ce_telemetry::counter("reload.build_failed").inc();
            trace::event("reload", &format!("model {name}: factory failed ({e})"));
            ReloadError::BuildFailed(e)
        })?;
        let live = entry.engine();
        let replay = entry.replay_snapshot();
        let heal = live.heal_config();
        let mut report = ReloadReport {
            model: name.to_string(),
            promoted: false,
            validated: false,
            replay_len: replay.len(),
            shadow_coverage: f64::NAN,
            coverage_floor: 1.0 - live.alpha() - heal.epsilon,
            width_ratio: f64::NAN,
            width_ceiling: heal.max_width_blowup,
        };
        if replay.len() >= self.tuning.min_replay {
            report.validated = true;
            let features: Vec<Vec<f32>> = replay.iter().map(|(x, _)| x.clone()).collect();
            let shadow_results = shadow.predict_batch(&features);
            let live_results = live.predict_batch(&features);
            let covered = shadow_results
                .iter()
                .zip(replay.iter())
                .filter(|(r, (_, y))| matches!(r, Ok(iv) if iv.contains(*y)))
                .count();
            report.shadow_coverage = covered as f64 / replay.len() as f64;
            report.width_ratio = width_ratio(&shadow_results, &live_results);
            let coverage_ok = report.shadow_coverage >= report.coverage_floor;
            let width_ok = report.width_ratio.is_finite() && report.width_ratio <= report.width_ceiling;
            if !coverage_ok || !width_ok {
                entry.reload_rejects.fetch_add(1, Ordering::Relaxed);
                ce_telemetry::counter("reload.rejected").inc();
                trace::event(
                    "reload",
                    &format!(
                        "model {name}: rejected (coverage {:.4} floor {:.4}, width ratio {:.3} \
                         ceiling {:.1}) — old engine keeps serving",
                        report.shadow_coverage,
                        report.coverage_floor,
                        report.width_ratio,
                        report.width_ceiling,
                    ),
                );
                return Ok(report);
            }
        }
        entry.swap(Arc::new(shadow));
        self.cache.invalidate_model(name);
        entry.reloads.fetch_add(1, Ordering::Relaxed);
        report.promoted = true;
        ce_telemetry::counter("reload.promoted").inc();
        trace::event(
            "reload",
            &format!(
                "model {name}: promoted (validated {}, coverage {:.4}, width ratio {:.3})",
                report.validated, report.shadow_coverage, report.width_ratio,
            ),
        );
        Ok(report)
    }
}

/// Mean finite candidate width over mean finite live width on the same
/// queries. Infinite (floor) intervals are excluded on both sides — the
/// guard is about the candidate *blowing up* relative to the live engine,
/// and ±∞ floors would drown that signal. Degenerate denominators fall
/// back conservatively: a zero/absent live width with a nonzero candidate
/// width reports ∞ (fails the ceiling), matching widths report 1.
fn width_ratio(shadow: &BatchResults, live: &BatchResults) -> f64 {
    fn mean_width(results: &BatchResults) -> Option<f64> {
        let widths: Vec<f64> = results
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .map(|iv| iv.hi - iv.lo)
            .filter(|w| w.is_finite())
            .collect();
        if widths.is_empty() {
            None
        } else {
            Some(widths.iter().sum::<f64>() / widths.len() as f64)
        }
    }
    match (mean_width(shadow), mean_width(live)) {
        (Some(s), Some(l)) if l > 0.0 => s / l,
        (Some(s), _) if s <= 0.0 => 1.0,
        (Some(_), _) => f64::INFINITY,
        (None, _) => f64::INFINITY,
    }
}

// ---------------------------------------------------------------------------
// Registry control surface (for ServeHandle)
// ---------------------------------------------------------------------------

/// Type-erased batcher control, so the non-generic [`ServeHandle`] can
/// drain and sum a generic registry's per-model batchers.
pub trait RegistryCtl: Send + Sync {
    /// Shuts down every model's micro-batcher (flushes queues, joins).
    fn shutdown_batchers(&self);
    /// Sums counters over every model's batcher (`max_batch_seen` is the
    /// max).
    fn batcher_stats_sum(&self) -> BatcherStats;
}

impl<M, S> RegistryCtl for ModelRegistry<M, S>
where
    M: Regressor + Clone + Send + Sync + 'static,
    S: ScoreFunction + Clone + Send + Sync + 'static,
{
    fn shutdown_batchers(&self) {
        let batchers: Vec<_> =
            self.models_read().values().map(|e| Arc::clone(&e.batcher)).collect();
        for batcher in batchers {
            batcher.shutdown();
        }
    }

    fn batcher_stats_sum(&self) -> BatcherStats {
        let mut sum = BatcherStats::default();
        for entry in self.models_read().values() {
            let stats = entry.batcher.stats();
            sum.admitted += stats.admitted;
            sum.shed += stats.shed;
            sum.batches += stats.batches;
            sum.max_batch_seen = sum.max_batch_seen.max(stats.max_batch_seen);
        }
        sum
    }
}

// ---------------------------------------------------------------------------
// HTTP surface
// ---------------------------------------------------------------------------

/// Starts the multi-tenant HTTP server for `registry` on `listen`.
///
/// Endpoints (module docs): named + bare predict/observe, the admin
/// reload route, `/metrics` with `model="…"` and `tenant="…"` labeled
/// series, `/healthz`, `/readyz`, `/debug/trace`.
pub fn start_registry_server<M, S>(
    registry: Arc<ModelRegistry<M, S>>,
    listen: &str,
    config: HttpServeConfig,
) -> std::io::Result<ServeHandle>
where
    M: Regressor + Clone + Send + Sync + 'static,
    S: ScoreFunction + Clone + Send + Sync + 'static,
{
    // Pre-size the flight recorder off the hot path: the first traced
    // request must not pay the ring allocation.
    trace::warm();
    let draining = Arc::new(AtomicBool::new(false));
    // The handler closure outlives `bind`, but the server's stats probe only
    // exists after it — a OnceLock filled post-bind closes the loop so
    // `/metrics` can report connection/poller counters.
    let probe: Arc<OnceLock<ServerStatsProbe>> = Arc::new(OnceLock::new());
    let handler = {
        let registry = Arc::clone(&registry);
        let draining = Arc::clone(&draining);
        let probe = Arc::clone(&probe);
        move |req: &Request| route_registry(req, &registry, &draining, &probe)
    };
    let server = HttpServer::bind(
        listen,
        ServerConfig {
            workers: config.workers,
            conn_queue: config.conn_queue,
            read_tick: config.read_tick,
            pollers: config.pollers,
            event_driven: config.event_driven,
            max_conns: config.max_conns,
            ..ServerConfig::default()
        },
        Arc::new(handler),
    )?;
    let _ = probe.set(server.stats_probe());
    Ok(ServeHandle { server, registry, draining })
}

/// Splits `/v1/predict/foo` → `Some("foo")` for a given prefix; the bare
/// path (no trailing segment) is not a match.
fn model_suffix<'p>(path: &'p str, prefix: &str) -> Option<&'p str> {
    path.strip_prefix(prefix).filter(|rest| !rest.is_empty())
}

fn unknown_model(name: &str) -> Response {
    let escaped = name.replace('\\', "\\\\").replace('"', "\\\"");
    Response::json(404, format!("{{\"error\":\"no such model\",\"model\":\"{escaped}\"}}"))
}

fn route_registry<M, S>(
    req: &Request,
    registry: &ModelRegistry<M, S>,
    draining: &AtomicBool,
    probe: &OnceLock<ServerStatsProbe>,
) -> Response
where
    M: Regressor + Clone + Send + Sync + 'static,
    S: ScoreFunction + Clone + Send + Sync + 'static,
{
    let path = req.path();
    match (req.method, path) {
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/readyz") => {
            if draining.load(Ordering::SeqCst) {
                Response::text(503, "draining\n")
            } else if registry
                .models_read()
                .values()
                .any(|e| e.engine().heal_state() == HealState::Recalibrating)
            {
                Response::text(503, "recalibrating\n")
            } else {
                Response::text(200, "ready\n")
            }
        }
        ("GET", "/metrics") => metrics(registry, probe),
        ("GET", "/debug/trace") => Response::json(200, trace::snapshot_json()),
        ("POST", "/v1/predict") => admit_predict(req, registry, DEFAULT_MODEL),
        ("POST", "/v1/observe") => observe_post(req, registry, DEFAULT_MODEL),
        ("POST", p) => {
            if let Some(model) = model_suffix(p, "/v1/predict/") {
                admit_predict(req, registry, model)
            } else if let Some(model) = model_suffix(p, "/v1/observe/") {
                observe_post(req, registry, model)
            } else if let Some(model) = model_suffix(p, "/v1/admin/models/") {
                admin_reload(req, registry, model)
            } else {
                json_error(404, "no such endpoint")
            }
        }
        (_, "/healthz" | "/readyz" | "/metrics" | "/debug/trace") => {
            json_error(405, "method not allowed")
        }
        (_, "/v1/predict" | "/v1/observe") => json_error(405, "method not allowed"),
        (_, p)
            if p.starts_with("/v1/predict/")
                || p.starts_with("/v1/observe/")
                || p.starts_with("/v1/admin/models/") =>
        {
            json_error(405, "method not allowed")
        }
        _ => json_error(404, "no such endpoint"),
    }
}

/// Predict admission: resolve the model, charge the tenant's token
/// bucket, then serve. The in-flight depth is held for the full request
/// so the queue-depth gauge and fair-share hint see reality.
fn admit_predict<M, S>(req: &Request, registry: &ModelRegistry<M, S>, model: &str) -> Response
where
    M: Regressor + Clone + Send + Sync + 'static,
    S: ScoreFunction + Clone + Send + Sync + 'static,
{
    let Some(entry) = registry.entry(model) else {
        return unknown_model(model);
    };
    let tenant = req.header(TENANT_HEADER).unwrap_or("");
    if let Some(limiter) = registry.limiter() {
        match limiter.admit(tenant, now_nanos()) {
            Admission::Allowed => {}
            Admission::Limited { retry_after_secs } => {
                ce_telemetry::counter("tenant.rate_limited").inc();
                let escaped = tenant.replace('\\', "\\\\").replace('"', "\\\"");
                return Response::json(
                    429,
                    format!("{{\"error\":\"rate limited\",\"tenant\":\"{escaped}\"}}"),
                )
                .header("Retry-After", &retry_after_secs.to_string());
            }
        }
    }
    let response = predict(req, registry, &entry, tenant);
    if let Some(limiter) = registry.limiter() {
        limiter.finish(tenant);
    }
    response
}

fn predict<M, S>(
    req: &Request,
    registry: &ModelRegistry<M, S>,
    entry: &ModelEntry<M, S>,
    tenant: &str,
) -> Response
where
    M: Regressor + Clone + Send + Sync + 'static,
    S: ScoreFunction + Clone + Send + Sync + 'static,
{
    // A valid client-supplied ID (exactly 32 lowercase hex digits) is an
    // explicit opt-in: it forces sampling so an upstream hop's decision
    // propagates. Otherwise head sampling decides and a fresh ID is minted.
    // A malformed or oversized header is simply ignored — the request
    // itself always proceeds.
    let client_id = req.header(TRACE_HEADER).and_then(TraceId::parse);
    if client_id.is_some() || trace::should_sample() {
        trace::begin(client_id.unwrap_or_else(trace::mint));
    }
    let response = predict_inner(req, registry, entry, tenant);
    // While a trace is active, echo its ID and report this hop's stage
    // breakdown so an upstream router can merge it. The server's connection
    // loop appends the `write` stage and publishes the record after flush.
    if let Some(id) = trace::active_id() {
        let mut response = response.header(TRACE_HEADER, &id.to_string());
        if let Some(stages) = trace::stages_header() {
            response = response.header(STAGES_HEADER, &stages);
        }
        response
    } else {
        response
    }
}

/// Both halves of the epoch pair are even: no observation window, swap,
/// or breaker transition is in progress.
fn quiescent(reload_gen: u64, epoch: u64) -> bool {
    reload_gen & 1 == 0 && epoch & 1 == 0
}

fn predict_inner<M, S>(
    req: &Request,
    registry: &ModelRegistry<M, S>,
    entry: &ModelEntry<M, S>,
    tenant: &str,
) -> Response
where
    M: Regressor + Clone + Send + Sync + 'static,
    S: ScoreFunction + Clone + Send + Sync + 'static,
{
    let (features, truths) = match parse_predict_body(req.body) {
        Ok(parsed) => parsed,
        Err(msg) => return json_error(422, &msg),
    };
    // Cache protocol (module docs): truth-free requests may be answered
    // from the cache, keyed by the raw body signature at the current
    // (reload_gen, epoch) — both read *before* the lookup, and an entry is
    // only ever inserted when the same even pair brackets the computation.
    let cacheable = truths.is_none() && registry.cache.enabled();
    let signature = fnv1a64(req.body);
    let gen_before = entry.reload_gen();
    let epoch_before = entry.engine().serving_epoch();
    if cacheable && quiescent(gen_before, epoch_before) {
        if let Some(body) =
            registry.cache.get(&entry.name, signature, gen_before, epoch_before)
        {
            entry.cache_hits.fetch_add(1, Ordering::Relaxed);
            ce_telemetry::counter("tenant.cache_hit").inc();
            return Response::json(200, body.as_ref());
        }
        entry.cache_misses.fetch_add(1, Ordering::Relaxed);
        ce_telemetry::counter("tenant.cache_miss").inc();
    }
    let results = match entry.batcher.submit_all(features.clone()) {
        Ok(results) => results,
        Err(BatchError::QueueFull) => {
            trace::event("shed", "admission queue full");
            if let Some(limiter) = registry.limiter() {
                limiter.note_overflow(tenant);
            }
            return json_error(503, "admission queue full")
                .header("Retry-After", registry.overflow_retry_hint(tenant));
        }
        Err(BatchError::Shutdown) => {
            return json_error(503, "server draining").header("Retry-After", "1");
        }
        Err(BatchError::Failed) => return json_error(500, "batch execution failed"),
    };
    // Prequential feedback strictly after the predictions: the intervals
    // above were served from pre-feedback state, like the offline loops.
    if let Some(truths) = &truths {
        let truth_id = req.header(TRUTH_HEADER).and_then(parse_truth_id);
        if entry.engine().observe_all(&features, truths, truth_id) {
            entry.remember(&features, truths);
        }
    }
    let engine = entry.engine();
    let body = render_predict_body(engine.mode(), &results);
    if cacheable && results.iter().all(|r| r.is_ok()) {
        let gen_after = entry.reload_gen();
        let epoch_after = engine.serving_epoch();
        if (gen_before, epoch_before) == (gen_after, epoch_after)
            && quiescent(gen_after, epoch_after)
        {
            registry.cache.insert(&entry.name, signature, gen_after, epoch_after, &body);
        }
    }
    Response::json(200, body)
}

/// `POST /v1/observe[/{model}]`: calibration feedback without predictions
/// — the truth replication target (DESIGN.md §14). Same body as predict
/// but `truths` is mandatory; answers `{"observed":N,"deduped":bool}`.
/// Not rate limited: replicated truths come from the router's fan-out,
/// and shedding them would skew replica calibration.
fn observe_post<M, S>(req: &Request, registry: &ModelRegistry<M, S>, model: &str) -> Response
where
    M: Regressor + Clone + Send + Sync + 'static,
    S: ScoreFunction + Clone + Send + Sync + 'static,
{
    let Some(entry) = registry.entry(model) else {
        return unknown_model(model);
    };
    let (features, truths) = match parse_predict_body(req.body) {
        Ok(parsed) => parsed,
        Err(msg) => return json_error(422, &msg),
    };
    let Some(truths) = truths else {
        return json_error(422, "`truths` is required on /v1/observe");
    };
    let truth_id = req.header(TRUTH_HEADER).and_then(parse_truth_id);
    let fresh = entry.engine().observe_all(&features, &truths, truth_id);
    if fresh {
        entry.remember(&features, &truths);
    }
    let observed = if fresh { truths.len() } else { 0 };
    Response::json(200, format!("{{\"observed\":{observed},\"deduped\":{}}}", !fresh))
}

/// `POST /v1/admin/models/{model}`: the hot-reload endpoint. The body is
/// a raw encoded checkpoint (the exact bytes `encode_checkpoint`
/// produces / the durable checkpoint files contain).
fn admin_reload<M, S>(req: &Request, registry: &ModelRegistry<M, S>, model: &str) -> Response
where
    M: Regressor + Clone + Send + Sync + 'static,
    S: ScoreFunction + Clone + Send + Sync + 'static,
{
    match registry.reload(model, req.body) {
        Ok(report) if report.promoted => Response::json(200, report.to_json()),
        Ok(report) => Response::json(409, report.to_json()),
        Err(ReloadError::UnknownModel) => unknown_model(model),
        Err(ReloadError::NoFactory) => {
            json_error(501, "hot reload is not enabled (no engine factory)")
        }
        Err(ReloadError::BadCheckpoint(e)) => json_error(422, &format!("bad checkpoint: {e}")),
        Err(ReloadError::BuildFailed(e)) => {
            json_error(500, &format!("engine build failed: {e}"))
        }
    }
}

/// `GET /metrics`: the global registry in Prometheus text form, then the
/// `model="…"`-labeled per-model series and the `tenant="…"`-labeled
/// fairness series appended (both hand-rendered — the `ce-telemetry`
/// registry is label-free by design, mirroring how the cluster router
/// injects `shard="…"`).
fn metrics<M, S>(registry: &ModelRegistry<M, S>, probe: &OnceLock<ServerStatsProbe>) -> Response
where
    M: Regressor + Clone + Send + Sync + 'static,
    S: ScoreFunction + Clone + Send + Sync + 'static,
{
    // Legacy single-engine gauges track the default model (bare-endpoint
    // compatibility); per-model truth lives in the labeled series below.
    if let Some(entry) = registry.entry(DEFAULT_MODEL) {
        entry.engine().publish_metrics();
    } else if let Some(name) = registry.names().first() {
        if let Some(entry) = registry.entry(name) {
            entry.engine().publish_metrics();
        }
    }
    if ce_telemetry::enabled() {
        let stats = registry.batcher_stats_sum();
        ce_telemetry::gauge("serve.batch_admitted").set(stats.admitted as f64);
        ce_telemetry::gauge("serve.batch_shed").set(stats.shed as f64);
        ce_telemetry::gauge("serve.batches").set(stats.batches as f64);
        ce_telemetry::gauge("serve.max_batch").set(stats.max_batch_seen as f64);
        let cache = registry.cache.stats();
        ce_telemetry::gauge("tenant.cache_entries").set(cache.entries as f64);
        ce_telemetry::gauge("tenant.cache_evictions").set(cache.evictions as f64);
        ce_telemetry::gauge("tenant.cache_invalidations").set(cache.invalidations as f64);
    }
    if let Some(probe) = probe.get() {
        publish_server_stats(&probe.stats());
    }
    let mut body = ce_telemetry::global().to_prometheus();
    body.push_str(&model_metrics_text(registry));
    body.push_str(&tenant_metrics_text(registry));
    Response::new(200)
        .header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        .body(body)
}

/// Per-model metric series with `model="…"` labels, metric-major so each
/// `# TYPE` header appears once.
fn model_metrics_text<M, S>(registry: &ModelRegistry<M, S>) -> String
where
    M: Regressor + Clone + Send + Sync + 'static,
    S: ScoreFunction + Clone + Send + Sync + 'static,
{
    let entries: Vec<Arc<ModelEntry<M, S>>> = registry.models_read().values().cloned().collect();
    if entries.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    let mut series = |name: &str, values: &[(String, f64)]| {
        out.push_str(&format!("# TYPE cardest_{name} gauge\n"));
        for (label, value) in values {
            out.push_str(&format!("cardest_{name}{{model=\"{label}\"}} {value}\n"));
        }
    };
    let labels: Vec<String> = entries
        .iter()
        .map(|e| ce_telemetry::escape_label_value(&e.name))
        .collect();
    let collect = |f: &dyn Fn(&ModelEntry<M, S>) -> f64| -> Vec<(String, f64)> {
        entries.iter().zip(&labels).map(|(e, l)| (l.clone(), f(e))).collect()
    };
    series("model_observations", &collect(&|e| e.engine().observations() as f64));
    series("model_epoch", &collect(&|e| e.engine().serving_epoch() as f64));
    series("model_reload_gen", &collect(&|e| e.reload_gen() as f64));
    series("model_reloads", &collect(&|e| e.reloads() as f64));
    series("model_reload_rejects", &collect(&|e| e.reload_rejects() as f64));
    series("model_cache_hits", &collect(&|e| e.cache_hits.load(Ordering::Relaxed) as f64));
    series("model_cache_misses", &collect(&|e| e.cache_misses.load(Ordering::Relaxed) as f64));
    series("model_replay_len", &collect(&|e| e.replay_len() as f64));
    series("model_batch_admitted", &collect(&|e| e.batcher.stats().admitted as f64));
    series("model_batch_shed", &collect(&|e| e.batcher.stats().shed as f64));
    series(
        "model_heal_state",
        &collect(&|e| match e.engine().heal_state() {
            HealState::Healthy => 0.0,
            HealState::Recalibrating => 1.0,
            HealState::RolledBack => 2.0,
        }),
    );
    out
}

/// Per-tenant fairness series with `tenant="…"` labels: queue depth
/// (gauge), admitted/shed/overflow-shed (counters as gauges — the limiter
/// owns the truth).
fn tenant_metrics_text<M, S>(registry: &ModelRegistry<M, S>) -> String
where
    M: Regressor + Clone + Send + Sync + 'static,
    S: ScoreFunction + Clone + Send + Sync + 'static,
{
    let Some(limiter) = registry.limiter() else {
        return String::new();
    };
    let snapshot = limiter.snapshot();
    if snapshot.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    let mut series = |name: &str, value: &dyn Fn(&ce_server::TenantStats) -> f64| {
        out.push_str(&format!("# TYPE cardest_{name} gauge\n"));
        for stats in &snapshot {
            let label = ce_telemetry::escape_label_value(&stats.tenant);
            out.push_str(&format!("cardest_{name}{{tenant=\"{label}\"}} {}\n", value(stats)));
        }
    };
    series("tenant_queue_depth", &|s| s.in_flight as f64);
    series("tenant_admitted", &|s| s.admitted as f64);
    series("tenant_rate_shed", &|s| s.shed as f64);
    series("tenant_overflow_shed", &|s| s.overflow_shed as f64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformal::{
        encode_checkpoint, AbsoluteResidual, HealConfig, PiServiceConfig, SelfHealingService,
    };
    use crate::serve::{start_server, HttpServeConfig};
    use ce_server::{Headers, HttpClient};

    /// fn pointers give every test engine one nameable model type.
    type Model = fn(&[f32]) -> f64;

    fn ident(f: &[f32]) -> f64 {
        f[0] as f64
    }

    /// Deterministic calibration set: y = x + structured noise in [-1, 1].
    fn calib(n: usize) -> (Vec<Vec<f32>>, Vec<f64>) {
        (0..n)
            .map(|i| {
                let x = i as f32;
                let noise = ((i * 37) % 21) as f64 / 10.0 - 1.0;
                (vec![x], f64::from(x) + noise)
            })
            .unzip()
    }

    fn healing(cx: &[Vec<f32>], cy: &[f64]) -> SelfHealingService<Model, AbsoluteResidual> {
        SelfHealingService::new(
            ident as Model,
            AbsoluteResidual,
            cx,
            cy,
            PiServiceConfig { window: 100, ..Default::default() },
            HealConfig { min_history: 60, cooldown_base: 100, ..Default::default() },
        )
    }

    fn engine() -> ServeEngine<Model, AbsoluteResidual> {
        let (cx, cy) = calib(200);
        ServeEngine::new(healing(&cx, &cy), vec![], 1)
    }

    fn factory() -> EngineFactory<Model, AbsoluteResidual> {
        Box::new(|checkpoint: Checkpoint| {
            let breakers = checkpoint.breakers.clone();
            let svc =
                SelfHealingService::restore(ident as Model, AbsoluteResidual, checkpoint)?;
            let engine = ServeEngine::new(svc, vec![], 1);
            engine.restore_breakers(&breakers)?;
            Ok(engine)
        })
    }

    fn tuning() -> RegistryTuning {
        RegistryTuning { cache_entries: 64, min_replay: 4, ..RegistryTuning::default() }
    }

    /// An in-process request against `route_registry` (no sockets): the
    /// deterministic harness for the cache/race tests.
    fn post(
        registry: &ModelRegistry<Model, AbsoluteResidual>,
        target: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> Response {
        let req = Request {
            method: "POST",
            target,
            http11: true,
            headers: Headers::from_pairs(headers),
            body,
        };
        let draining = AtomicBool::new(false);
        let probe = OnceLock::new();
        route_registry(&req, registry, &draining, &probe)
    }

    #[test]
    fn bare_predict_aliases_default_and_unknown_models_404() {
        let handle =
            start_server(Arc::new(engine()), "127.0.0.1:0", HttpServeConfig::default())
                .expect("bind");
        let mut client = HttpClient::connect(handle.local_addr()).unwrap();
        let body = br#"{"features":[[7.0],[42.0]]}"#;
        let bare = client.post("/v1/predict", body).unwrap();
        let named = client.post("/v1/predict/default", body).unwrap();
        assert_eq!(bare.status, 200);
        assert_eq!(named.status, 200);
        assert_eq!(bare.body, named.body, "bare predict must alias `default`, byte for byte");
        let missing = client.post("/v1/predict/nope", body).unwrap();
        assert_eq!(missing.status, 404);
        assert!(String::from_utf8_lossy(&missing.body).contains("no such model"));
        assert_eq!(client.post("/v1/observe/nope", body).unwrap().status, 404);
        // Named routes reject wrong methods without falling through to 404.
        assert_eq!(client.get("/v1/predict/default").unwrap().status, 405);
        // Reload against a factory-less registry is explicit, not a 404.
        assert_eq!(client.post("/v1/admin/models/default", b"junk").unwrap().status, 501);
        let metrics = client.get("/metrics").unwrap();
        assert_eq!(metrics.status, 200);
        let text = String::from_utf8_lossy(&metrics.body).into_owned();
        assert!(
            text.contains("cardest_model_observations{model=\"default\"}"),
            "per-model labeled series must be exposed"
        );
        handle.drain();
    }

    #[test]
    fn registry_serves_models_independently() {
        let registry: ModelRegistry<Model, AbsoluteResidual> = ModelRegistry::new(tuning());
        let (cx, cy) = calib(200);
        registry.register("a", ServeEngine::new(healing(&cx, &cy), vec![], 1));
        // Model "b" calibrates on a shifted stream: wider intervals.
        let wide: Vec<f64> = cy.iter().map(|y| y * 3.0).collect();
        registry.register("b", ServeEngine::new(healing(&cx, &wide), vec![], 1));
        assert_eq!(registry.names(), vec!["a".to_string(), "b".to_string()]);
        let body = br#"{"features":[[50.0]]}"#;
        let a = post(&registry, "/v1/predict/a", &[], body);
        let b = post(&registry, "/v1/predict/b", &[], body);
        assert_eq!(a.status, 200);
        assert_eq!(b.status, 200);
        assert_ne!(a.body, b.body, "differently calibrated models must answer differently");
        // Observing into "a" never perturbs "b".
        let before = post(&registry, "/v1/predict/b", &[], body);
        let obs = post(
            &registry,
            "/v1/observe/a",
            &[],
            br#"{"features":[[50.0]],"truths":[50.5]}"#,
        );
        assert_eq!(obs.status, 200);
        let after = post(&registry, "/v1/predict/b", &[], body);
        assert_eq!(before.body, after.body, "tenant isolation: a's truths must not move b");
        registry.shutdown_batchers();
    }

    #[test]
    fn cache_hits_are_byte_identical_and_any_state_change_invalidates() {
        let registry: ModelRegistry<Model, AbsoluteResidual> = ModelRegistry::new(tuning());
        registry.register(DEFAULT_MODEL, engine());
        let body = br#"{"features":[[3.0],[9.0]]}"#;
        let first = post(&registry, "/v1/predict", &[], body);
        assert_eq!(first.status, 200);
        let baseline = registry.cache().stats();
        assert_eq!(baseline.hits, 0);
        let second = post(&registry, "/v1/predict", &[], body);
        assert_eq!(second.body, first.body, "a cache hit must be byte-identical");
        assert_eq!(registry.cache().stats().hits, baseline.hits + 1);
        // A truth-carrying request bypasses the cache entirely…
        let hits_before = registry.cache().stats().hits;
        let with_truths = post(
            &registry,
            "/v1/predict",
            &[],
            br#"{"features":[[3.0],[9.0]],"truths":[3.5,9.5]}"#,
        );
        assert_eq!(with_truths.status, 200);
        assert_eq!(registry.cache().stats().hits, hits_before, "truths must bypass the cache");
        // …and, being an observation, it moved the serving epoch: the old
        // entry is unreachable, the next predict is a miss at the new key.
        let misses_before = registry.cache().stats().misses;
        let third = post(&registry, "/v1/predict", &[], body);
        assert_eq!(third.status, 200);
        assert_eq!(
            registry.cache().stats().misses,
            misses_before + 1,
            "an observation must invalidate cached intervals"
        );
        registry.shutdown_batchers();
    }

    #[test]
    fn reload_validates_promotes_and_rolls_back() {
        let registry: ModelRegistry<Model, AbsoluteResidual> =
            ModelRegistry::new(tuning()).with_factory(factory());
        let entry = registry.register(DEFAULT_MODEL, engine());
        // Feed the replay buffer through the observe path (tight truths:
        // y = x + noise/2, well inside the live threshold).
        for i in 0..8 {
            let x = 30 + i * 3;
            let noise = (f64::from(i) / 7.0 - 0.5) * 0.5;
            let body =
                format!("{{\"features\":[[{x}.0]],\"truths\":[{}]}}", f64::from(x) + noise);
            assert_eq!(post(&registry, "/v1/observe", &[], body.as_bytes()).status, 200);
        }
        assert!(entry.replay_len() >= 4);
        // Prime the cache so promotion provably invalidates it.
        let probe_body = br#"{"features":[[12.0]]}"#;
        let before_reload = post(&registry, "/v1/predict", &[], probe_body);
        assert_eq!(before_reload.status, 200);
        let gen_before = entry.reload_gen();
        // A healthy checkpoint (the live engine's own state) promotes.
        let good = encode_checkpoint(&entry.engine().checkpoint());
        let resp = post(&registry, "/v1/admin/models/default", &[], &good);
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let text = String::from_utf8_lossy(&resp.body).into_owned();
        assert!(text.contains("\"promoted\":true"));
        assert!(text.contains("\"validated\":true"));
        assert_eq!(entry.reloads(), 1);
        let gen_after = entry.reload_gen();
        assert_eq!(gen_after, gen_before + 2, "a swap must advance the reload seqlock by 2");
        assert_eq!(gen_after % 2, 0, "the seqlock must settle even");
        assert!(
            registry.cache().stats().invalidations > 0,
            "promotion must invalidate the model's cached intervals"
        );
        // A checkpoint calibrated on zero residuals yields near-degenerate
        // intervals: shadow coverage collapses, validation rejects, and the
        // old engine keeps serving.
        let (cx, _) = calib(200);
        let exact: Vec<f64> = cx.iter().map(|x| f64::from(x[0])).collect();
        let bad_engine = ServeEngine::new(healing(&cx, &exact), vec![], 1);
        let bad = encode_checkpoint(&bad_engine.checkpoint());
        let live_before = entry.engine();
        let resp = post(&registry, "/v1/admin/models/default", &[], &bad);
        assert_eq!(resp.status, 409, "{}", String::from_utf8_lossy(&resp.body));
        assert!(String::from_utf8_lossy(&resp.body).contains("\"promoted\":false"));
        assert_eq!(entry.reload_rejects(), 1);
        assert!(
            Arc::ptr_eq(&live_before, &entry.engine()),
            "a rejected reload must leave the live engine in place"
        );
        // Garbage bytes are a 422, not a crash or a swap.
        assert_eq!(post(&registry, "/v1/admin/models/default", &[], b"junk").status, 422);
        assert_eq!(entry.reloads(), 1);
        registry.shutdown_batchers();
    }

    #[test]
    fn concurrent_predicts_survive_reloads_with_fresh_bytes() {
        let registry: Arc<ModelRegistry<Model, AbsoluteResidual>> =
            Arc::new(ModelRegistry::new(tuning()).with_factory(factory()));
        let entry = registry.register(DEFAULT_MODEL, engine());
        let checkpoint = encode_checkpoint(&entry.engine().checkpoint());
        let stop = Arc::new(AtomicBool::new(false));
        let started = Arc::new(AtomicU64::new(0));
        let workers: Vec<_> = (0..3)
            .map(|w| {
                let registry = Arc::clone(&registry);
                let stop = Arc::clone(&stop);
                let started = Arc::clone(&started);
                std::thread::spawn(move || {
                    let body = format!("{{\"features\":[[{}.0]]}}", 5 + w);
                    let mut served = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let resp = post(&registry, "/v1/predict", &[], body.as_bytes());
                        assert_eq!(resp.status, 200, "a reload must never drop a request");
                        served += 1;
                        if served == 1 {
                            started.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    served
                })
            })
            .collect();
        // Every worker is mid-stream before the churn starts, so each one
        // provably straddles at least one swap.
        while started.load(Ordering::Relaxed) < 3 {
            std::thread::yield_now();
        }
        // Hot-reload the same checkpoint repeatedly under fire (replay is
        // below min_replay here, so swaps are immediate — maximum churn).
        for _ in 0..20 {
            let report = registry.reload(DEFAULT_MODEL, &checkpoint).expect("reload");
            assert!(report.promoted);
        }
        stop.store(true, Ordering::Relaxed);
        for worker in workers {
            assert!(worker.join().expect("worker must not panic") > 0);
        }
        assert_eq!(entry.reloads(), 20);
        assert_eq!(entry.reload_gen() % 2, 0);
        // Post-churn: a served (possibly cached) response must match a
        // fresh render from the live engine — no stale bytes survive.
        let body = br#"{"features":[[5.0]]}"#;
        let served = post(&registry, "/v1/predict", &[], body);
        let engine = entry.engine();
        let fresh = render_predict_body(engine.mode(), &engine.predict_batch(&[vec![5.0]]));
        assert_eq!(String::from_utf8_lossy(&served.body), fresh);
        registry.shutdown_batchers();
    }

    #[test]
    fn aggressor_tenant_is_rate_limited_while_victim_is_served() {
        let registry: ModelRegistry<Model, AbsoluteResidual> = ModelRegistry::new(tuning())
            .with_limiter(RateLimit::new(1.0, 2.0).expect("valid limit"));
        registry.register(DEFAULT_MODEL, engine());
        let body = br#"{"features":[[4.0]]}"#;
        let agg = [(TENANT_HEADER, "aggressor")];
        assert_eq!(post(&registry, "/v1/predict", &agg, body).status, 200);
        assert_eq!(post(&registry, "/v1/predict", &agg, body).status, 200);
        let shed = post(&registry, "/v1/predict", &agg, body);
        assert_eq!(shed.status, 429, "the burst is exhausted");
        let retry_after = shed
            .headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case("Retry-After"))
            .map(|(_, v)| v.clone())
            .expect("429 must carry Retry-After");
        assert!(retry_after.parse::<u64>().expect("integer seconds") >= 1);
        assert!(String::from_utf8_lossy(&shed.body).contains("aggressor"));
        // The victim's bucket is untouched.
        let victim = [(TENANT_HEADER, "victim")];
        assert_eq!(post(&registry, "/v1/predict", &victim, body).status, 200);
        // Observes are exempt: replicated truths must never be shed.
        let obs_body = br#"{"features":[[4.0]],"truths":[4.2]}"#;
        assert_eq!(post(&registry, "/v1/observe", &agg, obs_body).status, 200);
        // The fairness series expose both tenants.
        let text = tenant_metrics_text(&registry);
        assert!(text.contains("cardest_tenant_rate_shed{tenant=\"aggressor\"} 1"));
        assert!(text.contains("cardest_tenant_admitted{tenant=\"victim\"} 1"));
        registry.shutdown_batchers();
    }

    #[test]
    fn overflow_hint_is_longer_for_the_over_budget_tenant() {
        let registry: ModelRegistry<Model, AbsoluteResidual> = ModelRegistry::new(tuning())
            .with_limiter(RateLimit::new(1000.0, 1000.0).expect("valid limit"));
        let limiter = registry.limiter().expect("limiter attached");
        // The hog admits five in-flight requests and never finishes them;
        // the victim holds one.
        for _ in 0..5 {
            assert!(matches!(limiter.admit("hog", 0), Admission::Allowed));
        }
        assert!(matches!(limiter.admit("victim", 0), Admission::Allowed));
        assert_eq!(registry.overflow_retry_hint("hog"), "3");
        assert_eq!(registry.overflow_retry_hint("victim"), "1");
    }

    #[test]
    fn interval_cache_lru_evicts_oldest_and_model_invalidation_is_scoped() {
        let cache = IntervalCache::new(2);
        cache.insert("m", 1, 0, 0, "one");
        cache.insert("m", 2, 0, 0, "two");
        assert_eq!(cache.get("m", 1, 0, 0).as_deref(), Some("one"));
        // Key 2 is now least-recently-used; a third insert evicts it.
        cache.insert("m", 3, 0, 0, "three");
        assert!(cache.get("m", 2, 0, 0).is_none(), "LRU victim");
        assert_eq!(cache.get("m", 1, 0, 0).as_deref(), Some("one"));
        assert_eq!(cache.stats().evictions, 1);
        // A different epoch is a different key: no accidental aliasing.
        assert!(cache.get("m", 1, 0, 2).is_none());
        // Invalidation is scoped to the named model.
        cache.insert("other", 9, 0, 0, "kept");
        cache.invalidate_model("m");
        assert!(cache.get("m", 1, 0, 0).is_none());
        assert!(cache.get("m", 3, 0, 0).is_none());
        assert_eq!(cache.get("other", 9, 0, 0).as_deref(), Some("kept"));
        assert!(cache.stats().invalidations >= 1);
        // cap == 0 disables: inserts drop, lookups miss.
        let off = IntervalCache::new(0);
        off.insert("m", 1, 0, 0, "x");
        assert!(off.get("m", 1, 0, 0).is_none());
        assert!(!off.enabled());
    }

    #[test]
    fn width_ratio_guards_degenerate_denominators() {
        let iv = |lo: f64, hi: f64| Ok(PredictionInterval { lo, hi });
        let shadow: BatchResults = vec![iv(0.0, 4.0)];
        let live: BatchResults = vec![iv(0.0, 2.0)];
        assert!((width_ratio(&shadow, &live) - 2.0).abs() < 1e-12);
        // All-infinite live widths: a finite candidate cannot be judged
        // against them, and a *zero*-width candidate is trivially fine.
        let inf_live: BatchResults = vec![iv(f64::NEG_INFINITY, f64::INFINITY)];
        let zero: BatchResults = vec![iv(1.0, 1.0)];
        assert_eq!(width_ratio(&zero, &inf_live), 1.0);
        assert_eq!(width_ratio(&shadow, &inf_live), f64::INFINITY);
        // An all-error shadow can never promote.
        let errs: BatchResults = vec![Err(CardEstError::InvalidParameter("x"))];
        assert_eq!(width_ratio(&errs, &live), f64::INFINITY);
    }
}
