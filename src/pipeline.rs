//! End-to-end experiment pipeline shared by the examples, the integration
//! tests, and the `experiments` binary: dataset → workload → splits → trained
//! models → PI methods → evaluation.

use ce_conformal::{
    interval_report, ConformalizedQuantileRegression, IntervalReport, JackknifeCv,
    LocallyWeightedConformal, PredictionInterval, QErrorScore, Regressor,
    RelativeErrorScore, ScoreFunction, SplitConformal,
};
use ce_estimators::{
    fit_difficulty_model, LwNn, LwNnConfig, Mscn, MscnConfig, MscnLayout, Naru,
    NaruConfig, SingleTableFeaturizer, TrainLoss,
};
use ce_gbdt::GbdtConfig;
use ce_query::{generate_workload, split, GeneratorConfig, Workload};
use ce_storage::Table;

/// A labeled, encoded query set: canonical features plus true selectivities.
#[derive(Debug, Clone, Default)]
pub struct EncodedSet {
    /// Canonical feature encodings.
    pub x: Vec<Vec<f32>>,
    /// True selectivities.
    pub y: Vec<f64>,
}

impl EncodedSet {
    /// Encodes a workload with the given featurizer.
    pub fn from_workload(feat: &SingleTableFeaturizer, w: &Workload) -> Self {
        EncodedSet {
            x: w.iter().map(|lq| feat.encode(&lq.query)).collect(),
            y: w.iter().map(|lq| lq.selectivity).collect(),
        }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when the set holds no queries.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }
}

/// A fully prepared single-table benchmark: table, featurizer, and
/// train/calibration/test splits of a generated workload.
#[derive(Debug, Clone)]
pub struct SingleTableBench {
    /// The data.
    pub table: Table,
    /// The canonical featurizer over the table's schema.
    pub feat: SingleTableFeaturizer,
    /// Supervised training split.
    pub train: EncodedSet,
    /// Conformal calibration split.
    pub calib: EncodedSet,
    /// Held-out evaluation split.
    pub test: EncodedSet,
}

/// Split fractions for (train, calibration); the remainder is test.
#[derive(Debug, Clone, Copy)]
pub struct SplitSpec {
    /// Fraction of the workload used for supervised training.
    pub train: f64,
    /// Fraction used for conformal calibration.
    pub calib: f64,
}

impl Default for SplitSpec {
    fn default() -> Self {
        // The paper's default: equal train/calibration sets plus a test set
        // of the same order (10K/10K/10K queries there, scaled here).
        SplitSpec { train: 1.0 / 3.0, calib: 1.0 / 3.0 }
    }
}

impl SingleTableBench {
    /// Builds the benchmark: generates `n_queries` labeled queries over
    /// `table` and splits them per `spec`.
    ///
    /// # Panics
    /// Panics if the splits leave any part empty.
    pub fn prepare(
        table: Table,
        n_queries: usize,
        gen: &GeneratorConfig,
        spec: SplitSpec,
        seed: u64,
    ) -> Self {
        let feat = SingleTableFeaturizer::new(table.schema().clone());
        let w = generate_workload(&table, n_queries, gen, seed);
        let test_frac = (1.0 - spec.train - spec.calib).max(0.0);
        assert!(test_frac > 0.0, "splits leave no test set");
        let parts = split(&w, &[spec.train, spec.calib, test_frac], seed ^ 0x5eed);
        let train = EncodedSet::from_workload(&feat, &parts[0]);
        let calib = EncodedSet::from_workload(&feat, &parts[1]);
        let test = EncodedSet::from_workload(&feat, &parts[2]);
        assert!(
            !train.is_empty() && !calib.is_empty() && !test.is_empty(),
            "a split is empty: {} / {} / {}",
            train.len(),
            calib.len(),
            test.len()
        );
        SingleTableBench { table, feat, train, calib, test }
    }
}

/// The scoring functions studied in §V-C, tagged for reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScoreKind {
    /// Absolute residual (default).
    Residual,
    /// Q-error.
    QError,
    /// Relative error.
    Relative,
}

impl ScoreKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ScoreKind::Residual => "residual",
            ScoreKind::QError => "q-error",
            ScoreKind::Relative => "relative",
        }
    }
}

/// Evaluation outcome of one PI method on one model/test set.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Method name (e.g. "S-CP").
    pub method: &'static str,
    /// Coverage and width summary.
    pub report: IntervalReport,
    /// The raw intervals (clipped to [0, 1]).
    pub intervals: Vec<PredictionInterval>,
}

fn clip_all(mut ivs: Vec<PredictionInterval>) -> Vec<PredictionInterval> {
    for iv in &mut ivs {
        *iv = iv.clip(0.0, 1.0);
    }
    ivs
}

fn eval<I: FnMut(&[f32]) -> PredictionInterval>(
    method: &'static str,
    test: &EncodedSet,
    mut interval: I,
) -> MethodResult {
    let intervals = clip_all(test.x.iter().map(|f| interval(f)).collect());
    MethodResult { method, report: interval_report(&intervals, &test.y), intervals }
}

/// Runs split conformal with the given score kind and returns its result.
pub fn run_split_conformal<M: Regressor + Sync>(
    model: M,
    score: ScoreKind,
    calib: &EncodedSet,
    test: &EncodedSet,
    alpha: f64,
    sel_floor: f64,
) -> MethodResult {
    match score {
        ScoreKind::Residual => {
            let scp = SplitConformal::calibrate(
                model,
                ce_conformal::AbsoluteResidual,
                &calib.x,
                &calib.y,
                alpha,
            );
            eval("S-CP", test, |f| scp.interval(f))
        }
        ScoreKind::QError => {
            let scp = SplitConformal::calibrate(
                model,
                QErrorScore::new(sel_floor),
                &calib.x,
                &calib.y,
                alpha,
            );
            eval("S-CP", test, |f| scp.interval(f))
        }
        ScoreKind::Relative => {
            let scp = SplitConformal::calibrate(
                model,
                RelativeErrorScore::new(sel_floor),
                &calib.x,
                &calib.y,
                alpha,
            );
            eval("S-CP", test, |f| scp.interval(f))
        }
    }
}

/// Runs locally weighted split conformal: trains a GBDT difficulty model on
/// the *training* split's score magnitudes (Algorithm 3), then calibrates.
#[allow(clippy::too_many_arguments)]
pub fn run_locally_weighted<M: Regressor + Sync>(
    model: M,
    score: ScoreKind,
    train: &EncodedSet,
    calib: &EncodedSet,
    test: &EncodedSet,
    alpha: f64,
    sel_floor: f64,
    seed: u64,
) -> MethodResult {
    fn go<M: Regressor + Sync, S: ScoreFunction + Sync>(
        model: M,
        score: S,
        train: &EncodedSet,
        calib: &EncodedSet,
        test: &EncodedSet,
        alpha: f64,
        seed: u64,
    ) -> MethodResult {
        let train_scores: Vec<f64> = train
            .x
            .iter()
            .zip(&train.y)
            .map(|(f, &y)| score.score(y, model.predict(f)))
            .collect();
        // Difficulty is learned in log space and the resulting U(X) is
        // clamped into the training scores' central range: conditional score
        // magnitudes span orders of magnitude, and an extrapolating U would
        // otherwise blow intervals up to the trivial [0, 1] on outlier
        // queries (or collapse them where the base model overfit its
        // training residuals — the failure mode §III-F warns about).
        let eps = 1e-9;
        let log_scores: Vec<f64> =
            train_scores.iter().map(|&s| (s + eps).ln()).collect();
        let gbdt = fit_difficulty_model(
            &train.x,
            &log_scores,
            &GbdtConfig { n_trees: 60, seed, ..Default::default() },
        );
        let mut sorted = train_scores.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite score"));
        let p = |q: f64| sorted[((sorted.len() - 1) as f64 * q) as usize].max(eps);
        let (u_min, u_max) = (p(0.05), p(0.95));
        let difficulty =
            move |f: &[f32]| gbdt.predict(f).exp().clamp(u_min, u_max);
        let lw = LocallyWeightedConformal::calibrate(
            model, difficulty, score, &calib.x, &calib.y, alpha, u_min,
        );
        eval("LW-S-CP", test, |f| lw.interval(f))
    }
    match score {
        ScoreKind::Residual => go(
            model,
            ce_conformal::AbsoluteResidual,
            train,
            calib,
            test,
            alpha,
            seed,
        ),
        ScoreKind::QError => {
            go(model, QErrorScore::new(sel_floor), train, calib, test, alpha, seed)
        }
        ScoreKind::Relative => go(
            model,
            RelativeErrorScore::new(sel_floor),
            train,
            calib,
            test,
            alpha,
            seed,
        ),
    }
}

/// Runs CQR given two trained quantile heads.
pub fn run_cqr<L: Regressor + Sync, U: Regressor + Sync>(
    lower: L,
    upper: U,
    calib: &EncodedSet,
    test: &EncodedSet,
    alpha: f64,
) -> MethodResult {
    let cqr =
        ConformalizedQuantileRegression::calibrate(lower, upper, &calib.x, &calib.y, alpha);
    eval("CQR", test, |f| cqr.interval(f))
}

/// Trains an MSCN point model with defaults scaled for experiments.
pub fn train_mscn(
    feat: &SingleTableFeaturizer,
    train: &EncodedSet,
    epochs: usize,
    seed: u64,
) -> Mscn {
    Mscn::fit(
        MscnLayout::Single(feat.clone()),
        &train.x,
        &train.y,
        &MscnConfig { epochs, seed, ..Default::default() },
    )
}

/// Trains the two MSCN quantile heads CQR needs for miscoverage `alpha`.
pub fn train_mscn_quantile_heads(
    feat: &SingleTableFeaturizer,
    train: &EncodedSet,
    epochs: usize,
    alpha: f64,
    seed: u64,
) -> (Mscn, Mscn) {
    let layout = MscnLayout::Single(feat.clone());
    let lower = Mscn::fit(
        layout.clone(),
        &train.x,
        &train.y,
        &MscnConfig {
            epochs,
            seed: seed ^ 0x10,
            loss: TrainLoss::Pinball((alpha / 2.0) as f32),
            ..Default::default()
        },
    );
    let upper = Mscn::fit(
        layout,
        &train.x,
        &train.y,
        &MscnConfig {
            epochs,
            seed: seed ^ 0x20,
            loss: TrainLoss::Pinball((1.0 - alpha / 2.0) as f32),
            ..Default::default()
        },
    );
    (lower, upper)
}

/// Trains an LW-NN point model.
pub fn train_lwnn(table: &Table, train: &EncodedSet, epochs: usize, seed: u64) -> LwNn {
    LwNn::fit(
        table,
        &train.x,
        &train.y,
        &LwNnConfig { epochs, seed, ..Default::default() },
    )
}

/// Trains the two LW-NN quantile heads CQR needs.
pub fn train_lwnn_quantile_heads(
    table: &Table,
    train: &EncodedSet,
    epochs: usize,
    alpha: f64,
    seed: u64,
) -> (LwNn, LwNn) {
    let lower = LwNn::fit(
        table,
        &train.x,
        &train.y,
        &LwNnConfig {
            epochs,
            seed: seed ^ 0x11,
            loss: TrainLoss::Pinball((alpha / 2.0) as f32),
            ..Default::default()
        },
    );
    let upper = LwNn::fit(
        table,
        &train.x,
        &train.y,
        &LwNnConfig {
            epochs,
            seed: seed ^ 0x21,
            loss: TrainLoss::Pinball((1.0 - alpha / 2.0) as f32),
            ..Default::default()
        },
    );
    (lower, upper)
}

/// Trains a Naru model on the table (unsupervised — no workload needed).
pub fn train_naru(table: &Table, epochs: usize, samples: usize, seed: u64) -> Naru {
    Naru::fit(table, &NaruConfig { epochs, samples, seed, ..Default::default() })
}

/// Runs the K-fold Jackknife (Algorithm 1) retraining MSCN per fold —
/// the paper's JK-CV+ configuration (K models of the wrapped class, trained
/// on the full labeled set minus one fold).
pub fn run_jackknife_cv_mscn(
    feat: &SingleTableFeaturizer,
    labeled: &EncodedSet,
    test: &EncodedSet,
    k: usize,
    alpha: f64,
    epochs: usize,
    seed: u64,
) -> MethodResult {
    let layout = MscnLayout::Single(feat.clone());
    let trainer = move |x: &[Vec<f32>], y: &[f64], s: u64| {
        Mscn::fit(
            layout.clone(),
            x,
            y,
            &MscnConfig { epochs, seed: s, ..Default::default() },
        )
    };
    let jk = JackknifeCv::fit(
        &trainer,
        ce_conformal::AbsoluteResidual,
        &labeled.x,
        &labeled.y,
        k,
        alpha,
        seed,
    );
    eval("JK-CV+", test, |f| jk.interval(f))
}

/// Runs the K-fold Jackknife (Algorithm 1) around a cheap retrainable model.
///
/// Retraining a deep model K times per experiment is exactly the cost the
/// paper flags for JK-CV+; the experiments use LW-NN (the lightest model) as
/// the retrainable learner unless stated otherwise.
pub fn run_jackknife_cv_lwnn(
    table: &Table,
    labeled: &EncodedSet,
    test: &EncodedSet,
    k: usize,
    alpha: f64,
    epochs: usize,
    seed: u64,
) -> MethodResult {
    let table = table.clone();
    let trainer = move |x: &[Vec<f32>], y: &[f64], s: u64| {
        LwNn::fit(
            &table,
            x,
            y,
            &LwNnConfig { epochs, seed: s, ..Default::default() },
        )
    };
    let jk = JackknifeCv::fit(
        &trainer,
        ce_conformal::AbsoluteResidual,
        &labeled.x,
        &labeled.y,
        k,
        alpha,
        seed,
    );
    eval("JK-CV+", test, |f| jk.interval(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_datagen::dmv;

    #[test]
    fn prepare_splits_cover_requested_fractions() {
        let table = dmv(2000, 0);
        let bench = SingleTableBench::prepare(
            table,
            300,
            &GeneratorConfig::default(),
            SplitSpec::default(),
            1,
        );
        let total = bench.train.len() + bench.calib.len() + bench.test.len();
        assert_eq!(total, 300);
        assert!(bench.train.len() >= 90 && bench.calib.len() >= 90);
    }

    #[test]
    fn split_conformal_pipeline_covers() {
        let table = dmv(2000, 0);
        let bench = SingleTableBench::prepare(
            table,
            900,
            &GeneratorConfig::default(),
            SplitSpec::default(),
            2,
        );
        let model = train_mscn(&bench.feat, &bench.train, 25, 0);
        let result = run_split_conformal(
            model,
            ScoreKind::Residual,
            &bench.calib,
            &bench.test,
            0.1,
            1e-7,
        );
        assert!(result.report.coverage >= 0.85, "coverage {}", result.report.coverage);
        assert!(result.report.mean_width > 0.0);
    }

    #[test]
    #[should_panic(expected = "no test set")]
    fn prepare_rejects_full_splits() {
        let table = dmv(100, 0);
        SingleTableBench::prepare(
            table,
            50,
            &GeneratorConfig::default(),
            SplitSpec { train: 0.5, calib: 0.5 },
            0,
        );
    }
}
