//! Network-facing PI serving: the glue between `ce-server`'s HTTP substrate
//! and the core's resilient, self-healing estimator chain (DESIGN.md §10).
//!
//! ```text
//! accept loop ─▶ conn queue ─▶ worker pool ─▶ router ─▶ micro-batcher
//!                                                           │ coalesced
//!                                                           ▼
//!                          ResilientService (breakers, fallbacks, floor)
//!                                 └─ primary: SelfHealingService (RwLock)
//! ```
//!
//! Endpoints:
//!
//! - `POST /v1/predict` — JSON batch of feature vectors, answered with one
//!   interval per query. Requests are coalesced by the micro-batcher into
//!   `predict_interval_batch` calls; admission overflow sheds with `503` +
//!   `Retry-After`. Optional `truths` feed the prequential loop (calibration,
//!   drift detection, self-healing) after the predictions are made.
//! - `POST /v1/observe` — the same body with `truths` *required*, feeding
//!   calibration without serving predictions. This is the replication
//!   target: a cluster router fans each observed truth out to the key's
//!   backup replicas here, so a promoted backup serves from warm
//!   calibration (DESIGN.md §14). Both observe paths deduplicate by the
//!   router-minted `x-ce-truth-id` header (bounded id memory), so fan-out
//!   overlap and hedge duplicates cannot double-count an observation.
//! - `GET /metrics` — Prometheus text from the `ce-telemetry` registry,
//!   including the server's connection/poller counters.
//! - `GET /debug/trace` — JSON snapshot of the flight recorder: the last
//!   traced requests with per-stage latency attribution plus structured
//!   events (DESIGN.md §13).
//! - `GET /healthz` — liveness (always `200` while the process serves).
//! - `GET /readyz` — readiness; `503` while the self-healing layer is
//!   recalibrating or the server is draining.
//!
//! Tracing: a sampled `POST /v1/predict` (head sampling, default 1 in
//! `ce_telemetry::trace::DEFAULT_SAMPLE_RATE`; every request inside an
//! anomaly window) is traced end to end. The client may supply its own
//! 32-hex-digit `x-ce-trace` ID; a missing or malformed header mints a fresh
//! one — a hostile value can only ever be ignored, never poisons the
//! connection. The response echoes `x-ce-trace` and reports this hop's stage
//! breakdown in `x-ce-stages` so an upstream router can merge it.
//!
//! Determinism contract: the batcher's request coalescing never changes
//! results — `predict_interval_batch` snapshots state per batch and per-query
//! results are independent, so an HTTP-served interval is bit-identical to a
//! direct in-process call on the same state (the `net` experiment audits
//! this; non-finite endpoints travel as the JSON strings `"inf"`/`"-inf"`/
//! `"nan"` since JSON has no `Infinity`).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

use crate::conformal::{
    BreakerSnapshot, BreakerState, CardEstError, Checkpoint, HealConfig, HealState,
    PiEstimator, PredictionInterval, Regressor, ResilienceStats, ResilientService,
    ScoreFunction, SelfHealingService, ServiceMode,
};
use ce_server::{BatcherStats, HttpServer, Response, ServerStats};
use ce_telemetry::trace;

/// A [`SelfHealingService`] shared between the HTTP workers (read: serve
/// intervals) and the feedback path (write: observe truths), adapted to the
/// resilient chain's object-safe [`PiEstimator`] interface.
pub struct SharedHealing<M, S>(Arc<RwLock<SelfHealingService<M, S>>>);

impl<M, S> Clone for SharedHealing<M, S> {
    fn clone(&self) -> Self {
        SharedHealing(Arc::clone(&self.0))
    }
}

impl<M, S> SharedHealing<M, S> {
    fn read(&self) -> std::sync::RwLockReadGuard<'_, SelfHealingService<M, S>> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, SelfHealingService<M, S>> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<M, S> PiEstimator for SharedHealing<M, S>
where
    M: Regressor + Clone + Send + Sync,
    S: ScoreFunction + Clone + Send + Sync,
{
    fn name(&self) -> &str {
        "self-healing"
    }

    fn predict(&self, features: &[f32]) -> Result<f64, CardEstError> {
        let value = self.read().predict(features);
        if value.is_finite() {
            Ok(value)
        } else {
            Err(CardEstError::NonFiniteScore { value, context: "model prediction" })
        }
    }

    fn interval(&self, features: &[f32]) -> Result<PredictionInterval, CardEstError> {
        self.read().try_interval(features)
    }

    fn interval_batch(
        &self,
        queries: &[Vec<f32>],
    ) -> Vec<Result<PredictionInterval, CardEstError>> {
        // One read lock and one batched model forward for the whole batch.
        self.read().try_interval_batch(queries)
    }

    fn observe(&mut self, features: &[f32], y_true: f64) {
        self.write().observe(features, y_true);
    }
}

/// The serving engine: the self-healing primary behind the resilient chain,
/// with full-chain checkpointing.
///
/// Lock order is `resilient` → `healing` everywhere (the chain's serving
/// calls take the healing read lock while holding the resilient mutex, so
/// every other path must do the same to stay deadlock-free).
pub struct ServeEngine<M, S> {
    healing: SharedHealing<M, S>,
    resilient: Mutex<ResilientService>,
    truth_dedupe: Mutex<TruthDedupe>,
    /// Serving-state epoch, seqlock-style (DESIGN.md §15): odd while an
    /// observation window is mutating calibration state, bumped by two for
    /// every atomic serving-state change (a breaker transition during a
    /// predict batch, a breaker restore). Two reads of the same *even*
    /// value bracketing a prediction prove the serving state was quiescent
    /// in between — the basis of the interval cache's byte-identity
    /// guarantee. Promotion and rollback both happen inside `observe`, so
    /// they are covered by the observation window.
    epoch: AtomicU64,
}

/// Bounded memory of recently seen truth-post IDs (`x-ce-truth-id`). A
/// replicated truth post and a hedge duplicate both replay an observation
/// body the shard may already have absorbed; observing it twice would put
/// the same residual into calibration twice and skew coverage. The set is
/// bounded FIFO — old IDs age out once the window of plausible replays
/// (router retry budget × fan-out) is long past.
struct TruthDedupe {
    seen: std::collections::HashSet<u64>,
    order: std::collections::VecDeque<u64>,
}

impl TruthDedupe {
    /// IDs remembered; far beyond any in-flight replay window.
    const CAP: usize = 4096;

    fn new() -> TruthDedupe {
        TruthDedupe {
            seen: std::collections::HashSet::new(),
            order: std::collections::VecDeque::new(),
        }
    }

    /// Claims `id`; `false` means it was already seen (a replay).
    fn claim(&mut self, id: u64) -> bool {
        if !self.seen.insert(id) {
            return false;
        }
        self.order.push_back(id);
        if self.order.len() > Self::CAP {
            if let Some(old) = self.order.pop_front() {
                self.seen.remove(&old);
            }
        }
        true
    }
}

impl<M, S> ServeEngine<M, S>
where
    M: Regressor + Clone + Send + Sync + 'static,
    S: ScoreFunction + Clone + Send + Sync + 'static,
{
    /// Builds the engine: `healing` becomes the chain's primary, followed by
    /// the given fallbacks, with input sanitization against `expected_dims`
    /// and the conservative ±∞ floor as the last resort.
    pub fn new(
        healing: SelfHealingService<M, S>,
        fallbacks: Vec<Box<dyn PiEstimator>>,
        expected_dims: usize,
    ) -> Self {
        let healing = SharedHealing(Arc::new(RwLock::new(healing)));
        let mut resilient = ResilientService::new(Box::new(healing.clone()))
            .with_expected_dims(expected_dims)
            .with_conservative_floor(true);
        for fallback in fallbacks {
            resilient = resilient.with_fallback(fallback);
        }
        ServeEngine {
            healing,
            resilient: Mutex::new(resilient),
            truth_dedupe: Mutex::new(TruthDedupe::new()),
            epoch: AtomicU64::new(0),
        }
    }

    fn resilient(&self) -> std::sync::MutexGuard<'_, ResilientService> {
        self.resilient.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Serves a batch through the full resilient chain (breakers, fallbacks,
    /// conservative floor all apply). Pure with respect to calibration
    /// state: feedback only ever arrives via [`ServeEngine::observe`]. A
    /// breaker transition *during* the batch (trip, half-open admission,
    /// close-on-success) changes which estimator answers, so it bumps the
    /// serving epoch while the chain lock is still held.
    pub fn predict_batch(
        &self,
        queries: &[Vec<f32>],
    ) -> Vec<Result<PredictionInterval, CardEstError>> {
        let mut resilient = self.resilient();
        let before = breaker_fingerprint(&resilient);
        let results = resilient.predict_interval_batch(queries);
        if breaker_fingerprint(&resilient) != before {
            self.epoch.fetch_add(2, Ordering::SeqCst);
        }
        results
    }

    /// Feeds one executed query's truth to every chain entry — the primary's
    /// write routes into the self-healing state machine. The serving epoch
    /// is odd for the duration: calibration state (and, on promotion or
    /// rollback, the serving threshold itself) mutates inside.
    pub fn observe(&self, features: &[f32], y_true: f64) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        self.resilient().observe(features, y_true);
        self.epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// The serving-state epoch (see the field docs): even means quiescent,
    /// and two equal even reads bracketing a prediction prove no serving
    /// state changed in between.
    pub fn serving_epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Feeds a whole batch of truths, atomically claiming `truth_id` first
    /// when one is present. Returns `false` — and observes *nothing* — when
    /// the ID was already seen: the batch is a replica-fan-out or hedge
    /// replay of an observation this shard has absorbed. The claim happens
    /// outside the chain locks, so the dedupe check never extends the
    /// serving critical section.
    pub fn observe_all(&self, features: &[Vec<f32>], truths: &[f64], truth_id: Option<u64>) -> bool {
        if let Some(id) = truth_id {
            let fresh = self.truth_dedupe.lock().unwrap_or_else(|e| e.into_inner()).claim(id);
            if !fresh {
                ce_telemetry::counter("serve.truth_deduped").inc();
                return false;
            }
        }
        for (x, y) in features.iter().zip(truths) {
            self.observe(x, *y);
        }
        true
    }

    /// Serving mode of the wrapped [`crate::conformal::PiService`].
    pub fn mode(&self) -> ServiceMode {
        self.healing.read().service().mode()
    }

    /// Remediation state of the self-healing layer.
    pub fn heal_state(&self) -> HealState {
        self.healing.read().state()
    }

    /// Total truths absorbed by the self-healing layer.
    pub fn observations(&self) -> u64 {
        self.healing.read().observations()
    }

    /// Full-chain checkpoint: the self-healing service state plus every
    /// breaker's snapshot, so a restore resumes the *whole* serving chain.
    pub fn checkpoint(&self) -> Checkpoint {
        let resilient = self.resilient();
        let ckpt = self.healing.read().checkpoint();
        ckpt.with_breakers(resilient.export_breakers())
    }

    /// Restores breaker state from a checkpoint's snapshots (the healing
    /// half is restored by constructing the engine from
    /// [`SelfHealingService::restore`]). Counts as a serving-state change:
    /// the epoch advances so no cached interval predates the restore.
    pub fn restore_breakers(&self, snapshots: &[BreakerSnapshot]) -> Result<(), CardEstError> {
        let result = self.resilient().restore_breakers(snapshots);
        self.epoch.fetch_add(2, Ordering::SeqCst);
        result
    }

    /// The healing layer's remediation tuning (the reload validator reuses
    /// its `epsilon` slack and `max_width_blowup` guard).
    pub fn heal_config(&self) -> HealConfig {
        self.healing.read().heal_config()
    }

    /// The wrapped service's miscoverage target α.
    pub fn alpha(&self) -> f64 {
        self.healing.read().service().config().alpha
    }

    /// Resilience counters (copied out; the chain lock is released before
    /// returning).
    pub fn resilience_stats(&self) -> ResilienceStats {
        self.resilient().stats().clone()
    }

    /// Mirrors chain + heal state into the telemetry registry.
    pub fn publish_metrics(&self) {
        {
            let resilient = self.resilient();
            resilient.publish_telemetry();
        }
        if ce_telemetry::enabled() {
            let healing = self.healing.read();
            ce_telemetry::gauge("serve.heal_state").set(match healing.state() {
                HealState::Healthy => 0.0,
                HealState::Recalibrating => 1.0,
                HealState::RolledBack => 2.0,
            });
            ce_telemetry::gauge("serve.mode_drifted").set(match healing.service().mode() {
                ServiceMode::Stable => 0.0,
                ServiceMode::Drifted => 1.0,
            });
            ce_telemetry::gauge("serve.observations").set(healing.observations() as f64);
            ce_telemetry::gauge("serve.promotions").set(healing.promotion_count() as f64);
            ce_telemetry::gauge("serve.rollbacks").set(healing.rollback_count() as f64);
        }
    }
}

/// Point-in-time fingerprint of every chain breaker's state. Which
/// estimator answers a query depends only on these states (and the
/// calibration state covered by the observe window), so an unchanged
/// fingerprint across a predict batch means serving behaviour was
/// unchanged by it.
fn breaker_fingerprint(resilient: &ResilientService) -> Vec<BreakerState> {
    (0..).map_while(|position| resilient.breaker_state(position)).collect()
}

/// Tuning for [`start_server`].
#[derive(Debug, Clone, Copy)]
pub struct HttpServeConfig {
    /// HTTP worker threads.
    pub workers: usize,
    /// Bounded accepted-connection queue (overflow: raw 503).
    pub conn_queue: usize,
    /// Micro-batcher admission queue capacity in queries (overflow: JSON
    /// 503 + `Retry-After`).
    pub queue_cap: usize,
    /// Maximum queries coalesced into one `predict_interval_batch` call.
    pub max_batch: usize,
    /// Batch window: how long the batcher lingers for stragglers. The
    /// default is zero: the batcher's inline fast path serves uncontended
    /// submissions on the caller's thread, and under contention queued
    /// requests coalesce naturally while the runner is busy — a measured
    /// sweep (500µs, 100µs, 0) showed no throughput gain from lingering,
    /// only added per-request latency at low concurrency.
    pub batch_window: Duration,
    /// Server read tick — only meaningful in the tick-polled fallback mode,
    /// where it quantizes shutdown/drain responsiveness (see
    /// `ce_server::ServerConfig::read_tick`). The event-driven mode reacts
    /// to readiness and deadlines exactly and ignores this.
    pub read_tick: Duration,
    /// Readiness-loop poller threads multiplexing idle keep-alive
    /// connections (see `ce_server::ServerConfig::pollers`). 1 is plenty
    /// for thousands of connections; 0 forces the tick-polled fallback.
    pub pollers: usize,
    /// Event-driven connection handling (readiness loop). Disable to force
    /// the portable tick-polled fallback.
    pub event_driven: bool,
    /// Maximum concurrently open connections in event mode (overflow is
    /// shed with a raw 503 at accept).
    pub max_conns: usize,
}

impl Default for HttpServeConfig {
    fn default() -> Self {
        HttpServeConfig {
            workers: 4,
            conn_queue: 64,
            queue_cap: 1024,
            max_batch: 64,
            batch_window: Duration::ZERO,
            read_tick: Duration::from_millis(10),
            pollers: 1,
            event_driven: true,
            max_conns: 4096,
        }
    }
}

/// A running HTTP PI server; dropping it (or calling
/// [`ServeHandle::drain`]) shuts it down gracefully.
///
/// Since the multi-tenant registry landed (DESIGN.md §15) every server —
/// including the single-engine [`start_server`] path — serves a
/// [`crate::tenant::ModelRegistry`]; the handle reaches the per-model
/// micro-batchers through the registry's control surface.
pub struct ServeHandle {
    pub(crate) server: HttpServer,
    pub(crate) registry: Arc<dyn crate::tenant::RegistryCtl>,
    pub(crate) draining: Arc<AtomicBool>,
}

impl ServeHandle {
    /// The bound address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.server.local_addr()
    }

    /// Connection-level counters.
    pub fn server_stats(&self) -> ServerStats {
        self.server.stats()
    }

    /// Micro-batcher counters (admitted/shed/batches), summed over every
    /// registered model's batcher (`max_batch_seen` is the max).
    pub fn batcher_stats(&self) -> BatcherStats {
        self.registry.batcher_stats_sum()
    }

    /// Graceful drain: readiness flips to 503, the acceptor stops, in-flight
    /// requests finish (their batcher submissions included), every model's
    /// batcher flushes, and all threads join. Blocks until done; idempotent.
    pub fn drain(&self) {
        if !self.draining.swap(true, Ordering::SeqCst) {
            trace::event("drain", "serve drain requested");
        }
        self.server.shutdown();
        self.registry.shutdown_batchers();
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.drain();
    }
}

/// Starts the HTTP server for a single `engine` on `listen` (e.g.
/// `127.0.0.1:0`), registered as the `default` model of a fresh
/// [`crate::tenant::ModelRegistry`] — so `POST /v1/predict` and
/// `POST /v1/predict/default` are the same engine, byte for byte. No
/// reload factory, rate limiter, or interval cache is attached; use
/// [`crate::tenant::start_registry_server`] for the full multi-tenant
/// surface.
///
/// The returned handle owns the accept/worker/batcher threads; the caller
/// keeps its own `Arc` to the engine for checkpointing and shutdown policy.
pub fn start_server<M, S>(
    engine: Arc<ServeEngine<M, S>>,
    listen: &str,
    config: HttpServeConfig,
) -> std::io::Result<ServeHandle>
where
    M: Regressor + Clone + Send + Sync + 'static,
    S: ScoreFunction + Clone + Send + Sync + 'static,
{
    let registry = Arc::new(crate::tenant::ModelRegistry::new(
        crate::tenant::RegistryTuning::from_http(&config),
    ));
    registry.register_shared(crate::tenant::DEFAULT_MODEL, engine);
    crate::tenant::start_registry_server(registry, listen, config)
}

/// Formats an f64 for the JSON wire: finite values use Rust's shortest
/// round-trip `Display` (bit-exact through parse), non-finite become the
/// strings `"inf"` / `"-inf"` / `"nan"` since JSON has no literal for them.
pub fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else if value.is_nan() {
        "\"nan\"".to_string()
    } else if value > 0.0 {
        "\"inf\"".to_string()
    } else {
        "\"-inf\"".to_string()
    }
}

/// Inverse of [`json_f64`] over parsed values: accepts a JSON number or one
/// of the non-finite marker strings.
pub fn value_to_f64(value: &serde_json::Value) -> Result<f64, String> {
    match value {
        serde_json::Value::Num(n) => Ok(*n),
        serde_json::Value::Str(s) => match s.as_str() {
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            "nan" => Ok(f64::NAN),
            other => Err(format!("not a number: `{other}`")),
        },
        _ => Err("expected number".to_string()),
    }
}

pub(crate) fn json_error(status: u16, message: &str) -> Response {
    let escaped = message.replace('\\', "\\\\").replace('"', "\\\"");
    Response::json(status, format!("{{\"error\":\"{escaped}\"}}"))
}

/// Mirrors the server's connection/poller counters into the telemetry
/// registry (satellite of `/metrics`: the PR 7 event-loop counters —
/// `poller_wakeups`, `poller_dispatches`, the parked-connection gauge, and
/// the instantaneous dispatch depth — become scrapeable).
pub(crate) fn publish_server_stats(stats: &ServerStats) {
    if !ce_telemetry::enabled() {
        return;
    }
    ce_telemetry::gauge("serve.conns_accepted").set(stats.accepted as f64);
    ce_telemetry::gauge("serve.conns_shed").set(stats.conn_shed as f64);
    ce_telemetry::gauge("serve.conns_open").set(stats.open as f64);
    ce_telemetry::gauge("serve.requests").set(stats.requests as f64);
    ce_telemetry::gauge("serve.parse_errors").set(stats.parse_errors as f64);
    ce_telemetry::gauge("serve.buffer_allocs").set(stats.buffer_allocs as f64);
    ce_telemetry::gauge("serve.poller_wakeups").set(stats.poller_wakeups as f64);
    ce_telemetry::gauge("serve.poller_dispatches").set(stats.poller_dispatches as f64);
    ce_telemetry::gauge("serve.parked_conns").set(stats.parked as f64);
    ce_telemetry::gauge("serve.dispatch_depth").set(stats.dispatch_depth as f64);
}

/// Parses `x-ce-truth-id`: exactly 16 lowercase hex digits encoding a
/// nonzero `u64`. Anything else — wrong length, uppercase, zero — yields
/// `None` and the post proceeds *undeduplicated*: a malformed ID can only
/// cost idempotency, never reject the observation.
pub(crate) fn parse_truth_id(text: &str) -> Option<u64> {
    if text.len() != 16 || !text.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')) {
        return None;
    }
    match u64::from_str_radix(text, 16) {
        Ok(0) | Err(_) => None,
        Ok(id) => Some(id),
    }
}

/// A parsed predict request: feature rows plus optional truths.
pub(crate) type PredictBody = (Vec<Vec<f32>>, Option<Vec<f64>>);

/// Parses the predict request body: `{"features": [[f32...]...],
/// "truths": [f64...]?}`.
pub(crate) fn parse_predict_body(body: &[u8]) -> Result<PredictBody, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let value = serde_json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let features_value = value.field("features").map_err(|e| e.to_string())?;
    let serde_json::Value::Array(rows) = features_value else {
        return Err("`features` must be an array of arrays".to_string());
    };
    let mut features = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let serde_json::Value::Array(nums) = row else {
            return Err(format!("`features[{i}]` must be an array of numbers"));
        };
        let mut q = Vec::with_capacity(nums.len());
        for n in nums {
            q.push(value_to_f64(n).map_err(|e| format!("`features[{i}]`: {e}"))? as f32);
        }
        features.push(q);
    }
    let truths = match value.field("truths") {
        Err(_) => None,
        Ok(serde_json::Value::Array(vals)) => {
            let mut t = Vec::with_capacity(vals.len());
            for (i, v) in vals.iter().enumerate() {
                t.push(value_to_f64(v).map_err(|e| format!("`truths[{i}]`: {e}"))?);
            }
            Some(t)
        }
        Ok(_) => return Err("`truths` must be an array of numbers".to_string()),
    };
    if let Some(t) = &truths {
        if t.len() != features.len() {
            return Err(format!(
                "`truths` length {} != `features` length {}",
                t.len(),
                features.len()
            ));
        }
    }
    Ok((features, truths))
}

/// Renders a batch of interval results as the predict response body:
/// `{"mode":"…","results":[{"lo":…,"hi":…}|{"error":"…"}…]}`. The byte
/// layout is part of the determinism contract — the interval cache stores
/// these bodies verbatim and the bit-audits compare them on the wire.
pub(crate) fn render_predict_body(
    mode: ServiceMode,
    results: &[Result<PredictionInterval, CardEstError>],
) -> String {
    let mode = match mode {
        ServiceMode::Stable => "stable",
        ServiceMode::Drifted => "drifted",
    };
    let mut body = String::with_capacity(64 + results.len() * 48);
    body.push_str("{\"mode\":\"");
    body.push_str(mode);
    body.push_str("\",\"results\":[");
    for (i, result) in results.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        match result {
            Ok(iv) => {
                body.push_str("{\"lo\":");
                body.push_str(&json_f64(iv.lo));
                body.push_str(",\"hi\":");
                body.push_str(&json_f64(iv.hi));
                body.push('}');
            }
            Err(e) => {
                let msg = e.to_string().replace('\\', "\\\\").replace('"', "\\\"");
                body.push_str("{\"error\":\"");
                body.push_str(&msg);
                body.push_str("\"}");
            }
        }
    }
    body.push_str("]}");
    body
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_f64_round_trips_every_class() {
        for v in [0.0, -0.0, 1.5, -2.25, 1e-300, 1e300, f64::MIN_POSITIVE, f64::MAX] {
            let text = json_f64(v);
            let parsed = value_to_f64(&serde_json::parse(&text).unwrap()).unwrap();
            assert_eq!(parsed.to_bits(), v.to_bits(), "round-trip of {v}");
        }
        let inf = value_to_f64(&serde_json::parse(&json_f64(f64::INFINITY)).unwrap()).unwrap();
        assert_eq!(inf, f64::INFINITY);
        let ninf =
            value_to_f64(&serde_json::parse(&json_f64(f64::NEG_INFINITY)).unwrap()).unwrap();
        assert_eq!(ninf, f64::NEG_INFINITY);
        let nan = value_to_f64(&serde_json::parse(&json_f64(f64::NAN)).unwrap()).unwrap();
        assert!(nan.is_nan());
    }

    #[test]
    fn parse_predict_body_validates() {
        let (f, t) = parse_predict_body(br#"{"features":[[1.0,2.0],[3.5,4.5]]}"#).unwrap();
        assert_eq!(f, vec![vec![1.0f32, 2.0], vec![3.5, 4.5]]);
        assert!(t.is_none());
        let (f, t) =
            parse_predict_body(br#"{"features":[[1.0]],"truths":[0.25]}"#).unwrap();
        assert_eq!(f.len(), 1);
        assert_eq!(t, Some(vec![0.25]));
        assert!(parse_predict_body(b"not json").is_err());
        assert!(parse_predict_body(br#"{"truths":[1.0]}"#).is_err(), "missing features");
        assert!(parse_predict_body(br#"{"features":[1.0]}"#).is_err(), "non-nested");
        assert!(
            parse_predict_body(br#"{"features":[[1.0]],"truths":[1.0,2.0]}"#).is_err(),
            "length mismatch"
        );
        assert!(parse_predict_body(br#"{"features":[["x"]]}"#).is_err(), "non-number");
    }

    #[test]
    fn parse_truth_id_accepts_only_nonzero_lowercase_hex64() {
        assert_eq!(parse_truth_id("00000000000000ff"), Some(0xff));
        assert_eq!(parse_truth_id("ffffffffffffffff"), Some(u64::MAX));
        assert_eq!(parse_truth_id("0000000000000000"), None, "zero is reserved");
        assert_eq!(parse_truth_id("00000000000000FF"), None, "uppercase");
        assert_eq!(parse_truth_id("ff"), None, "too short");
        assert_eq!(parse_truth_id("00000000000000ff0"), None, "too long");
        assert_eq!(parse_truth_id("00000000000000fg"), None, "non-hex");
        assert_eq!(parse_truth_id(""), None);
    }

    #[test]
    fn truth_dedupe_claims_once_and_evicts_fifo() {
        let mut dedupe = TruthDedupe::new();
        assert!(dedupe.claim(7));
        assert!(!dedupe.claim(7), "replay rejected");
        // Fill past capacity: the oldest id (7) falls out and can be
        // claimed again, while a recent one stays deduplicated.
        for id in 1_000..(1_000 + TruthDedupe::CAP as u64) {
            assert!(dedupe.claim(id));
        }
        assert!(dedupe.claim(7), "evicted id is claimable again");
        let recent = 1_000 + TruthDedupe::CAP as u64 - 1;
        assert!(!dedupe.claim(recent), "recent id still deduplicated");
    }
}
