//! Network-facing PI serving: the glue between `ce-server`'s HTTP substrate
//! and the core's resilient, self-healing estimator chain (DESIGN.md §10).
//!
//! ```text
//! accept loop ─▶ conn queue ─▶ worker pool ─▶ router ─▶ micro-batcher
//!                                                           │ coalesced
//!                                                           ▼
//!                          ResilientService (breakers, fallbacks, floor)
//!                                 └─ primary: SelfHealingService (RwLock)
//! ```
//!
//! Endpoints:
//!
//! - `POST /v1/predict` — JSON batch of feature vectors, answered with one
//!   interval per query. Requests are coalesced by the micro-batcher into
//!   `predict_interval_batch` calls; admission overflow sheds with `503` +
//!   `Retry-After`. Optional `truths` feed the prequential loop (calibration,
//!   drift detection, self-healing) after the predictions are made.
//! - `POST /v1/observe` — the same body with `truths` *required*, feeding
//!   calibration without serving predictions. This is the replication
//!   target: a cluster router fans each observed truth out to the key's
//!   backup replicas here, so a promoted backup serves from warm
//!   calibration (DESIGN.md §14). Both observe paths deduplicate by the
//!   router-minted `x-ce-truth-id` header (bounded id memory), so fan-out
//!   overlap and hedge duplicates cannot double-count an observation.
//! - `GET /metrics` — Prometheus text from the `ce-telemetry` registry,
//!   including the server's connection/poller counters.
//! - `GET /debug/trace` — JSON snapshot of the flight recorder: the last
//!   traced requests with per-stage latency attribution plus structured
//!   events (DESIGN.md §13).
//! - `GET /healthz` — liveness (always `200` while the process serves).
//! - `GET /readyz` — readiness; `503` while the self-healing layer is
//!   recalibrating or the server is draining.
//!
//! Tracing: a sampled `POST /v1/predict` (head sampling, default 1 in
//! `ce_telemetry::trace::DEFAULT_SAMPLE_RATE`; every request inside an
//! anomaly window) is traced end to end. The client may supply its own
//! 32-hex-digit `x-ce-trace` ID; a missing or malformed header mints a fresh
//! one — a hostile value can only ever be ignored, never poisons the
//! connection. The response echoes `x-ce-trace` and reports this hop's stage
//! breakdown in `x-ce-stages` so an upstream router can merge it.
//!
//! Determinism contract: the batcher's request coalescing never changes
//! results — `predict_interval_batch` snapshots state per batch and per-query
//! results are independent, so an HTTP-served interval is bit-identical to a
//! direct in-process call on the same state (the `net` experiment audits
//! this; non-finite endpoints travel as the JSON strings `"inf"`/`"-inf"`/
//! `"nan"` since JSON has no `Infinity`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Duration;

use crate::conformal::{
    BreakerSnapshot, CardEstError, Checkpoint, HealState, PiEstimator, PredictionInterval,
    Regressor, ResilienceStats, ResilientService, ScoreFunction, SelfHealingService,
    ServiceMode,
};
use ce_server::{
    BatchError, BatcherConfig, BatcherStats, HttpServer, MicroBatcher, Request, Response,
    ServerConfig, ServerStats, ServerStatsProbe, STAGES_HEADER, TRACE_HEADER, TRUTH_HEADER,
};
use ce_telemetry::trace::{self, TraceId};

/// A [`SelfHealingService`] shared between the HTTP workers (read: serve
/// intervals) and the feedback path (write: observe truths), adapted to the
/// resilient chain's object-safe [`PiEstimator`] interface.
pub struct SharedHealing<M, S>(Arc<RwLock<SelfHealingService<M, S>>>);

impl<M, S> Clone for SharedHealing<M, S> {
    fn clone(&self) -> Self {
        SharedHealing(Arc::clone(&self.0))
    }
}

impl<M, S> SharedHealing<M, S> {
    fn read(&self) -> std::sync::RwLockReadGuard<'_, SelfHealingService<M, S>> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, SelfHealingService<M, S>> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<M, S> PiEstimator for SharedHealing<M, S>
where
    M: Regressor + Clone + Send + Sync,
    S: ScoreFunction + Clone + Send + Sync,
{
    fn name(&self) -> &str {
        "self-healing"
    }

    fn predict(&self, features: &[f32]) -> Result<f64, CardEstError> {
        let value = self.read().predict(features);
        if value.is_finite() {
            Ok(value)
        } else {
            Err(CardEstError::NonFiniteScore { value, context: "model prediction" })
        }
    }

    fn interval(&self, features: &[f32]) -> Result<PredictionInterval, CardEstError> {
        self.read().try_interval(features)
    }

    fn interval_batch(
        &self,
        queries: &[Vec<f32>],
    ) -> Vec<Result<PredictionInterval, CardEstError>> {
        // One read lock and one batched model forward for the whole batch.
        self.read().try_interval_batch(queries)
    }

    fn observe(&mut self, features: &[f32], y_true: f64) {
        self.write().observe(features, y_true);
    }
}

/// The serving engine: the self-healing primary behind the resilient chain,
/// with full-chain checkpointing.
///
/// Lock order is `resilient` → `healing` everywhere (the chain's serving
/// calls take the healing read lock while holding the resilient mutex, so
/// every other path must do the same to stay deadlock-free).
pub struct ServeEngine<M, S> {
    healing: SharedHealing<M, S>,
    resilient: Mutex<ResilientService>,
    truth_dedupe: Mutex<TruthDedupe>,
}

/// Bounded memory of recently seen truth-post IDs (`x-ce-truth-id`). A
/// replicated truth post and a hedge duplicate both replay an observation
/// body the shard may already have absorbed; observing it twice would put
/// the same residual into calibration twice and skew coverage. The set is
/// bounded FIFO — old IDs age out once the window of plausible replays
/// (router retry budget × fan-out) is long past.
struct TruthDedupe {
    seen: std::collections::HashSet<u64>,
    order: std::collections::VecDeque<u64>,
}

impl TruthDedupe {
    /// IDs remembered; far beyond any in-flight replay window.
    const CAP: usize = 4096;

    fn new() -> TruthDedupe {
        TruthDedupe {
            seen: std::collections::HashSet::new(),
            order: std::collections::VecDeque::new(),
        }
    }

    /// Claims `id`; `false` means it was already seen (a replay).
    fn claim(&mut self, id: u64) -> bool {
        if !self.seen.insert(id) {
            return false;
        }
        self.order.push_back(id);
        if self.order.len() > Self::CAP {
            if let Some(old) = self.order.pop_front() {
                self.seen.remove(&old);
            }
        }
        true
    }
}

impl<M, S> ServeEngine<M, S>
where
    M: Regressor + Clone + Send + Sync + 'static,
    S: ScoreFunction + Clone + Send + Sync + 'static,
{
    /// Builds the engine: `healing` becomes the chain's primary, followed by
    /// the given fallbacks, with input sanitization against `expected_dims`
    /// and the conservative ±∞ floor as the last resort.
    pub fn new(
        healing: SelfHealingService<M, S>,
        fallbacks: Vec<Box<dyn PiEstimator>>,
        expected_dims: usize,
    ) -> Self {
        let healing = SharedHealing(Arc::new(RwLock::new(healing)));
        let mut resilient = ResilientService::new(Box::new(healing.clone()))
            .with_expected_dims(expected_dims)
            .with_conservative_floor(true);
        for fallback in fallbacks {
            resilient = resilient.with_fallback(fallback);
        }
        ServeEngine {
            healing,
            resilient: Mutex::new(resilient),
            truth_dedupe: Mutex::new(TruthDedupe::new()),
        }
    }

    fn resilient(&self) -> std::sync::MutexGuard<'_, ResilientService> {
        self.resilient.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Serves a batch through the full resilient chain (breakers, fallbacks,
    /// conservative floor all apply). Pure with respect to calibration
    /// state: feedback only ever arrives via [`ServeEngine::observe`].
    pub fn predict_batch(
        &self,
        queries: &[Vec<f32>],
    ) -> Vec<Result<PredictionInterval, CardEstError>> {
        self.resilient().predict_interval_batch(queries)
    }

    /// Feeds one executed query's truth to every chain entry — the primary's
    /// write routes into the self-healing state machine.
    pub fn observe(&self, features: &[f32], y_true: f64) {
        self.resilient().observe(features, y_true);
    }

    /// Feeds a whole batch of truths, atomically claiming `truth_id` first
    /// when one is present. Returns `false` — and observes *nothing* — when
    /// the ID was already seen: the batch is a replica-fan-out or hedge
    /// replay of an observation this shard has absorbed. The claim happens
    /// outside the chain locks, so the dedupe check never extends the
    /// serving critical section.
    pub fn observe_all(&self, features: &[Vec<f32>], truths: &[f64], truth_id: Option<u64>) -> bool {
        if let Some(id) = truth_id {
            let fresh = self.truth_dedupe.lock().unwrap_or_else(|e| e.into_inner()).claim(id);
            if !fresh {
                ce_telemetry::counter("serve.truth_deduped").inc();
                return false;
            }
        }
        for (x, y) in features.iter().zip(truths) {
            self.observe(x, *y);
        }
        true
    }

    /// Serving mode of the wrapped [`crate::conformal::PiService`].
    pub fn mode(&self) -> ServiceMode {
        self.healing.read().service().mode()
    }

    /// Remediation state of the self-healing layer.
    pub fn heal_state(&self) -> HealState {
        self.healing.read().state()
    }

    /// Total truths absorbed by the self-healing layer.
    pub fn observations(&self) -> u64 {
        self.healing.read().observations()
    }

    /// Full-chain checkpoint: the self-healing service state plus every
    /// breaker's snapshot, so a restore resumes the *whole* serving chain.
    pub fn checkpoint(&self) -> Checkpoint {
        let resilient = self.resilient();
        let ckpt = self.healing.read().checkpoint();
        ckpt.with_breakers(resilient.export_breakers())
    }

    /// Restores breaker state from a checkpoint's snapshots (the healing
    /// half is restored by constructing the engine from
    /// [`SelfHealingService::restore`]).
    pub fn restore_breakers(&self, snapshots: &[BreakerSnapshot]) -> Result<(), CardEstError> {
        self.resilient().restore_breakers(snapshots)
    }

    /// Resilience counters (copied out; the chain lock is released before
    /// returning).
    pub fn resilience_stats(&self) -> ResilienceStats {
        self.resilient().stats().clone()
    }

    /// Mirrors chain + heal state into the telemetry registry.
    pub fn publish_metrics(&self) {
        {
            let resilient = self.resilient();
            resilient.publish_telemetry();
        }
        if ce_telemetry::enabled() {
            let healing = self.healing.read();
            ce_telemetry::gauge("serve.heal_state").set(match healing.state() {
                HealState::Healthy => 0.0,
                HealState::Recalibrating => 1.0,
                HealState::RolledBack => 2.0,
            });
            ce_telemetry::gauge("serve.mode_drifted").set(match healing.service().mode() {
                ServiceMode::Stable => 0.0,
                ServiceMode::Drifted => 1.0,
            });
            ce_telemetry::gauge("serve.observations").set(healing.observations() as f64);
            ce_telemetry::gauge("serve.promotions").set(healing.promotion_count() as f64);
            ce_telemetry::gauge("serve.rollbacks").set(healing.rollback_count() as f64);
        }
    }
}

/// Tuning for [`start_server`].
#[derive(Debug, Clone, Copy)]
pub struct HttpServeConfig {
    /// HTTP worker threads.
    pub workers: usize,
    /// Bounded accepted-connection queue (overflow: raw 503).
    pub conn_queue: usize,
    /// Micro-batcher admission queue capacity in queries (overflow: JSON
    /// 503 + `Retry-After`).
    pub queue_cap: usize,
    /// Maximum queries coalesced into one `predict_interval_batch` call.
    pub max_batch: usize,
    /// Batch window: how long the batcher lingers for stragglers. The
    /// default is zero: the batcher's inline fast path serves uncontended
    /// submissions on the caller's thread, and under contention queued
    /// requests coalesce naturally while the runner is busy — a measured
    /// sweep (500µs, 100µs, 0) showed no throughput gain from lingering,
    /// only added per-request latency at low concurrency.
    pub batch_window: Duration,
    /// Server read tick — only meaningful in the tick-polled fallback mode,
    /// where it quantizes shutdown/drain responsiveness (see
    /// `ce_server::ServerConfig::read_tick`). The event-driven mode reacts
    /// to readiness and deadlines exactly and ignores this.
    pub read_tick: Duration,
    /// Readiness-loop poller threads multiplexing idle keep-alive
    /// connections (see `ce_server::ServerConfig::pollers`). 1 is plenty
    /// for thousands of connections; 0 forces the tick-polled fallback.
    pub pollers: usize,
    /// Event-driven connection handling (readiness loop). Disable to force
    /// the portable tick-polled fallback.
    pub event_driven: bool,
    /// Maximum concurrently open connections in event mode (overflow is
    /// shed with a raw 503 at accept).
    pub max_conns: usize,
}

impl Default for HttpServeConfig {
    fn default() -> Self {
        HttpServeConfig {
            workers: 4,
            conn_queue: 64,
            queue_cap: 1024,
            max_batch: 64,
            batch_window: Duration::ZERO,
            read_tick: Duration::from_millis(10),
            pollers: 1,
            event_driven: true,
            max_conns: 4096,
        }
    }
}

/// A running HTTP PI server; dropping it (or calling
/// [`ServeHandle::drain`]) shuts it down gracefully.
pub struct ServeHandle {
    server: HttpServer,
    batcher: Arc<MicroBatcher<Vec<f32>, Result<PredictionInterval, CardEstError>>>,
    draining: Arc<AtomicBool>,
}

impl ServeHandle {
    /// The bound address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.server.local_addr()
    }

    /// Connection-level counters.
    pub fn server_stats(&self) -> ServerStats {
        self.server.stats()
    }

    /// Micro-batcher counters (admitted/shed/batches).
    pub fn batcher_stats(&self) -> BatcherStats {
        self.batcher.stats()
    }

    /// Graceful drain: readiness flips to 503, the acceptor stops, in-flight
    /// requests finish (their batcher submissions included), the batcher
    /// flushes, and all threads join. Blocks until done; idempotent.
    pub fn drain(&self) {
        if !self.draining.swap(true, Ordering::SeqCst) {
            trace::event("drain", "serve drain requested");
        }
        self.server.shutdown();
        self.batcher.shutdown();
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.drain();
    }
}

/// Starts the HTTP server for `engine` on `listen` (e.g. `127.0.0.1:0`).
///
/// The returned handle owns the accept/worker/batcher threads; the caller
/// keeps its own `Arc` to the engine for checkpointing and shutdown policy.
pub fn start_server<M, S>(
    engine: Arc<ServeEngine<M, S>>,
    listen: &str,
    config: HttpServeConfig,
) -> std::io::Result<ServeHandle>
where
    M: Regressor + Clone + Send + Sync + 'static,
    S: ScoreFunction + Clone + Send + Sync + 'static,
{
    // Pre-size the flight recorder off the hot path: the first traced
    // request must not pay the ring allocation.
    trace::warm();
    let batch_engine = Arc::clone(&engine);
    let batcher = MicroBatcher::new(
        BatcherConfig {
            queue_cap: config.queue_cap,
            max_batch: config.max_batch,
            window: config.batch_window,
        },
        move |items: Vec<Vec<f32>>| batch_engine.predict_batch(&items),
    );
    let draining = Arc::new(AtomicBool::new(false));

    // The handler closure outlives `bind`, but the server's stats probe only
    // exists after it — a OnceLock filled post-bind closes the loop so
    // `/metrics` can report connection/poller counters.
    let probe: Arc<OnceLock<ServerStatsProbe>> = Arc::new(OnceLock::new());
    let handler = {
        let engine = Arc::clone(&engine);
        let batcher = Arc::clone(&batcher);
        let draining = Arc::clone(&draining);
        let probe = Arc::clone(&probe);
        move |req: &Request| route(req, &engine, &batcher, &draining, &probe)
    };
    let server = HttpServer::bind(
        listen,
        ServerConfig {
            workers: config.workers,
            conn_queue: config.conn_queue,
            read_tick: config.read_tick,
            pollers: config.pollers,
            event_driven: config.event_driven,
            max_conns: config.max_conns,
            ..ServerConfig::default()
        },
        Arc::new(handler),
    )?;
    let _ = probe.set(server.stats_probe());
    Ok(ServeHandle { server, batcher, draining })
}

/// Formats an f64 for the JSON wire: finite values use Rust's shortest
/// round-trip `Display` (bit-exact through parse), non-finite become the
/// strings `"inf"` / `"-inf"` / `"nan"` since JSON has no literal for them.
pub fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else if value.is_nan() {
        "\"nan\"".to_string()
    } else if value > 0.0 {
        "\"inf\"".to_string()
    } else {
        "\"-inf\"".to_string()
    }
}

/// Inverse of [`json_f64`] over parsed values: accepts a JSON number or one
/// of the non-finite marker strings.
pub fn value_to_f64(value: &serde_json::Value) -> Result<f64, String> {
    match value {
        serde_json::Value::Num(n) => Ok(*n),
        serde_json::Value::Str(s) => match s.as_str() {
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            "nan" => Ok(f64::NAN),
            other => Err(format!("not a number: `{other}`")),
        },
        _ => Err("expected number".to_string()),
    }
}

fn json_error(status: u16, message: &str) -> Response {
    let escaped = message.replace('\\', "\\\\").replace('"', "\\\"");
    Response::json(status, format!("{{\"error\":\"{escaped}\"}}"))
}

/// Mirrors the server's connection/poller counters into the telemetry
/// registry (satellite of `/metrics`: the PR 7 event-loop counters —
/// `poller_wakeups`, `poller_dispatches`, the parked-connection gauge, and
/// the instantaneous dispatch depth — become scrapeable).
fn publish_server_stats(stats: &ServerStats) {
    if !ce_telemetry::enabled() {
        return;
    }
    ce_telemetry::gauge("serve.conns_accepted").set(stats.accepted as f64);
    ce_telemetry::gauge("serve.conns_shed").set(stats.conn_shed as f64);
    ce_telemetry::gauge("serve.conns_open").set(stats.open as f64);
    ce_telemetry::gauge("serve.requests").set(stats.requests as f64);
    ce_telemetry::gauge("serve.parse_errors").set(stats.parse_errors as f64);
    ce_telemetry::gauge("serve.buffer_allocs").set(stats.buffer_allocs as f64);
    ce_telemetry::gauge("serve.poller_wakeups").set(stats.poller_wakeups as f64);
    ce_telemetry::gauge("serve.poller_dispatches").set(stats.poller_dispatches as f64);
    ce_telemetry::gauge("serve.parked_conns").set(stats.parked as f64);
    ce_telemetry::gauge("serve.dispatch_depth").set(stats.dispatch_depth as f64);
}

fn route<M, S>(
    req: &Request,
    engine: &ServeEngine<M, S>,
    batcher: &MicroBatcher<Vec<f32>, Result<PredictionInterval, CardEstError>>,
    draining: &AtomicBool,
    probe: &OnceLock<ServerStatsProbe>,
) -> Response
where
    M: Regressor + Clone + Send + Sync + 'static,
    S: ScoreFunction + Clone + Send + Sync + 'static,
{
    match (req.method, req.path()) {
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/readyz") => {
            if draining.load(Ordering::SeqCst) {
                Response::text(503, "draining\n")
            } else if engine.heal_state() == HealState::Recalibrating {
                Response::text(503, "recalibrating\n")
            } else {
                Response::text(200, "ready\n")
            }
        }
        ("GET", "/metrics") => {
            engine.publish_metrics();
            if ce_telemetry::enabled() {
                let stats = batcher.stats();
                ce_telemetry::gauge("serve.batch_admitted").set(stats.admitted as f64);
                ce_telemetry::gauge("serve.batch_shed").set(stats.shed as f64);
                ce_telemetry::gauge("serve.batches").set(stats.batches as f64);
                ce_telemetry::gauge("serve.max_batch").set(stats.max_batch_seen as f64);
            }
            if let Some(probe) = probe.get() {
                publish_server_stats(&probe.stats());
            }
            Response::new(200)
                .header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
                .body(ce_telemetry::global().to_prometheus())
        }
        ("GET", "/debug/trace") => Response::json(200, trace::snapshot_json()),
        ("POST", "/v1/predict") => predict(req, engine, batcher),
        ("POST", "/v1/observe") => observe_post(req, engine),
        (_, "/healthz" | "/readyz" | "/metrics" | "/debug/trace") => {
            json_error(405, "method not allowed")
        }
        (_, "/v1/predict" | "/v1/observe") => json_error(405, "method not allowed"),
        _ => json_error(404, "no such endpoint"),
    }
}

/// Parses `x-ce-truth-id`: exactly 16 lowercase hex digits encoding a
/// nonzero `u64`. Anything else — wrong length, uppercase, zero — yields
/// `None` and the post proceeds *undeduplicated*: a malformed ID can only
/// cost idempotency, never reject the observation.
fn parse_truth_id(text: &str) -> Option<u64> {
    if text.len() != 16 || !text.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')) {
        return None;
    }
    match u64::from_str_radix(text, 16) {
        Ok(0) | Err(_) => None,
        Ok(id) => Some(id),
    }
}

/// `POST /v1/observe`: calibration feedback without predictions — the truth
/// replication target (module docs). Same body as `/v1/predict` but
/// `truths` is mandatory; answers `{"observed":N,"deduped":bool}`.
fn observe_post<M, S>(req: &Request, engine: &ServeEngine<M, S>) -> Response
where
    M: Regressor + Clone + Send + Sync + 'static,
    S: ScoreFunction + Clone + Send + Sync + 'static,
{
    let (features, truths) = match parse_predict_body(req.body) {
        Ok(parsed) => parsed,
        Err(msg) => return json_error(422, &msg),
    };
    let Some(truths) = truths else {
        return json_error(422, "`truths` is required on /v1/observe");
    };
    let truth_id = req.header(TRUTH_HEADER).and_then(parse_truth_id);
    let fresh = engine.observe_all(&features, &truths, truth_id);
    let observed = if fresh { truths.len() } else { 0 };
    Response::json(200, format!("{{\"observed\":{observed},\"deduped\":{}}}", !fresh))
}

/// A parsed predict request: feature rows plus optional truths.
type PredictBody = (Vec<Vec<f32>>, Option<Vec<f64>>);

/// Parses the predict request body: `{"features": [[f32...]...],
/// "truths": [f64...]?}`.
fn parse_predict_body(body: &[u8]) -> Result<PredictBody, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let value = serde_json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let features_value = value.field("features").map_err(|e| e.to_string())?;
    let serde_json::Value::Array(rows) = features_value else {
        return Err("`features` must be an array of arrays".to_string());
    };
    let mut features = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let serde_json::Value::Array(nums) = row else {
            return Err(format!("`features[{i}]` must be an array of numbers"));
        };
        let mut q = Vec::with_capacity(nums.len());
        for n in nums {
            q.push(value_to_f64(n).map_err(|e| format!("`features[{i}]`: {e}"))? as f32);
        }
        features.push(q);
    }
    let truths = match value.field("truths") {
        Err(_) => None,
        Ok(serde_json::Value::Array(vals)) => {
            let mut t = Vec::with_capacity(vals.len());
            for (i, v) in vals.iter().enumerate() {
                t.push(value_to_f64(v).map_err(|e| format!("`truths[{i}]`: {e}"))?);
            }
            Some(t)
        }
        Ok(_) => return Err("`truths` must be an array of numbers".to_string()),
    };
    if let Some(t) = &truths {
        if t.len() != features.len() {
            return Err(format!(
                "`truths` length {} != `features` length {}",
                t.len(),
                features.len()
            ));
        }
    }
    Ok((features, truths))
}

fn predict<M, S>(
    req: &Request,
    engine: &ServeEngine<M, S>,
    batcher: &MicroBatcher<Vec<f32>, Result<PredictionInterval, CardEstError>>,
) -> Response
where
    M: Regressor + Clone + Send + Sync + 'static,
    S: ScoreFunction + Clone + Send + Sync + 'static,
{
    // A valid client-supplied ID (exactly 32 lowercase hex digits) is an
    // explicit opt-in: it forces sampling so an upstream hop's decision
    // propagates. Otherwise head sampling decides and a fresh ID is minted.
    // A malformed or oversized header is simply ignored — the request
    // itself always proceeds.
    let client_id = req.header(TRACE_HEADER).and_then(TraceId::parse);
    if client_id.is_some() || trace::should_sample() {
        trace::begin(client_id.unwrap_or_else(trace::mint));
    }
    let response = predict_inner(req, engine, batcher);
    // While a trace is active, echo its ID and report this hop's stage
    // breakdown so an upstream router can merge it. The server's connection
    // loop appends the `write` stage and publishes the record after flush.
    if let Some(id) = trace::active_id() {
        let mut response = response.header(TRACE_HEADER, &id.to_string());
        if let Some(stages) = trace::stages_header() {
            response = response.header(STAGES_HEADER, &stages);
        }
        response
    } else {
        response
    }
}

fn predict_inner<M, S>(
    req: &Request,
    engine: &ServeEngine<M, S>,
    batcher: &MicroBatcher<Vec<f32>, Result<PredictionInterval, CardEstError>>,
) -> Response
where
    M: Regressor + Clone + Send + Sync + 'static,
    S: ScoreFunction + Clone + Send + Sync + 'static,
{
    let (features, truths) = match parse_predict_body(req.body) {
        Ok(parsed) => parsed,
        Err(msg) => return json_error(422, &msg),
    };
    let results = match batcher.submit_all(features.clone()) {
        Ok(results) => results,
        Err(BatchError::QueueFull) => {
            trace::event("shed", "admission queue full");
            return json_error(503, "admission queue full").header("Retry-After", "1");
        }
        Err(BatchError::Shutdown) => {
            return json_error(503, "server draining").header("Retry-After", "1");
        }
        Err(BatchError::Failed) => return json_error(500, "batch execution failed"),
    };
    // Prequential feedback strictly after the predictions: the intervals
    // above were served from pre-feedback state, like the offline loops.
    if let Some(truths) = &truths {
        let truth_id = req.header(TRUTH_HEADER).and_then(parse_truth_id);
        engine.observe_all(&features, truths, truth_id);
    }
    let mode = match engine.mode() {
        ServiceMode::Stable => "stable",
        ServiceMode::Drifted => "drifted",
    };
    let mut body = String::with_capacity(64 + results.len() * 48);
    body.push_str("{\"mode\":\"");
    body.push_str(mode);
    body.push_str("\",\"results\":[");
    for (i, result) in results.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        match result {
            Ok(iv) => {
                body.push_str("{\"lo\":");
                body.push_str(&json_f64(iv.lo));
                body.push_str(",\"hi\":");
                body.push_str(&json_f64(iv.hi));
                body.push('}');
            }
            Err(e) => {
                let msg = e.to_string().replace('\\', "\\\\").replace('"', "\\\"");
                body.push_str("{\"error\":\"");
                body.push_str(&msg);
                body.push_str("\"}");
            }
        }
    }
    body.push_str("]}");
    Response::json(200, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_f64_round_trips_every_class() {
        for v in [0.0, -0.0, 1.5, -2.25, 1e-300, 1e300, f64::MIN_POSITIVE, f64::MAX] {
            let text = json_f64(v);
            let parsed = value_to_f64(&serde_json::parse(&text).unwrap()).unwrap();
            assert_eq!(parsed.to_bits(), v.to_bits(), "round-trip of {v}");
        }
        let inf = value_to_f64(&serde_json::parse(&json_f64(f64::INFINITY)).unwrap()).unwrap();
        assert_eq!(inf, f64::INFINITY);
        let ninf =
            value_to_f64(&serde_json::parse(&json_f64(f64::NEG_INFINITY)).unwrap()).unwrap();
        assert_eq!(ninf, f64::NEG_INFINITY);
        let nan = value_to_f64(&serde_json::parse(&json_f64(f64::NAN)).unwrap()).unwrap();
        assert!(nan.is_nan());
    }

    #[test]
    fn parse_predict_body_validates() {
        let (f, t) = parse_predict_body(br#"{"features":[[1.0,2.0],[3.5,4.5]]}"#).unwrap();
        assert_eq!(f, vec![vec![1.0f32, 2.0], vec![3.5, 4.5]]);
        assert!(t.is_none());
        let (f, t) =
            parse_predict_body(br#"{"features":[[1.0]],"truths":[0.25]}"#).unwrap();
        assert_eq!(f.len(), 1);
        assert_eq!(t, Some(vec![0.25]));
        assert!(parse_predict_body(b"not json").is_err());
        assert!(parse_predict_body(br#"{"truths":[1.0]}"#).is_err(), "missing features");
        assert!(parse_predict_body(br#"{"features":[1.0]}"#).is_err(), "non-nested");
        assert!(
            parse_predict_body(br#"{"features":[[1.0]],"truths":[1.0,2.0]}"#).is_err(),
            "length mismatch"
        );
        assert!(parse_predict_body(br#"{"features":[["x"]]}"#).is_err(), "non-number");
    }

    #[test]
    fn parse_truth_id_accepts_only_nonzero_lowercase_hex64() {
        assert_eq!(parse_truth_id("00000000000000ff"), Some(0xff));
        assert_eq!(parse_truth_id("ffffffffffffffff"), Some(u64::MAX));
        assert_eq!(parse_truth_id("0000000000000000"), None, "zero is reserved");
        assert_eq!(parse_truth_id("00000000000000FF"), None, "uppercase");
        assert_eq!(parse_truth_id("ff"), None, "too short");
        assert_eq!(parse_truth_id("00000000000000ff0"), None, "too long");
        assert_eq!(parse_truth_id("00000000000000fg"), None, "non-hex");
        assert_eq!(parse_truth_id(""), None);
    }

    #[test]
    fn truth_dedupe_claims_once_and_evicts_fifo() {
        let mut dedupe = TruthDedupe::new();
        assert!(dedupe.claim(7));
        assert!(!dedupe.claim(7), "replay rejected");
        // Fill past capacity: the oldest id (7) falls out and can be
        // claimed again, while a recent one stays deduplicated.
        for id in 1_000..(1_000 + TruthDedupe::CAP as u64) {
            assert!(dedupe.claim(id));
        }
        assert!(dedupe.claim(7), "evicted id is claimable again");
        let recent = 1_000 + TruthDedupe::CAP as u64 - 1;
        assert!(!dedupe.claim(recent), "recent id still deduplicated");
    }
}
