//! Cluster mode: the cardest-facing router process in front of a fleet of
//! shared-nothing `serve --listen` shards (DESIGN.md §11).
//!
//! ```text
//!                        ┌────────────────────────────┐
//!  clients ──▶ router ───┤ consistent-hash ring       │──▶ shard 0 (serve --listen)
//!              │         │ (signature = FNV-1a(body)) │──▶ shard 1
//!              │         └────────────────────────────┘──▶ shard N-1
//!              └── health checker: GET /readyz per shard, hysteresis
//! ```
//!
//! The router owns no estimator state — it hashes each predict request's
//! body to a signature, walks the ring's candidate list, and forwards to
//! the first shard that answers (`ce_server::router` does the legwork:
//! pooled connections, failover on refusal/error, retry budget, deadline).
//! Because the signature is a pure function of the request bytes, a given
//! query always lands on the same live shard — its calibration feedback
//! (truths ride the predict body) accumulates on one shard's state, and
//! re-asking the same query hits the same state. Shard loss degrades
//! capacity, never correctness: ejected shards' keys fail over to their
//! ring successors, and a shard restarted from its checkpoint (`--resume`)
//! is readmitted with its exact placement — shards are keyed by stable
//! *name*, so a restart on a new port re-registers the address without
//! moving any keys.
//!
//! Local endpoints (not proxied): `GET /healthz` (router liveness),
//! `GET /readyz` (`200` iff ≥ 1 live shard), `GET /metrics` (router,
//! fleet, and server counters as Prometheus text — plus every live shard's
//! own `/metrics`, each sample re-labeled with `shard="<name>"` so one
//! scrape shows the whole fleet), `GET /debug/trace` (the router's flight
//! recorder as JSON). `POST /v1/predict` is routed; everything else is
//! `404`/`405` at the router without burning a shard leg.
//!
//! Tracing (DESIGN.md §13): a sampled predict (or any predict carrying a
//! valid 32-hex `x-ce-trace`) is traced across the hop — the router mints
//! or adopts the ID, injects it into the forwarded request, merges the
//! shard's `x-ce-stages` report into its own record, and attributes the
//! un-reported remainder of the forward time to the `network` stage. The
//! response carries the router's ID and combined stage view.
//!
//! Replication and hedging (DESIGN.md §14): with `replicas > 1` each
//! signature owns an R-way replica set (the first R distinct live shards
//! clockwise on the ring). Predictions go to the primary with failover
//! preferring the backups, optionally hedged against tail latency
//! (`RouterConfig::hedge`). Truth-carrying predicts are stamped with a
//! minted `x-ce-truth-id` and, after a successful response, fanned out to
//! the remaining replicas as `POST /v1/observe` — best-effort with a
//! bounded retry budget, so a promoted backup serves from warm calibration
//! state. The truth ID makes the fan-out idempotent per shard: a backup
//! that already absorbed the truths (it served the hedged predict) drops
//! the duplicate.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use ce_server::{
    fnv1a64, ClientConfig, Fleet, FleetStats, Headers, HealthChecker, HealthConfig,
    HttpClient, HttpServer, Request, Response, Router, RouterConfig, RouterStats,
    ServerConfig, ServerStats, STAGES_HEADER, TRACE_HEADER, TRUTH_HEADER,
};
use ce_telemetry::trace::{self, TraceId};

/// Tuning for [`start_cluster_router`]: the front server, the failover
/// engine, and the health prober in one bundle.
#[derive(Debug, Clone)]
pub struct ClusterRouterConfig {
    /// HTTP worker threads on the router's front server.
    pub workers: usize,
    /// Bounded accepted-connection queue (overflow: raw 503).
    pub conn_queue: usize,
    /// Front-server read tick. Routers default low (5ms) so drains and
    /// stop signals propagate promptly; see `ServerConfig::read_tick`.
    pub read_tick: Duration,
    /// Virtual nodes per shard on the ring.
    pub vnodes: usize,
    /// Failover engine tuning (retry budget, deadline, leg timeouts).
    pub router: RouterConfig,
    /// Health prober tuning (probe path/interval, hysteresis thresholds).
    pub health: HealthConfig,
}

impl Default for ClusterRouterConfig {
    fn default() -> Self {
        ClusterRouterConfig {
            workers: 4,
            conn_queue: 64,
            read_tick: Duration::from_millis(5),
            vnodes: 64,
            router: RouterConfig::default(),
            health: HealthConfig::default(),
        }
    }
}

/// A running cluster router; dropping it (or calling
/// [`ClusterRouterHandle::drain`]) stops the prober and drains the server.
pub struct ClusterRouterHandle {
    server: HttpServer,
    router: Arc<Router>,
    checker: std::sync::Mutex<HealthChecker>,
    draining: Arc<AtomicBool>,
}

impl ClusterRouterHandle {
    /// The router's bound address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The shared fleet — used to re-register a restarted shard's address
    /// ([`Fleet::set_addr`]) and to inspect liveness.
    pub fn fleet(&self) -> &Fleet {
        self.router.fleet()
    }

    /// Forwarding counters.
    pub fn router_stats(&self) -> RouterStats {
        self.router.stats()
    }

    /// Per-backup truth propagation lag: replicas that missed fan-outs
    /// (after the retry budget), sorted by shard name.
    pub fn truth_lag(&self) -> Vec<(String, u64)> {
        self.router.truth_lag()
    }

    /// Health/hysteresis counters.
    pub fn fleet_stats(&self) -> FleetStats {
        self.router.fleet().stats()
    }

    /// Front-server connection counters.
    pub fn server_stats(&self) -> ServerStats {
        self.server.stats()
    }

    /// Graceful drain: readiness flips to 503, the prober stops, the accept
    /// loop stops, and in-flight requests finish. Blocks; idempotent.
    pub fn drain(&self) {
        if !self.draining.swap(true, Ordering::SeqCst) {
            trace::event("drain", "router drain requested");
        }
        self.checker.lock().unwrap_or_else(|e| e.into_inner()).stop();
        self.server.shutdown();
    }
}

impl Drop for ClusterRouterHandle {
    fn drop(&mut self) {
        self.drain();
    }
}

/// The routing signature of a predict request: FNV-1a over the raw body
/// bytes. Pure, stable across processes — every router instance (and the
/// experiment's direct audit) places a given request identically.
pub fn request_signature(body: &[u8]) -> u64 {
    fnv1a64(body)
}

/// The placement key for a (possibly model-addressed) predict request.
///
/// The bare `POST /v1/predict` keeps its original content-addressed key
/// ([`request_signature`]) — a PR 9 fleet's placement is unchanged byte for
/// byte. A named `POST /v1/predict/{model}` folds the model name into the
/// FNV-1a chain *before* the body (`name ++ '/' ++ body` — `/` cannot
/// appear inside a path segment, so distinct (model, body) pairs can never
/// collide by concatenation), so the same query text against two models
/// lands on independently-placed shards: one hot model cannot gravitate an
/// entire multi-tenant workload onto one shard's calibration state.
pub fn placement_signature(model: Option<&str>, body: &[u8]) -> u64 {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    match model {
        None => fnv1a64(body),
        Some(name) => {
            let mut hash = fnv1a64(name.as_bytes());
            for &byte in std::iter::once(&b'/').chain(body) {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(FNV_PRIME);
            }
            hash
        }
    }
}

/// Starts the cluster router on `listen` over `shards` (`(name, addr)`
/// pairs; names are the stable ring identity, addresses may be updated
/// later via [`Fleet::set_addr`]).
pub fn start_cluster_router(
    shards: &[(String, SocketAddr)],
    listen: &str,
    config: ClusterRouterConfig,
) -> std::io::Result<ClusterRouterHandle> {
    // Pre-size the flight recorder off the hot path.
    trace::warm();
    let fleet = Fleet::new(shards, config.vnodes, config.health.clone());
    let router = Arc::new(Router::new(fleet.clone(), config.router));
    let checker = HealthChecker::start(fleet);
    let draining = Arc::new(AtomicBool::new(false));
    let handler = {
        let router = Arc::clone(&router);
        let draining = Arc::clone(&draining);
        move |req: &Request| route(req, &router, &draining)
    };
    let server = HttpServer::bind(
        listen,
        ServerConfig {
            workers: config.workers,
            conn_queue: config.conn_queue,
            read_tick: config.read_tick,
            ..ServerConfig::default()
        },
        Arc::new(handler),
    )?;
    Ok(ClusterRouterHandle {
        server,
        router,
        checker: std::sync::Mutex::new(checker),
        draining,
    })
}

fn route(req: &Request, router: &Router, draining: &AtomicBool) -> Response {
    match (req.method, req.path()) {
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/readyz") => {
            if draining.load(Ordering::SeqCst) {
                Response::text(503, "draining\n")
            } else if router.fleet().live_count() == 0 {
                Response::text(503, "no live shards\n")
            } else {
                Response::text(200, "ready\n")
            }
        }
        ("GET", "/metrics") => {
            publish_metrics(router);
            let mut body = if ce_telemetry::enabled() {
                ce_telemetry::global().to_prometheus()
            } else {
                metrics_text(router)
            };
            body.push_str(&fleet_metrics(router));
            // Either branch is the Prometheus text exposition format, so
            // both must carry the `version=0.0.4` content type — scrapers
            // key parsing off it.
            Response::new(200)
                .header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
                .body(body)
        }
        ("GET", "/debug/trace") => Response::json(200, trace::snapshot_json()),
        ("POST", "/v1/predict") => {
            if draining.load(Ordering::SeqCst) {
                return Response::json(503, "{\"error\":\"router draining\"}")
                    .header("Retry-After", "1");
            }
            forward_traced(req, router, None)
        }
        // Multi-tenant passthrough (DESIGN.md §15): a named predict is
        // forwarded verbatim — the shard resolves the model — but its
        // placement key folds the model name in, so per-model workloads
        // spread independently across the ring.
        ("POST", p) if model_suffix(p).is_some() => {
            if draining.load(Ordering::SeqCst) {
                return Response::json(503, "{\"error\":\"router draining\"}")
                    .header("Retry-After", "1");
            }
            forward_traced(req, router, model_suffix(p))
        }
        (_, "/healthz" | "/readyz" | "/metrics" | "/debug/trace" | "/v1/predict") => {
            Response::json(405, "{\"error\":\"method not allowed\"}")
        }
        (_, p) if model_suffix(p).is_some() => {
            Response::json(405, "{\"error\":\"method not allowed\"}")
        }
        _ => Response::json(404, "{\"error\":\"no such endpoint\"}"),
    }
}

/// `/v1/predict/foo` → `Some("foo")`; the bare path (or an empty trailing
/// segment) is not a named route.
fn model_suffix(path: &str) -> Option<&str> {
    path.strip_prefix("/v1/predict/").filter(|rest| !rest.is_empty())
}

/// Mints a process-unique truth ID: 16 lowercase hex digits, never zero.
/// A SplitMix64 stream over an atomic sequence, seeded once per process
/// from the clock and PID so two routers never collide on a stream.
fn mint_truth_id() -> String {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    static SEED: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    let seed = *SEED.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        nanos ^ (u64::from(std::process::id()) << 32)
    });
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let mut z = seed.wrapping_add((n.wrapping_add(1)).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    if z == 0 {
        z = 1; // zero is the shard-side "no ID" sentinel
    }
    format!("{z:016x}")
}

/// Whether a predict body carries calibration truths. A substring probe,
/// not a JSON parse — a `"truths"` key inside a string literal is a false
/// positive, which costs one redundant fan-out of a body the shards will
/// ignore, never a lost truth.
fn body_has_truths(body: &[u8]) -> bool {
    body.windows(8).any(|w| w == b"\"truths\"")
}

/// After a served truth-carrying predict, re-posts the truths to the other
/// replicas as `POST /v1/observe` (or the model-addressed
/// `POST /v1/observe/{model}` when the predict was named) so a promoted
/// backup serves from warm calibration state. Best-effort: failures land in
/// the router's `truth_lag` ledger, never in the client's response.
fn replicate_truths(
    router: &Router,
    body: &[u8],
    signature: u64,
    id: &str,
    served: Option<&str>,
    model: Option<&str>,
) {
    let headers = [("content-type", "application/json"), (TRUTH_HEADER, id)];
    let target = match model {
        Some(name) => format!("/v1/observe/{name}"),
        None => "/v1/observe".to_string(),
    };
    let observe = Request {
        method: "POST",
        target: &target,
        http11: true,
        headers: Headers::from_pairs(&headers),
        body,
    };
    router.replicate(&observe, signature, served, &[]);
}

/// Forwards one predict request, threading the distributed trace across the
/// hop: the router's ID rides the outgoing leg as `x-ce-trace`, the shard's
/// `x-ce-stages` report is merged into the router's record, and whatever
/// part of the forward time the shard did not account for is attributed to
/// the `network` stage. Un-sampled requests take the plain forwarding path
/// untouched.
///
/// Replication rides the same path: at `replicas > 1` a truth-carrying
/// body is stamped with a minted truth ID on the predict leg and, on a
/// `200`, fanned out to the backups before the response returns. Hedging
/// is vetoed for truth-carrying bodies at single-owner — a lost hedge race
/// would observe the truths on a shard that does not own the key.
fn forward_traced(req: &Request, router: &Router, model: Option<&str>) -> Response {
    let signature = placement_signature(model, req.body);
    let has_truths = body_has_truths(req.body);
    let replicas = router.config().replicas;
    let allow_hedge = replicas > 1 || !has_truths;
    let truth_id =
        if has_truths && replicas > 1 { Some(mint_truth_id()) } else { None };
    // A valid client-supplied trace ID forces sampling (the upstream
    // decision propagates); a malformed one is ignored, never an error.
    let client_id = req.header(TRACE_HEADER).and_then(TraceId::parse);
    if client_id.is_none() && !trace::should_sample() {
        let mut extras: Vec<(&str, &str)> = Vec::new();
        if let Some(id) = &truth_id {
            extras.push((TRUTH_HEADER, id));
        }
        let (resp, outcome) = router.forward_opts(req, signature, &extras, allow_hedge);
        if let Some(id) = &truth_id {
            if resp.status == 200 {
                replicate_truths(
                    router,
                    req.body,
                    signature,
                    id,
                    outcome.served_by.as_deref(),
                    model,
                );
            }
        }
        return resp;
    }
    let id = client_id.unwrap_or_else(trace::mint);
    trace::begin(id);
    let id_text = id.to_string();
    let mut extras: Vec<(&str, &str)> = vec![(TRACE_HEADER, &id_text)];
    if let Some(tid) = &truth_id {
        extras.push((TRUTH_HEADER, tid));
    }
    let t_handle = Instant::now();
    let (mut resp, outcome) = router.forward_opts(req, signature, &extras, allow_hedge);
    let forward_ns = t_handle.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    if let Some(tid) = &truth_id {
        if resp.status == 200 {
            replicate_truths(
                router,
                req.body,
                signature,
                tid,
                outcome.served_by.as_deref(),
                model,
            );
        }
    }
    // Merge the shard's stage breakdown; the rest of the forward time is
    // connect/serialize/wire/shard-unreported — the network's share.
    let merged_ns = resp
        .headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case(STAGES_HEADER))
        .map(|(_, v)| trace::merge_stages_header(v))
        .unwrap_or(0);
    trace::stage("network", forward_ns.saturating_sub(merged_ns));
    trace::stage("route", now_sub(t_handle).saturating_sub(forward_ns));
    // The response presents the *router's* combined view: drop whatever
    // trace headers the shard echoed and emit our own.
    resp.headers.retain(|(k, _)| {
        !k.eq_ignore_ascii_case(TRACE_HEADER) && !k.eq_ignore_ascii_case(STAGES_HEADER)
    });
    let mut resp = resp.header(TRACE_HEADER, &id_text);
    if let Some(stages) = trace::stages_header() {
        resp = resp.header(STAGES_HEADER, &stages);
    }
    resp
}

/// Saturating nanoseconds since `t`.
fn now_sub(t: Instant) -> u64 {
    t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

/// Shard scrapes dropped at the fleet-wide deadline (satellite of the
/// replication PR): a hung shard must never stall `/metrics` exposition.
static FLEET_SCRAPE_TIMEOUTS: AtomicU64 = AtomicU64::new(0);

/// Scrapes every live shard's `/metrics` and re-labels each sample with
/// `shard="<name>"` (label values escaped per the exposition format — shard
/// names are operator-controlled and may contain anything), producing one
/// fleet-wide Prometheus view. Dead shards are skipped; a slow or broken
/// scrape only omits that shard's section.
///
/// Shards are scraped in parallel against one fleet-wide deadline: a
/// black-holed shard (accepting but never answering) costs at most
/// `SCRAPE_DEADLINE`, not a serial head-of-line stall of everyone behind
/// it. Shards missing at the deadline are counted in
/// `fleet_scrape_timeouts`; their threads finish on their own client
/// timeouts and their late sections are discarded.
fn fleet_metrics(router: &Router) -> String {
    const SCRAPE_DEADLINE: Duration = Duration::from_millis(750);
    let scrape_config = ClientConfig {
        connect_timeout: Duration::from_millis(200),
        read_timeout: Duration::from_millis(500),
        write_timeout: Duration::from_millis(200),
    };
    let (tx, rx) = mpsc::channel::<(String, Option<String>)>();
    let mut expected = 0usize;
    for (name, addr, live) in router.fleet().snapshot() {
        if !live {
            continue;
        }
        let tx = tx.clone();
        let spawned = std::thread::Builder::new()
            .name(format!("ce-scrape-{name}"))
            .spawn(move || {
                let section = (|| {
                    let mut client = HttpClient::connect_with(addr, scrape_config).ok()?;
                    let resp = client.get("/metrics").ok()?;
                    if resp.status != 200 {
                        return None;
                    }
                    Some(String::from_utf8_lossy(&resp.body).into_owned())
                })();
                let _ = tx.send((name, section));
            });
        if spawned.is_ok() {
            expected += 1;
        }
    }
    drop(tx);
    let deadline = Instant::now() + SCRAPE_DEADLINE;
    let mut sections: Vec<(String, String)> = Vec::with_capacity(expected);
    let mut received = 0usize;
    while received < expected {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            break;
        }
        match rx.recv_timeout(remaining) {
            Ok((name, Some(body))) => {
                sections.push((name, body));
                received += 1;
            }
            Ok((_, None)) => received += 1,
            Err(_) => break,
        }
    }
    let missing = (expected - received) as u64;
    if missing > 0 {
        FLEET_SCRAPE_TIMEOUTS.fetch_add(missing, Ordering::Relaxed);
        trace::event("scrape_timeout", "shard metrics scrape hit the fleet deadline");
    }
    // Deterministic section order regardless of which scrape won the race.
    sections.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::new();
    for (name, body) in &sections {
        out.push_str(&inject_shard_label(body, name));
    }
    out
}

/// Rewrites one shard's Prometheus text so every sample carries a
/// `shard="<escaped name>"` label. Comment lines (`# TYPE`, `# HELP`) are
/// dropped — repeated per-shard metadata would make the merged exposition
/// invalid.
fn inject_shard_label(body: &str, shard: &str) -> String {
    let label = format!("shard=\"{}\"", ce_telemetry::escape_label_value(shard));
    let mut out = String::with_capacity(body.len() + body.lines().count() * (label.len() + 2));
    for line in body.lines() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some(space) = line.rfind(' ') else { continue };
        let (series, value) = line.split_at(space);
        match series.find('{') {
            // `name{le="…"} v` → `name{shard="…",le="…"} v`
            Some(brace) => {
                out.push_str(&series[..=brace]);
                out.push_str(&label);
                if !series[brace + 1..].trim_start().starts_with('}') {
                    out.push(',');
                }
                out.push_str(&series[brace + 1..]);
            }
            // `name v` → `name{shard="…"} v`
            None => {
                out.push_str(series);
                out.push('{');
                out.push_str(&label);
                out.push('}');
            }
        }
        out.push_str(value);
        out.push('\n');
    }
    out
}

/// Mirrors router + fleet counters into the `ce-telemetry` registry (scraped
/// by `/metrics` when telemetry is enabled).
fn publish_metrics(router: &Router) {
    if !ce_telemetry::enabled() {
        return;
    }
    let stats = router.stats();
    ce_telemetry::gauge("cluster.requests").set(stats.requests as f64);
    ce_telemetry::gauge("cluster.served_primary").set(stats.served_primary as f64);
    ce_telemetry::gauge("cluster.served_failover").set(stats.served_failover as f64);
    ce_telemetry::gauge("cluster.leg_errors").set(stats.leg_errors as f64);
    ce_telemetry::gauge("cluster.pool_stale").set(stats.pool_stale as f64);
    ce_telemetry::gauge("cluster.leg_sheds").set(stats.leg_sheds as f64);
    ce_telemetry::gauge("cluster.exhausted").set(stats.exhausted as f64);
    ce_telemetry::gauge("cluster.deadline_exceeded").set(stats.deadline_exceeded as f64);
    ce_telemetry::gauge("cluster.hedges_fired").set(stats.hedges_fired as f64);
    ce_telemetry::gauge("cluster.hedge_wins").set(stats.hedge_wins as f64);
    ce_telemetry::gauge("cluster.hedge_cancelled").set(stats.hedge_cancelled as f64);
    ce_telemetry::gauge("cluster.truth_fanouts").set(stats.truth_fanouts as f64);
    ce_telemetry::gauge("cluster.truth_replicated").set(stats.truth_replicated as f64);
    ce_telemetry::gauge("cluster.fleet_scrape_timeouts")
        .set(FLEET_SCRAPE_TIMEOUTS.load(Ordering::Relaxed) as f64);
    for (name, lag) in router.truth_lag() {
        ce_telemetry::gauge(&format!("cluster.truth_lag.{name}")).set(lag as f64);
    }
    let fleet = router.fleet().stats();
    ce_telemetry::gauge("cluster.live_shards").set(router.fleet().live_count() as f64);
    ce_telemetry::gauge("cluster.ejections").set(fleet.ejections as f64);
    ce_telemetry::gauge("cluster.readmissions").set(fleet.readmissions as f64);
    ce_telemetry::gauge("cluster.probe_failed").set(fleet.probe_failed as f64);
}

/// Plain-text fallback for `/metrics` when telemetry is globally off: the
/// same counters, one `name value` per line.
fn metrics_text(router: &Router) -> String {
    let stats = router.stats();
    let fleet = router.fleet().stats();
    let mut out = String::with_capacity(512);
    for (name, value) in [
        ("cluster_requests", stats.requests),
        ("cluster_served_primary", stats.served_primary),
        ("cluster_served_failover", stats.served_failover),
        ("cluster_leg_errors", stats.leg_errors),
        ("cluster_pool_stale", stats.pool_stale),
        ("cluster_leg_sheds", stats.leg_sheds),
        ("cluster_exhausted", stats.exhausted),
        ("cluster_deadline_exceeded", stats.deadline_exceeded),
        ("cluster_hedges_fired", stats.hedges_fired),
        ("cluster_hedge_wins", stats.hedge_wins),
        ("cluster_hedge_cancelled", stats.hedge_cancelled),
        ("cluster_truth_fanouts", stats.truth_fanouts),
        ("cluster_truth_replicated", stats.truth_replicated),
        ("cluster_fleet_scrape_timeouts", FLEET_SCRAPE_TIMEOUTS.load(Ordering::Relaxed)),
        ("cluster_live_shards", router.fleet().live_count() as u64),
        ("cluster_ejections", fleet.ejections),
        ("cluster_readmissions", fleet.readmissions),
        ("cluster_probe_failed", fleet.probe_failed),
    ] {
        out.push_str(name);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    for (name, lag) in router.truth_lag() {
        out.push_str("cluster_truth_lag{shard=\"");
        out.push_str(&ce_telemetry::escape_label_value(&name));
        out.push_str("\"} ");
        out.push_str(&lag.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_server::HttpClient;

    /// A stand-in shard: answers /readyz and echoes predict bodies with a
    /// tag, so routing (not estimation) is what these tests exercise.
    fn stub_shard(tag: &'static str) -> HttpServer {
        HttpServer::bind(
            "127.0.0.1:0",
            ServerConfig {
                read_tick: Duration::from_millis(5),
                ..ServerConfig::default()
            },
            Arc::new(move |req: &Request| match (req.method, req.path()) {
                ("GET", "/readyz") => Response::text(200, "ready"),
                ("POST", p) if p.starts_with("/v1/predict") => {
                    let mut body = req.body.to_vec();
                    body.extend_from_slice(tag.as_bytes());
                    Response::json(200, body)
                }
                _ => Response::text(404, "nope"),
            }),
        )
        .expect("bind stub shard")
    }

    fn quick_health() -> HealthConfig {
        HealthConfig {
            probe_interval: Duration::from_millis(10),
            connect_timeout: Duration::from_millis(100),
            read_timeout: Duration::from_millis(200),
            fail_threshold: 2,
            recover_threshold: 2,
            ..HealthConfig::default()
        }
    }

    #[test]
    fn truth_ids_are_unique_nonzero_lowercase_hex() {
        let a = mint_truth_id();
        let b = mint_truth_id();
        assert_ne!(a, b, "sequential mints must differ");
        for id in [&a, &b] {
            assert_eq!(id.len(), 16);
            assert!(id.bytes().all(|c| matches!(c, b'0'..=b'9' | b'a'..=b'f')));
            assert_ne!(u64::from_str_radix(id, 16).unwrap(), 0);
        }
    }

    #[test]
    fn body_has_truths_probes_for_the_key() {
        assert!(body_has_truths(br#"{"features":[[1.0]],"truths":[2.0]}"#));
        assert!(!body_has_truths(br#"{"features":[[1.0]]}"#));
        assert!(!body_has_truths(b""));
    }

    /// A stub shard that also counts `/v1/observe` posts, for the
    /// replication fan-out test.
    fn counting_shard(
        tag: &'static str,
        observes: Arc<std::sync::atomic::AtomicU64>,
    ) -> HttpServer {
        HttpServer::bind(
            "127.0.0.1:0",
            ServerConfig {
                read_tick: Duration::from_millis(5),
                ..ServerConfig::default()
            },
            Arc::new(move |req: &Request| match (req.method, req.path()) {
                ("GET", "/readyz") => Response::text(200, "ready"),
                ("POST", "/v1/predict") => {
                    let mut body = req.body.to_vec();
                    body.extend_from_slice(tag.as_bytes());
                    Response::json(200, body)
                }
                ("POST", "/v1/observe") => {
                    observes.fetch_add(1, Ordering::Relaxed);
                    Response::json(200, "{\"observed\":1,\"deduped\":false}")
                }
                _ => Response::text(404, "nope"),
            }),
        )
        .expect("bind counting shard")
    }

    #[test]
    fn truths_fan_out_to_the_backup_replica_only() {
        let obs0 = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let obs1 = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let s0 = counting_shard("@0", Arc::clone(&obs0));
        let s1 = counting_shard("@1", Arc::clone(&obs1));
        let shards = vec![
            ("shard-0".to_string(), s0.local_addr()),
            ("shard-1".to_string(), s1.local_addr()),
        ];
        let handle = start_cluster_router(
            &shards,
            "127.0.0.1:0",
            ClusterRouterConfig {
                router: RouterConfig { replicas: 2, ..RouterConfig::default() },
                health: quick_health(),
                ..Default::default()
            },
        )
        .expect("bind router");
        let mut client = HttpClient::connect(handle.local_addr()).unwrap();
        // Truth-less predict: served, but no fan-out.
        let resp = client.post("/v1/predict", br#"{"features":[[1.0]]}"#).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            obs0.load(Ordering::Relaxed) + obs1.load(Ordering::Relaxed),
            0,
            "no truths, no fan-out"
        );
        // Truth-carrying predict: the serving shard absorbs via the predict
        // path, the *other* replica gets exactly one /v1/observe post.
        let body = br#"{"features":[[1.0]],"truths":[4.0]}"#;
        let resp = client.post("/v1/predict", body).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            obs0.load(Ordering::Relaxed) + obs1.load(Ordering::Relaxed),
            1,
            "exactly the non-serving replica is posted to"
        );
        let stats = handle.router_stats();
        assert_eq!(stats.truth_fanouts, 1);
        assert_eq!(stats.truth_replicated, 1);
        assert!(handle.router_stats().requests >= 2);
        assert!(
            handle.truth_lag().iter().all(|(_, lag)| *lag == 0),
            "healthy backups must not accrue lag"
        );
        handle.drain();
    }

    #[test]
    fn signature_is_stable_and_content_addressed() {
        let a = request_signature(b"{\"features\":[[1.0,2.0]]}");
        let b = request_signature(b"{\"features\":[[1.0,2.0]]}");
        let c = request_signature(b"{\"features\":[[1.0,2.5]]}");
        assert_eq!(a, b, "same bytes, same signature");
        assert_ne!(a, c, "different bytes, different signature");
    }

    /// Property sweep over generated (model, body) pairs: the placement
    /// key is deterministic, the bare path is bit-compatible with the PR 9
    /// content-addressed key, the model fold is exactly FNV-1a over
    /// `name ++ '/' ++ body` (so any implementation of the chain agrees),
    /// and distinct models separate identical bodies.
    #[test]
    fn placement_signature_is_deterministic_and_folds_the_model() {
        let bodies: Vec<Vec<u8>> = (0..32)
            .map(|i| format!("{{\"features\":[[{i}.0,{}.5]]}}", i * 7 % 13).into_bytes())
            .collect();
        let models = ["default", "mscn", "lw-nn", "a/b", "m"];
        for body in &bodies {
            assert_eq!(
                placement_signature(None, body),
                request_signature(body),
                "bare path must keep the PR 9 placement"
            );
            for model in models {
                let named = placement_signature(Some(model), body);
                assert_eq!(
                    named,
                    placement_signature(Some(model), body),
                    "placement must be a pure function"
                );
                let mut concat = model.as_bytes().to_vec();
                concat.push(b'/');
                concat.extend_from_slice(body);
                assert_eq!(
                    named,
                    fnv1a64(&concat),
                    "chained fold must equal FNV-1a of the concatenation"
                );
            }
            // Same body, different models → independent placement keys.
            let keys: std::collections::HashSet<u64> = models
                .iter()
                .map(|m| placement_signature(Some(m), body))
                .collect();
            assert_eq!(keys.len(), models.len(), "models must not collide on {body:?}");
        }
    }

    #[test]
    fn model_suffix_extracts_only_named_predicts() {
        assert_eq!(model_suffix("/v1/predict/mscn"), Some("mscn"));
        assert_eq!(model_suffix("/v1/predict/"), None, "empty segment");
        assert_eq!(model_suffix("/v1/predict"), None, "bare path");
        assert_eq!(model_suffix("/v1/observe/mscn"), None, "observe is not proxied");
    }

    #[test]
    fn named_predicts_pass_through_and_pin_per_model() {
        let s0 = stub_shard("@0");
        let s1 = stub_shard("@1");
        let shards = vec![
            ("shard-0".to_string(), s0.local_addr()),
            ("shard-1".to_string(), s1.local_addr()),
        ];
        let handle = start_cluster_router(
            &shards,
            "127.0.0.1:0",
            ClusterRouterConfig { health: quick_health(), ..Default::default() },
        )
        .expect("bind router");
        let mut client = HttpClient::connect(handle.local_addr()).unwrap();
        let body = br#"{"features":[[0.5]]}"#;
        // Named predicts forward (stub shards answer any predict path) and
        // pin: the same (model, body) repeatedly lands on one shard.
        let first = client.post("/v1/predict/mscn", body).unwrap();
        assert_eq!(first.status, 200);
        for _ in 0..5 {
            let again = client.post("/v1/predict/mscn", body).unwrap();
            assert_eq!(again.body, first.body, "named route must pin per (model, body)");
        }
        // Wrong method on a named route is 405, not a burned shard leg.
        assert_eq!(client.get("/v1/predict/mscn").unwrap().status, 405);
        handle.drain();
    }

    #[test]
    fn router_serves_local_endpoints_and_proxies_predict() {
        let s0 = stub_shard("@0");
        let s1 = stub_shard("@1");
        let shards = vec![
            ("shard-0".to_string(), s0.local_addr()),
            ("shard-1".to_string(), s1.local_addr()),
        ];
        let handle = start_cluster_router(
            &shards,
            "127.0.0.1:0",
            ClusterRouterConfig { health: quick_health(), ..Default::default() },
        )
        .expect("bind router");
        let mut client = HttpClient::connect(handle.local_addr()).unwrap();
        assert_eq!(client.get("/healthz").unwrap().status, 200);
        assert_eq!(client.get("/readyz").unwrap().status, 200);
        let metrics = client.get("/metrics").unwrap();
        assert_eq!(metrics.status, 200);
        assert!(String::from_utf8_lossy(&metrics.body).contains("cluster_requests"));
        assert_eq!(client.get("/nope").unwrap().status, 404);
        assert_eq!(client.post("/healthz", b"{}").unwrap().status, 405);
        // Proxied predict: body passes through, tagged by whichever shard
        // owns the signature — and repeatably by the *same* shard.
        let body = br#"{"features":[[0.5]]}"#;
        let first = client.post("/v1/predict", body).unwrap();
        assert_eq!(first.status, 200);
        let tag = &first.body[first.body.len() - 2..];
        assert!(tag == b"@0" || tag == b"@1");
        for _ in 0..5 {
            let again = client.post("/v1/predict", body).unwrap();
            assert_eq!(again.body, first.body, "same signature must pin to one shard");
        }
        handle.drain();
    }

    #[test]
    fn killing_a_shard_fails_over_and_readyz_tracks_the_fleet() {
        let s0 = stub_shard("@0");
        let s1 = stub_shard("@1");
        let shards = vec![
            ("shard-0".to_string(), s0.local_addr()),
            ("shard-1".to_string(), s1.local_addr()),
        ];
        let handle = start_cluster_router(
            &shards,
            "127.0.0.1:0",
            ClusterRouterConfig { health: quick_health(), ..Default::default() },
        )
        .expect("bind router");
        let mut client = HttpClient::connect(handle.local_addr()).unwrap();
        // Find a body owned by shard 0 so its death forces a failover.
        let mut owned_by_0 = None;
        for i in 0..64 {
            let body = format!("{{\"features\":[[{i}.0]]}}").into_bytes();
            let resp = client.post("/v1/predict", &body).unwrap();
            if resp.body.ends_with(b"@0") {
                owned_by_0 = Some(body);
                break;
            }
        }
        let body = owned_by_0.expect("some signature must hash to shard 0");
        s0.shutdown();
        // The very next request fails over within the same call (no health
        // round-trip needed) and is answered by shard 1.
        let resp = client.post("/v1/predict", &body).unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.body.ends_with(b"@1"), "failover must land on the live shard");
        assert!(handle.router_stats().served_failover >= 1);
        // The prober ejects shard 0 shortly after (2 failures @ 10ms).
        let deadline = std::time::Instant::now() + Duration::from_secs(3);
        while handle.fleet().is_live("shard-0") {
            assert!(std::time::Instant::now() < deadline, "ejection never happened");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(handle.fleet_stats().ejections, 1);
        // Still ready with one live shard; drain flips readiness.
        assert_eq!(client.get("/readyz").unwrap().status, 200);
        handle.drain();
    }
}
