//! # cardest — prediction intervals for learned cardinality estimation
//!
//! A full Rust reproduction of *"Prediction Intervals for Learned Cardinality
//! Estimation: An Experimental Evaluation"* (ICDE 2022): four
//! distribution-free prediction-interval methods wrapped around three learned
//! cardinality estimators, evaluated over synthetic single-table and
//! star-join workloads, down to the Postgres plan-quality experiment.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`conformal`] — the PI framework (the paper's subject)
//! * [`estimators`] — MSCN, Naru, LW-NN, and the AVI baseline
//! * [`storage`] — columnar tables with exact COUNT(*) evaluation
//! * [`datagen`] — synthetic DMV/Census/Forest/Power and star schemas
//! * [`query`] — workload generation and splits
//! * [`optimizer`] — the mini join optimizer for the Table I experiment
//! * [`nn`], [`gbdt`] — the learning substrates
//! * [`pipeline`] — end-to-end helpers used by examples and experiments
//!
//! ## Quickstart
//!
//! ```
//! use cardest::pipeline::{
//!     run_split_conformal, train_mscn, ScoreKind, SingleTableBench, SplitSpec,
//! };
//! use cardest::query::GeneratorConfig;
//!
//! let table = cardest::datagen::dmv(2_000, 7);
//! let bench = SingleTableBench::prepare(
//!     table, 300, &GeneratorConfig::default(), SplitSpec::default(), 7,
//! );
//! let mscn = train_mscn(&bench.feat, &bench.train, 20, 7);
//! let result = run_split_conformal(
//!     mscn, ScoreKind::Residual, &bench.calib, &bench.test, 0.1, 1e-7,
//! );
//! assert!(result.report.coverage >= 0.8);
//! ```

pub mod pipeline;
pub mod router;
pub mod serve;
pub mod tenant;

pub use ce_conformal as conformal;
pub use ce_server as server;
pub use ce_datagen as datagen;
pub use ce_estimators as estimators;
pub use ce_gbdt as gbdt;
pub use ce_nn as nn;
pub use ce_optimizer as optimizer;
pub use ce_query as query;
pub use ce_storage as storage;
