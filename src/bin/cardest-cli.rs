//! `cardest-cli` — an interactive demo of prediction intervals over learned
//! cardinality estimation.
//!
//! ```text
//! cargo run --release --bin cardest-cli -- --dataset dmv --rows 20000 --model mscn
//! ```
//!
//! Builds the dataset, trains the chosen model, calibrates split conformal
//! and locally weighted conformal wrappers, then reads textual queries from
//! stdin (`make = 3 AND unladen_weight in 10..40`) and answers each with the
//! exact count, the model estimate, and both prediction intervals.
//!
//! The `stats` subcommand instead serves a fault-injected stream through a
//! [`ResilientService`] fallback chain with telemetry enabled, then dumps
//! resilience counters, per-position breaker states, the bounded
//! `last_errors` ring buffer, the self-healing layer's remediation history
//! (last alarm, last recalibration outcome, rollback count), and the metrics
//! registry:
//!
//! ```text
//! cargo run --release --bin cardest-cli -- stats --format text
//! cargo run --release --bin cardest-cli -- stats --format prom
//! ```
//!
//! The `serve` subcommand runs a long-lived prequential serving loop over a
//! [`SelfHealingService`] with periodic durable checkpoints. `SIGTERM` /
//! `SIGINT` trigger a graceful shutdown (final checkpoint, then summary), and
//! `--resume` restores from the checkpoint file so a killed server picks up
//! bit-for-bit where it left off:
//!
//! ```text
//! cargo run --release --bin cardest-cli -- serve --stream 2000 --checkpoint-every 200
//! cargo run --release --bin cardest-cli -- serve --resume
//! ```

use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

use cardest::conformal::{
    install_quiet_chaos_hook, read_checkpoint, write_checkpoint, AbsoluteResidual, BreakerState,
    ChaosConfig, ChaosRegressor, HealConfig, HealEvent, HealState, OnlineConformal, PiEstimator,
    PiServiceConfig, PredictionInterval, Regressor, ResilientService, ScoreFunction,
    SelfHealingService,
};
use cardest::estimators::{AviModel, SamplingEstimator};
use cardest::pipeline::{
    run_locally_weighted, run_split_conformal, train_lwnn, train_mscn, train_naru,
    ScoreKind, SingleTableBench, SplitSpec,
};
use cardest::query::{parse_query, GeneratorConfig};
use cardest::serve::{HttpServeConfig, ServeEngine};

struct Options {
    dataset: String,
    rows: usize,
    model: String,
    alpha: f64,
    queries: usize,
}

fn parse_args() -> Options {
    let mut opts = Options {
        dataset: "dmv".into(),
        rows: 20_000,
        model: "mscn".into(),
        alpha: 0.1,
        queries: 2_000,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| {
                    eprintln!("missing value for {}", args[i]);
                    std::process::exit(2);
                })
                .clone()
        };
        match args[i].as_str() {
            "--dataset" => opts.dataset = value(i),
            "--rows" => opts.rows = value(i).parse().expect("--rows takes a number"),
            "--model" => opts.model = value(i),
            "--alpha" => opts.alpha = value(i).parse().expect("--alpha takes a float"),
            "--queries" => {
                opts.queries = value(i).parse().expect("--queries takes a number")
            }
            "--help" | "-h" => {
                println!(
                    "usage: cardest-cli [--dataset dmv|census|forest|power] \
                     [--rows N] [--model mscn|lwnn|naru] [--alpha A] [--queries N]\n\
                     \x20      cardest-cli stats [--dataset D] [--rows N] [--stream N] \
                     [--format text|json|prom]\n\
                     \x20      cardest-cli serve [--dataset D] [--rows N] [--stream N] \
                     [--checkpoint PATH] [--checkpoint-every N] [--drift-at N] [--resume]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    opts
}

/// Options for the `stats` subcommand.
struct StatsOptions {
    dataset: String,
    rows: usize,
    queries: usize,
    stream: usize,
    format: String,
}

fn parse_stats_args(args: &[String]) -> StatsOptions {
    let mut opts = StatsOptions {
        dataset: "dmv".into(),
        rows: 10_000,
        queries: 800,
        stream: 600,
        format: "text".into(),
    };
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| {
                    eprintln!("missing value for {}", args[i]);
                    std::process::exit(2);
                })
                .clone()
        };
        match args[i].as_str() {
            "--dataset" => opts.dataset = value(i),
            "--rows" => opts.rows = value(i).parse().expect("--rows takes a number"),
            "--queries" => {
                opts.queries = value(i).parse().expect("--queries takes a number")
            }
            "--stream" => opts.stream = value(i).parse().expect("--stream takes a number"),
            "--format" => opts.format = value(i),
            "--help" | "-h" => {
                println!(
                    "usage: cardest-cli stats [--dataset dmv|census|forest|power] \
                     [--rows N] [--queries N] [--stream N] [--format text|json|prom]\n\n\
                     Serves a chaos-injected query stream (20% NaN, 5% panic primary) \
                     through the resilient fallback chain with telemetry enabled, then \
                     prints resilience stats, breaker states, recent errors, and the \
                     metrics registry in the chosen format."
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown stats flag {other} (try stats --help)");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    if !matches!(opts.format.as_str(), "text" | "json" | "prom") {
        eprintln!("unknown --format `{}` (text|json|prom)", opts.format);
        std::process::exit(2);
    }
    opts
}

/// `cardest-cli stats`: build the MSCN→AVI→sampling fallback chain with a
/// chaos-wrapped primary, serve a prequential stream with telemetry on, and
/// dump the observability surface (resilience counters, breaker states,
/// bounded error ring, metrics registry).
fn run_stats(args: &[String]) {
    let opts = parse_stats_args(args);
    let seed = 42;
    let alpha = 0.1;
    let Some(table) = cardest::datagen::by_name(&opts.dataset, opts.rows, seed) else {
        eprintln!("unknown dataset `{}` (dmv|census|forest|power)", opts.dataset);
        std::process::exit(2);
    };
    eprintln!(
        "stats: dataset {} ({} rows), {} labeled queries, stream {}",
        opts.dataset,
        table.n_rows(),
        opts.queries,
        opts.stream
    );
    let bench = SingleTableBench::prepare(
        table,
        opts.queries,
        &GeneratorConfig::low_selectivity(),
        SplitSpec::default(),
        seed,
    );
    let floor = 1.0 / bench.table.n_rows() as f64;

    eprintln!("training chain: chaos(mscn) -> avi -> sampling ...");
    install_quiet_chaos_hook();
    let mscn = train_mscn(&bench.feat, &bench.train, 10, seed);
    let heal_model = mscn.clone();
    let chaos = ChaosConfig {
        nan_rate: 0.2,
        panic_rate: 0.05,
        warmup_calls: bench.calib.len() as u64,
        seed,
        ..Default::default()
    };
    let primary: Box<dyn PiEstimator> = Box::new(OnlineConformal::new(
        ChaosRegressor::new(mscn, chaos),
        AbsoluteResidual,
        &bench.calib.x,
        &bench.calib.y,
        alpha,
    ));
    let avi = AviModel::build(&bench.table, floor);
    let sampling =
        SamplingEstimator::build(&bench.table, (opts.rows / 100).max(50), seed + 7, floor);
    let mut service = ResilientService::new(primary)
        .with_fallback(Box::new(OnlineConformal::new(
            avi,
            AbsoluteResidual,
            &bench.calib.x,
            &bench.calib.y,
            alpha,
        )))
        .with_fallback(Box::new(OnlineConformal::new(
            sampling,
            AbsoluteResidual,
            &bench.calib.x,
            &bench.calib.y,
            alpha,
        )))
        .with_expected_dims(bench.test.x[0].len());

    ce_telemetry::set_enabled(true);
    eprintln!("serving {} queries prequentially under chaos ...", opts.stream);
    for qi in 0..opts.stream {
        let i = qi % bench.test.len();
        let x = &bench.test.x[i];
        let _iv = service
            .interval(x)
            .unwrap_or_else(|_| PredictionInterval::new(f64::NEG_INFINITY, f64::INFINITY));
        service.observe(x, bench.test.y[i]);
    }
    // Mirror the counters into the registry so every export format sees them.
    service.publish_telemetry();

    // Self-healing remediation demo: a calm warm-up, then a drifted phase
    // whose alarm drives the recalibration state machine. With telemetry
    // enabled the heal.* gauges and counters land in the registry, so the
    // json/prom exports carry the remediation surface too.
    eprintln!("streaming drift through the self-healing layer ...");
    let mut healing = SelfHealingService::new(
        heal_model,
        AbsoluteResidual,
        &bench.calib.x,
        &bench.calib.y,
        PiServiceConfig { alpha, ..Default::default() },
        HealConfig { min_history: 60, cooldown_base: 100, ..Default::default() },
    );
    for qi in 0..opts.stream {
        let i = qi % bench.test.len();
        let drift = if qi >= opts.stream / 2 { 0.5 } else { 0.0 };
        healing.observe(&bench.test.x[i], bench.test.y[i] + drift);
    }

    match opts.format.as_str() {
        "json" => println!("{}", ce_telemetry::global().to_json()),
        "prom" => print!("{}", ce_telemetry::global().to_prometheus()),
        _ => {
            print_stats_text(&service);
            print_remediation_text(&healing);
        }
    }
    ce_telemetry::set_enabled(false);
}

/// Human-readable dump of the self-healing layer's remediation history.
fn print_remediation_text<M, S>(svc: &SelfHealingService<M, S>)
where
    M: Regressor + Clone,
    S: ScoreFunction + Clone,
{
    let state = match svc.state() {
        HealState::Healthy => "healthy",
        HealState::Recalibrating => "recalibrating",
        HealState::RolledBack => "rolled-back (cooldown)",
    };
    println!("\nself-healing remediation ({} observations)", svc.observations());
    println!("  state ............... {state}");
    println!("  promotions .......... {}", svc.promotion_count());
    println!("  rollbacks ........... {}", svc.rollback_count());
    match svc.last_alarm() {
        Some(HealEvent::AlarmReceived { at, coverage }) => {
            println!("  last alarm .......... obs {at} (rolling coverage {coverage:.3})");
        }
        _ => println!("  last alarm .......... none"),
    }
    match svc.last_outcome() {
        Some(HealEvent::Promoted { at, shadow_coverage, candidate_delta }) => println!(
            "  last outcome ........ promoted at obs {at} \
             (shadow coverage {shadow_coverage:.3}, delta {candidate_delta:.5})"
        ),
        Some(HealEvent::RolledBack { at, reason, shadow_coverage, cooldown_until }) => println!(
            "  last outcome ........ rolled back at obs {at} ({reason}, \
             shadow coverage {shadow_coverage:.3}, cooldown until obs {cooldown_until})"
        ),
        _ => println!("  last outcome ........ none"),
    }
    println!("  history ({} events, oldest first):", svc.history().len());
    for event in svc.history() {
        match event {
            HealEvent::AlarmReceived { at, coverage } => {
                println!("    obs {at}: alarm (coverage {coverage:.3})");
            }
            HealEvent::Promoted { at, shadow_coverage, .. } => {
                println!("    obs {at}: promoted (shadow coverage {shadow_coverage:.3})");
            }
            HealEvent::RolledBack { at, reason, .. } => {
                println!("    obs {at}: rolled back ({reason})");
            }
        }
    }
}

/// Options for the `serve` subcommand.
#[cfg_attr(test, derive(Debug))]
struct ServeOptions {
    dataset: String,
    rows: usize,
    queries: usize,
    stream: usize,
    checkpoint: PathBuf,
    every: usize,
    drift_at: Option<usize>,
    resume: bool,
    /// When set, serve over HTTP on this address instead of the prequential
    /// text loop.
    listen: Option<String>,
    workers: usize,
    queue: usize,
    max_batch: usize,
    batch_window_us: u64,
    /// Server read tick in milliseconds (HTTP mode): how fast drains and
    /// shutdowns propagate in the tick-polled fallback. Cluster shards keep
    /// this low so the router's health probes and drain turn around
    /// promptly. Ignored in the (default) event-driven mode.
    read_tick_ms: u64,
    /// Readiness-loop poller threads (HTTP mode). 1 multiplexes thousands
    /// of idle keep-alive connections; 0 forces the tick-polled fallback.
    pollers: usize,
    /// Couple CoverageMonitor alarms to the Drifted-mode switch.
    alarm_coupled: bool,
    /// Trace head-sampling rate (HTTP mode): trace one request in N. 0
    /// disables tracing, 1 traces everything; anomalies trace everything
    /// for a window regardless.
    trace_sample: u64,
    /// Additional model names to register besides `default` (HTTP mode).
    /// Each gets its own self-healing engine over the shared trained model
    /// and its own checkpoint file at `{checkpoint}.{name}`.
    models: Vec<String>,
    /// Per-tenant token-bucket refill rate in requests/second (HTTP mode).
    /// Unset disables rate limiting.
    tenant_rate: Option<f64>,
    /// Token-bucket burst capacity (only meaningful with --tenant-rate).
    tenant_burst: f64,
    /// Interval-cache capacity in entries (HTTP mode); 0 disables caching.
    cache_cap: usize,
}

/// Outcome of parsing `serve` arguments: run, or print usage and stop.
/// One short-lived value per invocation, so the size skew is harmless.
#[cfg_attr(test, derive(Debug))]
#[allow(clippy::large_enum_variant)]
enum ServeArgs {
    Help,
    Run(ServeOptions),
}

const SERVE_USAGE: &str = "usage: cardest-cli serve [--dataset dmv|census|forest|power] \
[--rows N] [--queries N] [--stream N] [--checkpoint PATH] \
[--checkpoint-every N] [--drift-at N] [--resume] [--listen ADDR] \
[--workers N] [--queue N] [--max-batch N] [--batch-window-us N] \
[--read-tick-ms N] [--pollers N] [--trace-sample N] [--alarm-coupled] \
[--models a,b,...] [--tenant-rate R] [--tenant-burst B] [--cache-cap N]\n\n\
Runs the self-healing PI service with periodic durable checkpoints. \
Without --listen: a prequential text loop whose truths shift by +0.5 from \
--drift-at (default stream/2) onward so the drift alarm and shadow-validated \
recalibration fire mid-run. With --listen ADDR (e.g. 127.0.0.1:8080): a \
network HTTP server exposing POST /v1/predict[/{model}], \
POST /v1/observe[/{model}], POST /v1/admin/models/{model} (hot reload from a \
posted checkpoint, shadow-validated with rollback), GET /metrics, /healthz \
and /readyz, with micro-batched admission-controlled serving through the \
full resilient fallback chain. --models registers extra named engines (each \
checkpointing to {checkpoint}.{name}); --tenant-rate/--tenant-burst \
rate-limit per x-ce-tenant header; --cache-cap enables the epoch-keyed \
interval cache. SIGTERM/SIGINT checkpoint and exit gracefully; --resume \
restores (chain breakers included) and continues bit-for-bit.";

/// Pure argument parser for `serve` — every problem (unknown flag, missing
/// or malformed value) is an `Err`, never a warning-and-continue, so a typo
/// cannot silently drop an option.
fn parse_serve_args(args: &[String]) -> Result<ServeArgs, String> {
    let mut opts = ServeOptions {
        dataset: "dmv".into(),
        rows: 10_000,
        queries: 800,
        stream: 2_000,
        checkpoint: PathBuf::from("cardest-serve.ckpt"),
        every: 200,
        drift_at: None,
        resume: false,
        listen: None,
        workers: 4,
        queue: 1024,
        max_batch: 64,
        // Zero matches HttpServeConfig::default(): the batcher's inline
        // fast path plus busy-runner coalescing beat a fixed linger window
        // at every measured concurrency.
        batch_window_us: 0,
        read_tick_ms: 10,
        pollers: 1,
        alarm_coupled: false,
        trace_sample: ce_telemetry::trace::DEFAULT_SAMPLE_RATE,
        models: Vec::new(),
        tenant_rate: None,
        tenant_burst: 8.0,
        cache_cap: 0,
    };
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> Result<String, String> {
            args.get(i + 1).cloned().ok_or_else(|| format!("missing value for {}", args[i]))
        };
        fn number<T: std::str::FromStr>(flag: &str, raw: String) -> Result<T, String> {
            raw.parse().map_err(|_| format!("{flag} takes a number, got `{raw}`"))
        }
        match args[i].as_str() {
            "--dataset" => opts.dataset = value(i)?,
            "--rows" => opts.rows = number("--rows", value(i)?)?,
            "--queries" => opts.queries = number("--queries", value(i)?)?,
            "--stream" => opts.stream = number("--stream", value(i)?)?,
            "--checkpoint" => opts.checkpoint = PathBuf::from(value(i)?),
            "--checkpoint-every" => opts.every = number("--checkpoint-every", value(i)?)?,
            "--drift-at" => opts.drift_at = Some(number("--drift-at", value(i)?)?),
            "--listen" => opts.listen = Some(value(i)?),
            "--workers" => opts.workers = number("--workers", value(i)?)?,
            "--queue" => opts.queue = number("--queue", value(i)?)?,
            "--max-batch" => opts.max_batch = number("--max-batch", value(i)?)?,
            "--batch-window-us" => {
                opts.batch_window_us = number("--batch-window-us", value(i)?)?
            }
            "--read-tick-ms" => opts.read_tick_ms = number("--read-tick-ms", value(i)?)?,
            "--pollers" => opts.pollers = number("--pollers", value(i)?)?,
            "--trace-sample" => opts.trace_sample = number("--trace-sample", value(i)?)?,
            "--models" => {
                let raw = value(i)?;
                let mut names = Vec::new();
                for name in raw.split(',') {
                    let name = name.trim();
                    if name.is_empty() {
                        return Err("--models names must be non-empty".to_string());
                    }
                    if name.contains('/') || name.contains(char::is_whitespace) {
                        return Err(format!(
                            "--models name `{name}` must not contain `/` or whitespace \
                             (it becomes a URL path segment)"
                        ));
                    }
                    if !names.iter().any(|n| n == name) {
                        names.push(name.to_string());
                    }
                }
                opts.models = names;
            }
            "--tenant-rate" => {
                opts.tenant_rate = Some(number("--tenant-rate", value(i)?)?)
            }
            "--tenant-burst" => {
                opts.tenant_burst = number("--tenant-burst", value(i)?)?
            }
            "--cache-cap" => opts.cache_cap = number("--cache-cap", value(i)?)?,
            "--resume" => {
                opts.resume = true;
                i += 1;
                continue;
            }
            "--alarm-coupled" => {
                opts.alarm_coupled = true;
                i += 1;
                continue;
            }
            "--help" | "-h" => return Ok(ServeArgs::Help),
            other => return Err(format!("unknown serve flag {other} (try serve --help)")),
        }
        i += 2;
    }
    if opts.every == 0 {
        return Err("--checkpoint-every must be at least 1".to_string());
    }
    if opts.workers == 0 {
        return Err("--workers must be at least 1".to_string());
    }
    if opts.max_batch == 0 {
        return Err("--max-batch must be at least 1".to_string());
    }
    if opts.read_tick_ms == 0 {
        return Err("--read-tick-ms must be at least 1".to_string());
    }
    if let Some(rate) = opts.tenant_rate {
        if !rate.is_finite() || rate <= 0.0 {
            return Err("--tenant-rate must be a positive number".to_string());
        }
    }
    if !opts.tenant_burst.is_finite() || opts.tenant_burst < 1.0 {
        return Err("--tenant-burst must be at least 1".to_string());
    }
    Ok(ServeArgs::Run(opts))
}

/// Set by the signal handler; the serve loop polls it between observations.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    // Minimal libc-free signal hookup: `signal(2)` is in every unix libc the
    // binary already links against. The handler only touches an atomic,
    // which is async-signal-safe.
    extern "C" fn request_shutdown(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, request_shutdown);
        signal(SIGTERM, request_shutdown);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

/// `cardest-cli serve`: a long-lived loop over the [`SelfHealingService`]
/// with periodic durable checkpoints, graceful signal shutdown, and
/// bit-for-bit `--resume`. Without `--listen`: a prequential text loop with
/// drift injection. With `--listen ADDR`: a network HTTP server through the
/// full resilient chain (breaker snapshots ride the checkpoint both ways).
fn run_serve(args: &[String]) {
    let opts = match parse_serve_args(args) {
        Ok(ServeArgs::Help) => {
            println!("{SERVE_USAGE}");
            return;
        }
        Ok(ServeArgs::Run(opts)) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let seed = 42;
    let alpha = 0.1;
    install_signal_handlers();
    let Some(table) = cardest::datagen::by_name(&opts.dataset, opts.rows, seed) else {
        eprintln!("unknown dataset `{}` (dmv|census|forest|power)", opts.dataset);
        std::process::exit(2);
    };
    eprintln!(
        "serve: dataset {} ({} rows), stream {}, checkpoint {} every {} obs",
        opts.dataset,
        table.n_rows(),
        opts.stream,
        opts.checkpoint.display(),
        opts.every,
    );
    let bench = SingleTableBench::prepare(
        table,
        opts.queries,
        &GeneratorConfig::low_selectivity(),
        SplitSpec::default(),
        seed,
    );
    // The model is retrained deterministically from the same seed on every
    // start; only the (cheap, mutable) calibration state lives in the
    // checkpoint file.
    eprintln!("training mscn ...");
    let model = train_mscn(&bench.feat, &bench.train, 10, seed);
    let drift_at = opts.drift_at.unwrap_or(opts.stream / 2);

    let fresh = |model| {
        SelfHealingService::new(
            model,
            AbsoluteResidual,
            &bench.calib.x,
            &bench.calib.y,
            PiServiceConfig {
                alpha,
                couple_coverage_alarm: opts.alarm_coupled,
                ..Default::default()
            },
            HealConfig { min_history: 60, cooldown_base: 100, ..Default::default() },
        )
    };
    // Load the checkpoint once and keep the breaker snapshots aside: the
    // healing restore consumes the checkpoint, but the HTTP path still needs
    // the chain half afterwards.
    let loaded = if opts.resume && opts.checkpoint.exists() {
        match read_checkpoint(&opts.checkpoint) {
            Ok(ckpt) => Some(ckpt),
            Err(e) => {
                eprintln!("checkpoint unusable ({e}); cold-starting fresh");
                None
            }
        }
    } else {
        if opts.resume {
            eprintln!("no checkpoint at {}; cold-starting fresh", opts.checkpoint.display());
        }
        None
    };
    let saved_breakers = loaded.as_ref().map(|c| c.breakers.clone()).unwrap_or_default();
    let mut svc = match loaded {
        Some(ckpt) => {
            match SelfHealingService::restore(model.clone(), AbsoluteResidual, ckpt) {
                Ok(svc) => {
                    eprintln!(
                        "resumed from {} at observation {}",
                        opts.checkpoint.display(),
                        svc.observations()
                    );
                    svc
                }
                Err(e) => {
                    eprintln!("checkpoint unusable ({e}); cold-starting fresh");
                    fresh(model.clone())
                }
            }
        }
        None => fresh(model.clone()),
    };

    if let Some(listen) = &opts.listen {
        run_serve_http(listen, &opts, svc, saved_breakers, model, &bench, seed, alpha);
        return;
    }

    let start = svc.observations() as usize;
    if start >= opts.stream {
        eprintln!("checkpoint already at observation {start} >= --stream {}; done", opts.stream);
    }
    let mut served = 0usize;
    let mut covered = 0usize;
    for qi in start..opts.stream {
        if SHUTDOWN.load(Ordering::SeqCst) {
            eprintln!("shutdown signal received at observation {qi}");
            break;
        }
        let i = qi % bench.test.len();
        let x = &bench.test.x[i];
        let drift = if qi >= drift_at { 0.5 } else { 0.0 };
        let y = bench.test.y[i] + drift;
        if svc.interval(x).contains(y) {
            covered += 1;
        }
        served += 1;
        svc.observe(x, y);
        if (qi + 1) % opts.every == 0 {
            checkpoint_now(&mut svc, &opts.checkpoint, "periodic");
        }
    }
    checkpoint_now(&mut svc, &opts.checkpoint, "final");
    if served > 0 {
        println!(
            "served {served} observations this run, empirical coverage {:.3}",
            covered as f64 / served as f64
        );
    }
    print_remediation_text(&svc);
}

/// The HTTP serving mode: a multi-tenant [`ModelRegistry`] (DESIGN.md §15)
/// whose `default` model is the resumed self-healing service behind a
/// resilient AVI/sampling fallback chain, plus one independent engine per
/// `--models` name (each with its own `{checkpoint}.{name}` file). Serves
/// `POST /v1/predict[/{model}]`, `POST /v1/observe[/{model}]`, the hot
/// reload admin route, and `GET /metrics` until SIGTERM/SIGINT,
/// checkpointing every model's full chain every `--checkpoint-every`
/// observations and once more on drain.
#[allow(clippy::too_many_arguments)]
fn run_serve_http<M>(
    listen: &str,
    opts: &ServeOptions,
    svc: SelfHealingService<M, AbsoluteResidual>,
    saved_breakers: Vec<cardest::conformal::BreakerSnapshot>,
    model: M,
    bench: &SingleTableBench,
    seed: u64,
    alpha: f64,
) where
    M: Regressor + Clone + Send + Sync + 'static,
{
    use cardest::tenant::{start_registry_server, ModelRegistry, RegistryTuning, DEFAULT_MODEL};

    let floor = 1.0 / bench.table.n_rows() as f64;
    let dims = bench.calib.x.first().map(Vec::len).unwrap_or(0);
    eprintln!("building fallback chain: self-healing -> avi -> sampling ...");
    let avi = AviModel::build(&bench.table, floor);
    let sampling =
        SamplingEstimator::build(&bench.table, (opts.rows / 100).max(50), seed + 7, floor);
    // The fallback chain is rebuilt per engine (extra models, hot reloads):
    // the heavy parts (AVI histograms, the row sample) are built once above
    // and cloned; only the cheap conformal wrappers are fresh each time.
    let calib_x = bench.calib.x.clone();
    let calib_y = bench.calib.y.clone();
    let make_fallbacks: std::sync::Arc<dyn Fn() -> Vec<Box<dyn PiEstimator>> + Send + Sync> = {
        let (avi, sampling) = (avi, sampling);
        let (calib_x, calib_y) = (calib_x.clone(), calib_y.clone());
        std::sync::Arc::new(move || {
            vec![
                Box::new(OnlineConformal::new(
                    avi.clone(),
                    AbsoluteResidual,
                    &calib_x,
                    &calib_y,
                    alpha,
                )) as Box<dyn PiEstimator>,
                Box::new(OnlineConformal::new(
                    sampling.clone(),
                    AbsoluteResidual,
                    &calib_x,
                    &calib_y,
                    alpha,
                )),
            ]
        })
    };
    let engine = std::sync::Arc::new(ServeEngine::new(svc, make_fallbacks(), dims));
    if !saved_breakers.is_empty() {
        match engine.restore_breakers(&saved_breakers) {
            Ok(()) => eprintln!("restored {} breaker snapshots", saved_breakers.len()),
            Err(e) => eprintln!("breaker snapshots not restored ({e}); starting closed"),
        }
    }
    ce_telemetry::set_enabled(true);
    ce_telemetry::trace::set_sample_rate(opts.trace_sample);
    let http_config = HttpServeConfig {
        workers: opts.workers,
        conn_queue: opts.queue.max(16),
        queue_cap: opts.queue,
        max_batch: opts.max_batch,
        batch_window: std::time::Duration::from_micros(opts.batch_window_us),
        read_tick: std::time::Duration::from_millis(opts.read_tick_ms),
        pollers: opts.pollers,
        ..HttpServeConfig::default()
    };
    let mut tuning = RegistryTuning::from_http(&http_config);
    tuning.cache_entries = opts.cache_cap;
    // The reload factory marries a posted checkpoint to the shared trained
    // model and a fresh fallback chain — the same recipe --resume uses.
    let mut registry = ModelRegistry::new(tuning).with_factory(Box::new({
        let model = model.clone();
        let make_fallbacks = std::sync::Arc::clone(&make_fallbacks);
        move |ckpt: cardest::conformal::Checkpoint| {
            let breakers = ckpt.breakers.clone();
            let svc = SelfHealingService::restore(model.clone(), AbsoluteResidual, ckpt)?;
            let engine = ServeEngine::new(svc, make_fallbacks(), dims);
            engine.restore_breakers(&breakers)?;
            Ok(engine)
        }
    }));
    if let Some(rate) = opts.tenant_rate {
        let Some(limit) = cardest::server::RateLimit::new(rate, opts.tenant_burst) else {
            eprintln!("invalid --tenant-rate/--tenant-burst ({rate}/{})", opts.tenant_burst);
            std::process::exit(2);
        };
        registry = registry.with_limiter(limit);
        eprintln!("tenant rate limiting: {rate}/s per tenant, burst {}", opts.tenant_burst);
    }
    if opts.cache_cap > 0 {
        eprintln!("interval cache: {} entries (epoch-keyed)", opts.cache_cap);
    }
    let registry = std::sync::Arc::new(registry);
    // Checkpointing goes through the registry entries, not the construction
    // Arcs: after a hot reload the entry points at the new engine, and that
    // is the state worth persisting.
    let mut entries = vec![(
        opts.checkpoint.clone(),
        registry.register_shared(DEFAULT_MODEL, std::sync::Arc::clone(&engine)),
    )];
    let fresh_model = |m: M| {
        SelfHealingService::new(
            m,
            AbsoluteResidual,
            &calib_x,
            &calib_y,
            PiServiceConfig {
                alpha,
                couple_coverage_alarm: opts.alarm_coupled,
                ..Default::default()
            },
            HealConfig { min_history: 60, cooldown_base: 100, ..Default::default() },
        )
    };
    for name in &opts.models {
        if name == DEFAULT_MODEL {
            continue;
        }
        let path = PathBuf::from(format!("{}.{name}", opts.checkpoint.display()));
        let loaded = if opts.resume && path.exists() {
            match read_checkpoint(&path) {
                Ok(ckpt) => Some(ckpt),
                Err(e) => {
                    eprintln!("model {name}: checkpoint unusable ({e}); cold-starting");
                    None
                }
            }
        } else {
            None
        };
        let breakers = loaded.as_ref().map(|c| c.breakers.clone()).unwrap_or_default();
        let svc_m = match loaded {
            Some(ckpt) => {
                match SelfHealingService::restore(model.clone(), AbsoluteResidual, ckpt) {
                    Ok(svc) => {
                        eprintln!(
                            "model {name}: resumed from {} at observation {}",
                            path.display(),
                            svc.observations()
                        );
                        svc
                    }
                    Err(e) => {
                        eprintln!("model {name}: checkpoint unusable ({e}); cold-starting");
                        fresh_model(model.clone())
                    }
                }
            }
            None => fresh_model(model.clone()),
        };
        let engine_m = ServeEngine::new(svc_m, make_fallbacks(), dims);
        if !breakers.is_empty() {
            if let Err(e) = engine_m.restore_breakers(&breakers) {
                eprintln!("model {name}: breaker snapshots not restored ({e})");
            }
        }
        entries.push((path, registry.register(name, engine_m)));
    }
    let handle = match start_registry_server(std::sync::Arc::clone(&registry), listen, http_config)
    {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("cannot bind {listen}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "listening on http://{} (workers {}, queue {}, max-batch {}, window {}us, models: {})",
        handle.local_addr(),
        opts.workers,
        opts.queue,
        opts.max_batch,
        opts.batch_window_us,
        registry.names().join(", "),
    );
    eprintln!(
        "endpoints: POST /v1/predict[/{{model}}], POST /v1/observe[/{{model}}], \
         POST /v1/admin/models/{{model}}, GET /metrics, GET /debug/trace, \
         GET /healthz, GET /readyz (trace sampling 1 in {})",
        opts.trace_sample,
    );

    let mut last_obs: Vec<u64> =
        entries.iter().map(|(_, entry)| entry.engine().observations()).collect();
    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(200));
        for ((path, entry), last) in entries.iter().zip(last_obs.iter_mut()) {
            let current = entry.engine();
            let obs = current.observations();
            if obs >= *last + opts.every as u64 {
                write_engine_checkpoint(&current, path, "periodic");
                *last = obs;
            }
        }
    }
    eprintln!("shutdown signal received; draining ...");
    handle.drain();
    for (path, entry) in &entries {
        write_engine_checkpoint(&entry.engine(), path, "final");
    }
    let server = handle.server_stats();
    let batcher = handle.batcher_stats();
    println!(
        "served {} requests over {} connections ({} shed at accept, {} parse errors)",
        server.requests, server.accepted, server.conn_shed, server.parse_errors
    );
    println!(
        "micro-batcher: {} queries admitted, {} shed, {} batches (largest {})",
        batcher.admitted, batcher.shed, batcher.batches, batcher.max_batch_seen
    );
    ce_telemetry::set_enabled(false);
}

/// Writes the engine's full-chain checkpoint (healing state + breaker
/// snapshots); failures are reported but never kill the server.
fn write_engine_checkpoint<M>(
    engine: &ServeEngine<M, AbsoluteResidual>,
    path: &std::path::Path,
    kind: &str,
) where
    M: Regressor + Clone + Send + Sync + 'static,
{
    let ckpt = engine.checkpoint();
    match write_checkpoint(path, &ckpt) {
        Ok(()) => eprintln!(
            "[obs {}] {kind} checkpoint -> {} ({} breaker snapshots)",
            engine.observations(),
            path.display(),
            ckpt.breakers.len(),
        ),
        Err(e) => eprintln!("[obs {}] {kind} checkpoint FAILED: {e}", engine.observations()),
    }
}

/// Writes a checkpoint with a one-line status report; checkpoint failures
/// are reported but never kill the serving loop.
fn checkpoint_now<M, S>(svc: &mut SelfHealingService<M, S>, path: &std::path::Path, kind: &str)
where
    M: Regressor + Clone,
    S: ScoreFunction + Clone,
{
    match write_checkpoint(path, &svc.checkpoint()) {
        Ok(()) => eprintln!(
            "[obs {}] {kind} checkpoint -> {} (state {:?}, promotions {}, rollbacks {})",
            svc.observations(),
            path.display(),
            svc.state(),
            svc.promotion_count(),
            svc.rollback_count(),
        ),
        Err(e) => eprintln!("[obs {}] {kind} checkpoint FAILED: {e}", svc.observations()),
    }
}

/// Human-readable dump of the service's observability surface.
fn print_stats_text(service: &ResilientService) {
    let stats = service.stats();
    println!("resilience stats ({} queries served)", stats.queries);
    println!("  answered ............ {} (rate {:.3})", stats.answered, stats.answer_rate());
    println!("  fallback rate ....... {:.3}", stats.fallback_rate());
    println!("  floor served ........ {}", stats.floor_served);
    println!("  rejected inputs ..... {}", stats.rejected_inputs);
    println!("  panics caught ....... {}", stats.panics_caught);
    println!("  estimator failures .. {}", stats.estimator_failures);
    println!("  breaker trips ....... {}", stats.breaker_trips);
    println!("fallback chain:");
    for (pos, name) in service.chain_names().iter().enumerate() {
        let state = match service.breaker_state(pos) {
            Some(BreakerState::Closed) => "closed",
            Some(BreakerState::HalfOpen) => "half-open",
            Some(BreakerState::Open) => "OPEN",
            None => "?",
        };
        let served = stats.served_by.get(pos).copied().unwrap_or(0);
        println!("  [{pos}] {name}: breaker {state}, served {served}");
    }
    let errors = service.last_errors();
    println!(
        "last errors ({} buffered, cap {}, oldest first):",
        errors.len(),
        ResilientService::LAST_ERRORS_CAP
    );
    for (who, err) in errors.iter().rev().take(10).rev() {
        println!("  {who}: {err}");
    }
    if errors.len() > 10 {
        println!("  ... ({} older entries omitted)", errors.len() - 10);
    }
    println!("\nmetrics registry (use --format json|prom for machine-readable export):");
    for line in ce_telemetry::global().to_prometheus().lines() {
        if line.starts_with("cardest_resilient_") && !line.starts_with('#') {
            println!("  {line}");
        }
    }
}


/// Options for `cardest-cli route` — the cluster router process.
#[cfg_attr(test, derive(Debug))]
struct RouteOptions {
    listen: String,
    /// `(name, addr)` pairs from repeated `--shard NAME=ADDR` flags.
    shards: Vec<(String, std::net::SocketAddr)>,
    vnodes: usize,
    workers: usize,
    retry_budget: usize,
    deadline_ms: u64,
    probe_interval_ms: u64,
    fail_threshold: u32,
    recover_threshold: u32,
    /// Trace head-sampling rate: trace one routed request in N (0 off,
    /// 1 everything).
    trace_sample: u64,
    /// Replica set size per signature (1 = single-owner, PR 6 behavior).
    replicas: usize,
    /// Fixed hedge delay in ms; `None` leaves hedging off.
    hedge_ms: Option<u64>,
}

/// Outcome of parsing `route` arguments: run, or print usage and stop.
#[cfg_attr(test, derive(Debug))]
enum RouteArgs {
    Help,
    Run(RouteOptions),
}

const ROUTE_USAGE: &str = "usage: cardest-cli route --shard NAME=ADDR [--shard NAME=ADDR ...] \
[--listen ADDR] [--vnodes N] [--workers N] [--retry-budget N] [--deadline-ms N] \
[--probe-interval-ms N] [--fail-threshold N] [--recover-threshold N] \
[--trace-sample N] [--replicas N] [--hedge-ms MS]\n\n\
Fronts a fleet of shared-nothing `serve --listen` shards with a \
consistent-hash router: each predict request's body hashes to a signature \
that pins it to one shard, a background prober ejects shards after \
consecutive /readyz failures and readmits them after consecutive successes, \
and refused/failed legs fail over to the next ring candidate within a \
bounded retry budget and deadline. Shards are keyed by NAME — restart a \
shard anywhere (e.g. `serve --resume --listen :0`) and point the same name \
at the new address without moving any keys.\n\n\
--replicas N (default 1) keeps each signature's calibration truths on its \
first N distinct ring candidates: predictions go to the primary (failover \
prefers the backups), truth-carrying bodies fan out to the rest of the \
replica set as idempotent /v1/observe posts, so a promoted backup serves \
from warm state. --hedge-ms MS fires a second request at the first backup \
when the primary has not answered within MS milliseconds (first response \
wins); omit it to leave hedging off.";

/// Pure argument parser for `route`; mirrors `parse_serve_args`' contract —
/// every problem is an `Err`, never a warning-and-continue.
fn parse_route_args(args: &[String]) -> Result<RouteArgs, String> {
    let mut opts = RouteOptions {
        listen: "127.0.0.1:8600".to_string(),
        shards: Vec::new(),
        vnodes: 64,
        workers: 4,
        retry_budget: 2,
        deadline_ms: 2_000,
        probe_interval_ms: 50,
        fail_threshold: 3,
        recover_threshold: 2,
        trace_sample: ce_telemetry::trace::DEFAULT_SAMPLE_RATE,
        replicas: 1,
        hedge_ms: None,
    };
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> Result<String, String> {
            args.get(i + 1).cloned().ok_or_else(|| format!("missing value for {}", args[i]))
        };
        fn number<T: std::str::FromStr>(flag: &str, raw: String) -> Result<T, String> {
            raw.parse().map_err(|_| format!("{flag} takes a number, got `{raw}`"))
        }
        match args[i].as_str() {
            "--listen" => opts.listen = value(i)?,
            "--shard" => {
                let raw = value(i)?;
                let (name, addr) = raw
                    .split_once('=')
                    .ok_or_else(|| format!("--shard takes NAME=ADDR, got `{raw}`"))?;
                if name.is_empty() {
                    return Err(format!("--shard needs a non-empty name in `{raw}`"));
                }
                let addr: std::net::SocketAddr = addr
                    .parse()
                    .map_err(|_| format!("--shard `{name}` has a malformed address `{addr}`"))?;
                if opts.shards.iter().any(|(n, _)| n == name) {
                    return Err(format!("duplicate shard name `{name}`"));
                }
                opts.shards.push((name.to_string(), addr));
            }
            "--vnodes" => opts.vnodes = number("--vnodes", value(i)?)?,
            "--workers" => opts.workers = number("--workers", value(i)?)?,
            "--retry-budget" => opts.retry_budget = number("--retry-budget", value(i)?)?,
            "--deadline-ms" => opts.deadline_ms = number("--deadline-ms", value(i)?)?,
            "--probe-interval-ms" => {
                opts.probe_interval_ms = number("--probe-interval-ms", value(i)?)?
            }
            "--fail-threshold" => opts.fail_threshold = number("--fail-threshold", value(i)?)?,
            "--recover-threshold" => {
                opts.recover_threshold = number("--recover-threshold", value(i)?)?
            }
            "--trace-sample" => opts.trace_sample = number("--trace-sample", value(i)?)?,
            "--replicas" => opts.replicas = number("--replicas", value(i)?)?,
            "--hedge-ms" => opts.hedge_ms = Some(number("--hedge-ms", value(i)?)?),
            "--help" | "-h" => return Ok(RouteArgs::Help),
            other => return Err(format!("unknown route flag {other} (try route --help)")),
        }
        i += 2;
    }
    if opts.shards.is_empty() {
        return Err("route needs at least one --shard NAME=ADDR".to_string());
    }
    if opts.replicas == 0 {
        return Err("--replicas must be at least 1 (1 = single-owner)".to_string());
    }
    if opts.hedge_ms == Some(0) {
        return Err("--hedge-ms must be at least 1 millisecond".to_string());
    }
    if opts.vnodes == 0 {
        return Err("--vnodes must be at least 1".to_string());
    }
    if opts.workers == 0 {
        return Err("--workers must be at least 1".to_string());
    }
    if opts.fail_threshold == 0 || opts.recover_threshold == 0 {
        return Err("hysteresis thresholds must be at least 1".to_string());
    }
    Ok(RouteArgs::Run(opts))
}

/// `cardest-cli route`: runs the cluster router until SIGTERM/SIGINT, then
/// drains and prints forwarding + fleet counters.
fn run_route(args: &[String]) {
    let opts = match parse_route_args(args) {
        Ok(RouteArgs::Run(opts)) => opts,
        Ok(RouteArgs::Help) => {
            println!("{ROUTE_USAGE}");
            return;
        }
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!("{ROUTE_USAGE}");
            std::process::exit(2);
        }
    };
    install_signal_handlers();
    ce_telemetry::set_enabled(true);
    ce_telemetry::trace::set_sample_rate(opts.trace_sample);
    let config = cardest::router::ClusterRouterConfig {
        workers: opts.workers,
        vnodes: opts.vnodes,
        router: cardest::server::RouterConfig {
            retry_budget: opts.retry_budget,
            deadline: std::time::Duration::from_millis(opts.deadline_ms),
            replicas: opts.replicas,
            hedge: match opts.hedge_ms {
                Some(ms) => cardest::server::HedgePolicy::Fixed(
                    std::time::Duration::from_millis(ms),
                ),
                None => cardest::server::HedgePolicy::Off,
            },
            ..cardest::server::RouterConfig::default()
        },
        health: cardest::server::HealthConfig {
            probe_interval: std::time::Duration::from_millis(opts.probe_interval_ms),
            fail_threshold: opts.fail_threshold,
            recover_threshold: opts.recover_threshold,
            ..cardest::server::HealthConfig::default()
        },
        ..cardest::router::ClusterRouterConfig::default()
    };
    let handle = match cardest::router::start_cluster_router(&opts.shards, &opts.listen, config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("cannot bind {}: {e}", opts.listen);
            std::process::exit(1);
        }
    };
    let hedge_text = match opts.hedge_ms {
        Some(ms) => format!("hedge {ms}ms"),
        None => "hedge off".to_string(),
    };
    eprintln!(
        "routing on http://{} over {} shards (vnodes {}, retry budget {}, deadline {}ms, \
replicas {}, {hedge_text})",
        handle.local_addr(),
        opts.shards.len(),
        opts.vnodes,
        opts.retry_budget,
        opts.deadline_ms,
        opts.replicas,
    );
    for (name, addr) in &opts.shards {
        eprintln!("  shard {name} -> {addr}");
    }
    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    eprintln!("shutdown signal received; draining ...");
    handle.drain();
    let stats = handle.router_stats();
    let fleet = handle.fleet_stats();
    println!(
        "routed {} requests ({} primary, {} failover), {} leg errors, {} sheds, \
{} exhausted, {} deadline-exceeded",
        stats.requests,
        stats.served_primary,
        stats.served_failover,
        stats.leg_errors,
        stats.leg_sheds,
        stats.exhausted,
        stats.deadline_exceeded,
    );
    println!(
        "hedging: {} fired ({} wins, {} cancelled); truths: {} fan-outs, {} replica posts",
        stats.hedges_fired,
        stats.hedge_wins,
        stats.hedge_cancelled,
        stats.truth_fanouts,
        stats.truth_replicated,
    );
    println!(
        "fleet: {} probe rounds ({} ok, {} failed), {} ejections, {} readmissions, {} live at exit",
        fleet.probe_rounds,
        fleet.probe_ok,
        fleet.probe_failed,
        fleet.ejections,
        fleet.readmissions,
        handle.fleet().live_count(),
    );
    ce_telemetry::set_enabled(false);
}

/// Options for the `trace` subcommand.
#[cfg_attr(test, derive(Debug))]
struct TraceOptions {
    addr: String,
    json: bool,
}

/// Outcome of parsing `trace` arguments: run, or print usage and stop.
#[cfg_attr(test, derive(Debug))]
enum TraceArgs {
    Help,
    Run(TraceOptions),
}

const TRACE_USAGE: &str = "usage: cardest-cli trace [--addr HOST:PORT] [--json]\n\n\
Fetches GET /debug/trace from a running `serve --listen` shard or `route` \
router and pretty-prints the flight recorder: the last traced requests with \
per-stage latency attribution (park, dispatch, queue, window, infer, write, \
route, network ...) and the structured event log (breaker transitions, \
coverage alarms, shard ejections, sheds). --json dumps the raw snapshot \
instead.";

/// Pure argument parser for `trace`; same contract as the other subcommand
/// parsers — every problem is an `Err`.
fn parse_trace_args(args: &[String]) -> Result<TraceArgs, String> {
    let mut opts = TraceOptions { addr: "127.0.0.1:8600".to_string(), json: false };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                opts.addr = args
                    .get(i + 1)
                    .cloned()
                    .ok_or_else(|| "missing value for --addr".to_string())?;
                i += 2;
            }
            "--json" => {
                opts.json = true;
                i += 1;
            }
            "--help" | "-h" => return Ok(TraceArgs::Help),
            other => return Err(format!("unknown trace flag {other} (try trace --help)")),
        }
    }
    Ok(TraceArgs::Run(opts))
}

/// Renders nanoseconds as a human-scaled duration.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Pretty-prints one `/debug/trace` snapshot; falls back to raw text when
/// the body is not the expected shape (e.g. a future schema).
fn print_trace_snapshot(text: &str) -> Result<(), serde_json::Error> {
    let value = serde_json::parse(text)?;
    let rate = value.field("sample_rate")?.as_f64()? as u64;
    match rate {
        0 => println!("flight recorder (tracing off; anomalies still sample)"),
        1 => println!("flight recorder (tracing every request)"),
        n => println!("flight recorder (sampling 1 in {n})"),
    }
    let serde_json::Value::Array(traces) = value.field("traces")? else {
        return Err(serde_json::Error::new("`traces` is not an array"));
    };
    println!("traces ({}, oldest first):", traces.len());
    for t in traces {
        let id = match t.field("trace")? {
            serde_json::Value::Str(s) => s.clone(),
            _ => "?".to_string(),
        };
        let total = t.field("total_ns")?.as_f64()?;
        let serde_json::Value::Array(stages) = t.field("stages")? else {
            continue;
        };
        let mut parts = Vec::with_capacity(stages.len());
        // Sum only the transport stages: span-joined stages (pi_batch, …)
        // nest inside `infer` and would double-count the wall clock.
        let mut accounted = 0.0;
        for s in stages {
            let name = match s.field("stage")? {
                serde_json::Value::Str(s) => s.clone(),
                _ => "?".to_string(),
            };
            let ns = s.field("ns")?.as_f64()?;
            if ce_telemetry::trace::TRANSPORT_STAGES.contains(&name.as_str()) {
                accounted += ns;
            }
            parts.push(format!("{name} {}", fmt_ns(ns)));
        }
        println!(
            "  {id}  total {} ({} attributed): {}",
            fmt_ns(total),
            fmt_ns(accounted),
            if parts.is_empty() { "-".to_string() } else { parts.join(", ") },
        );
    }
    let serde_json::Value::Array(events) = value.field("events")? else {
        return Err(serde_json::Error::new("`events` is not an array"));
    };
    println!("events ({}, oldest first):", events.len());
    for e in events {
        let at_s = e.field("at_ns")?.as_f64()? / 1e9;
        let kind = match e.field("kind")? {
            serde_json::Value::Str(s) => s.clone(),
            _ => "?".to_string(),
        };
        let anomaly = matches!(e.field("anomaly")?, serde_json::Value::Bool(true));
        let detail = match e.field("detail")? {
            serde_json::Value::Str(s) => s.clone(),
            _ => String::new(),
        };
        println!(
            "  [+{at_s:.3}s] {kind}{}{}{}",
            if anomaly { " (ANOMALY)" } else { "" },
            if detail.is_empty() { "" } else { ": " },
            detail,
        );
    }
    Ok(())
}

/// `cardest-cli trace`: fetch and render a running server's flight recorder.
fn run_trace(args: &[String]) {
    let opts = match parse_trace_args(args) {
        Ok(TraceArgs::Run(opts)) => opts,
        Ok(TraceArgs::Help) => {
            println!("{TRACE_USAGE}");
            return;
        }
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!("{TRACE_USAGE}");
            std::process::exit(2);
        }
    };
    let addr: std::net::SocketAddr = match opts.addr.parse() {
        Ok(addr) => addr,
        Err(_) => {
            eprintln!("--addr must be HOST:PORT, got `{}`", opts.addr);
            std::process::exit(2);
        }
    };
    let mut client = match cardest::server::HttpClient::connect(addr) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    let resp = match client.get("/debug/trace") {
        Ok(resp) => resp,
        Err(e) => {
            eprintln!("GET /debug/trace failed: {e}");
            std::process::exit(1);
        }
    };
    if resp.status != 200 {
        eprintln!("GET /debug/trace answered {}", resp.status);
        std::process::exit(1);
    }
    let text = String::from_utf8_lossy(&resp.body);
    if opts.json {
        println!("{text}");
        return;
    }
    if let Err(e) = print_trace_snapshot(&text) {
        eprintln!("unexpected snapshot shape ({e}); raw body:");
        println!("{text}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("stats") {
        run_stats(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("trace") {
        run_trace(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("serve") {
        run_serve(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("route") {
        run_route(&args[1..]);
        return;
    }
    let opts = parse_args();
    let seed = 42;
    let Some(table) = cardest::datagen::by_name(&opts.dataset, opts.rows, seed) else {
        eprintln!("unknown dataset `{}` (dmv|census|forest|power)", opts.dataset);
        std::process::exit(2);
    };
    eprintln!(
        "dataset {}: {} rows x {} columns; generating {} labeled queries...",
        opts.dataset,
        table.n_rows(),
        table.schema().arity(),
        opts.queries
    );
    let bench = SingleTableBench::prepare(
        table,
        opts.queries,
        &GeneratorConfig::low_selectivity(),
        SplitSpec::default(),
        seed,
    );

    eprintln!("training {}...", opts.model);
    let model: Box<dyn Regressor + Sync> = match opts.model.as_str() {
        "mscn" => Box::new(train_mscn(&bench.feat, &bench.train, 40, seed)),
        "lwnn" => Box::new(train_lwnn(&bench.table, &bench.train, 20, seed)),
        "naru" => Box::new(train_naru(&bench.table, 3, 64, seed)),
        other => {
            eprintln!("unknown model `{other}` (mscn|lwnn|naru)");
            std::process::exit(2);
        }
    };
    let model = &*model;
    let adapter = |f: &[f32]| model.predict(f);

    eprintln!("calibrating prediction intervals (alpha = {})...", opts.alpha);
    let floor = 1.0 / bench.table.n_rows() as f64;
    let scp = run_split_conformal(
        adapter,
        ScoreKind::Residual,
        &bench.calib,
        &bench.test,
        opts.alpha,
        floor,
    );
    let lw = run_locally_weighted(
        adapter,
        ScoreKind::Residual,
        &bench.train,
        &bench.calib,
        &bench.test,
        opts.alpha,
        floor,
        seed,
    );
    eprintln!(
        "held-out sanity: S-CP coverage {:.3} (width {:.5}), LW-S-CP coverage {:.3} (width {:.5})",
        scp.report.coverage, scp.report.mean_width, lw.report.coverage, lw.report.mean_width,
    );
    // Recalibrate interval closures for ad-hoc queries.
    let scp = cardest::conformal::SplitConformal::calibrate(
        adapter,
        cardest::conformal::AbsoluteResidual,
        &bench.calib.x,
        &bench.calib.y,
        opts.alpha,
    );

    let columns: Vec<String> = bench
        .table
        .schema()
        .columns()
        .iter()
        .map(|c| format!("{}(0..{})", c.name, c.domain))
        .collect();
    eprintln!("\ncolumns: {}", columns.join(", "));
    eprintln!("enter queries like `{} = 1 AND {} in 2..5` (empty line quits):",
        bench.table.schema().column(0).name,
        bench.table.schema().column(1).name,
    );

    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    let n = bench.table.n_rows() as f64;
    loop {
        print!("> ");
        let _ = stdout.flush();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() || line == "quit" || line == "exit" {
            break;
        }
        match parse_query(bench.table.schema(), line) {
            Err(e) => println!("  error: {e}"),
            Ok(q) => {
                let truth = bench.table.count(&q);
                let features = bench.feat.encode(&q);
                let est = adapter.predict(&features);
                let iv = scp.interval(&features).clip(0.0, 1.0);
                println!(
                    "  true count {truth} | estimate {:.0} (sel {:.5}) | {:.0}% PI [{:.0}, {:.0}] {}",
                    est * n,
                    est,
                    (1.0 - scp.alpha()) * 100.0,
                    iv.lo * n,
                    iv.hi * n,
                    if iv.contains(truth as f64 / n) { "(covers)" } else { "(MISS)" },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn serve_args_defaults() {
        let ServeArgs::Run(opts) = parse_serve_args(&[]).unwrap() else {
            panic!("no flags should run with defaults");
        };
        assert_eq!(opts.dataset, "dmv");
        assert_eq!(opts.every, 200);
        assert!(opts.listen.is_none());
        assert!(!opts.resume);
        assert!(!opts.alarm_coupled);
    }

    #[test]
    fn serve_args_unknown_flag_is_an_error() {
        let err = parse_serve_args(&argv(&["--nonsense"])).unwrap_err();
        assert!(err.contains("--nonsense"), "error names the flag: {err}");
        // A typo'd flag before valid ones must also fail, not be skipped.
        assert!(parse_serve_args(&argv(&["--steam", "500"])).is_err());
    }

    #[test]
    fn serve_args_missing_value_is_an_error() {
        let err = parse_serve_args(&argv(&["--stream"])).unwrap_err();
        assert!(err.contains("--stream"), "{err}");
        assert!(parse_serve_args(&argv(&["--listen"])).is_err());
    }

    #[test]
    fn serve_args_malformed_number_is_an_error() {
        let err = parse_serve_args(&argv(&["--rows", "many"])).unwrap_err();
        assert!(err.contains("--rows") && err.contains("many"), "{err}");
    }

    #[test]
    fn serve_args_zero_guards() {
        assert!(parse_serve_args(&argv(&["--checkpoint-every", "0"])).is_err());
        assert!(parse_serve_args(&argv(&["--workers", "0"])).is_err());
        assert!(parse_serve_args(&argv(&["--max-batch", "0"])).is_err());
    }


    #[test]
    fn route_args_require_a_shard() {
        let err = parse_route_args(&[]).unwrap_err();
        assert!(err.contains("--shard"), "{err}");
    }

    #[test]
    fn route_args_parse_shards_and_tuning() {
        let args = argv(&[
            "--listen",
            "127.0.0.1:0",
            "--shard",
            "a=127.0.0.1:9101",
            "--shard",
            "b=127.0.0.1:9102",
            "--vnodes",
            "32",
            "--retry-budget",
            "3",
            "--deadline-ms",
            "750",
            "--probe-interval-ms",
            "25",
            "--fail-threshold",
            "2",
            "--recover-threshold",
            "4",
        ]);
        let RouteArgs::Run(opts) = parse_route_args(&args).unwrap() else {
            panic!("flags should parse to a run");
        };
        assert_eq!(opts.shards.len(), 2);
        assert_eq!(opts.shards[0].0, "a");
        assert_eq!(opts.shards[1].1, "127.0.0.1:9102".parse().unwrap());
        assert_eq!(opts.vnodes, 32);
        assert_eq!(opts.retry_budget, 3);
        assert_eq!(opts.deadline_ms, 750);
        assert_eq!(opts.probe_interval_ms, 25);
        assert_eq!(opts.fail_threshold, 2);
        assert_eq!(opts.recover_threshold, 4);
    }

    #[test]
    fn route_args_reject_malformed_and_duplicate_shards() {
        let base = |spec: &str| parse_route_args(&argv(&["--shard", spec]));
        assert!(base("no-equals").is_err(), "NAME=ADDR required");
        assert!(base("=127.0.0.1:9101").is_err(), "empty name rejected");
        assert!(base("a=not-an-addr").is_err(), "address must parse");
        let dup = argv(&["--shard", "a=127.0.0.1:9101", "--shard", "a=127.0.0.1:9102"]);
        let err = parse_route_args(&dup).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn route_args_zero_guards_and_unknown_flags() {
        let with = |extra: &[&str]| {
            let mut v = vec!["--shard", "a=127.0.0.1:9101"];
            v.extend_from_slice(extra);
            parse_route_args(&argv(&v))
        };
        assert!(with(&["--vnodes", "0"]).is_err());
        assert!(with(&["--workers", "0"]).is_err());
        assert!(with(&["--fail-threshold", "0"]).is_err());
        assert!(with(&["--recover-threshold", "0"]).is_err());
        assert!(with(&["--bogus"]).is_err());
        assert!(matches!(parse_route_args(&argv(&["--help"])), Ok(RouteArgs::Help)));
    }

    #[test]
    fn route_args_replication_and_hedging_flags() {
        let with = |extra: &[&str]| {
            let mut v = vec!["--shard", "a=127.0.0.1:9101"];
            v.extend_from_slice(extra);
            parse_route_args(&argv(&v))
        };
        // Defaults: single-owner, hedging off — byte-identical to PR 6.
        let RouteArgs::Run(opts) = with(&[]).unwrap() else { panic!("should run") };
        assert_eq!(opts.replicas, 1);
        assert_eq!(opts.hedge_ms, None);
        let RouteArgs::Run(opts) = with(&["--replicas", "2", "--hedge-ms", "15"]).unwrap()
        else {
            panic!("should run")
        };
        assert_eq!(opts.replicas, 2);
        assert_eq!(opts.hedge_ms, Some(15));
        // Zero guards and malformed numbers are errors, not warnings.
        let err = with(&["--replicas", "0"]).unwrap_err();
        assert!(err.contains("--replicas"), "{err}");
        let err = with(&["--hedge-ms", "0"]).unwrap_err();
        assert!(err.contains("--hedge-ms"), "{err}");
        assert!(with(&["--replicas", "two"]).is_err());
        assert!(with(&["--hedge-ms", "99999999999999999999999"]).is_err(), "overflow");
        assert!(with(&["--replicas"]).is_err(), "missing value");
    }

    #[test]
    fn serve_args_http_flags_parse() {
        let args = argv(&[
            "--listen",
            "127.0.0.1:0",
            "--workers",
            "8",
            "--queue",
            "256",
            "--max-batch",
            "32",
            "--batch-window-us",
            "250",
            "--alarm-coupled",
            "--resume",
        ]);
        let ServeArgs::Run(opts) = parse_serve_args(&args).unwrap() else {
            panic!("flags should parse to a run");
        };
        assert_eq!(opts.listen.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(opts.workers, 8);
        assert_eq!(opts.queue, 256);
        assert_eq!(opts.max_batch, 32);
        assert_eq!(opts.batch_window_us, 250);
        assert!(opts.alarm_coupled);
        assert!(opts.resume);
    }

    #[test]
    fn serve_args_tenant_flags_parse_with_defaults() {
        // Defaults: single default model, no limiter, cache off — the PR 9
        // single-engine surface byte for byte.
        let ServeArgs::Run(opts) = parse_serve_args(&[]).unwrap() else { panic!() };
        assert!(opts.models.is_empty());
        assert_eq!(opts.tenant_rate, None);
        assert_eq!(opts.cache_cap, 0);
        let args = argv(&[
            "--models",
            "mscn, lwnn,mscn",
            "--tenant-rate",
            "50.5",
            "--tenant-burst",
            "20",
            "--cache-cap",
            "4096",
        ]);
        let ServeArgs::Run(opts) = parse_serve_args(&args).unwrap() else {
            panic!("flags should parse to a run");
        };
        assert_eq!(
            opts.models,
            vec!["mscn".to_string(), "lwnn".to_string()],
            "names are trimmed and deduplicated"
        );
        assert_eq!(opts.tenant_rate, Some(50.5));
        assert_eq!(opts.tenant_burst, 20.0);
        assert_eq!(opts.cache_cap, 4096);
    }

    #[test]
    fn serve_args_tenant_flags_reject_bad_values() {
        assert!(parse_serve_args(&argv(&["--models", "a,,b"])).is_err(), "empty name");
        assert!(parse_serve_args(&argv(&["--models", "a/b"])).is_err(), "slash in name");
        assert!(parse_serve_args(&argv(&["--models", "a b"])).is_err(), "whitespace");
        assert!(parse_serve_args(&argv(&["--tenant-rate", "0"])).is_err());
        assert!(parse_serve_args(&argv(&["--tenant-rate", "-2"])).is_err());
        assert!(parse_serve_args(&argv(&["--tenant-rate", "inf"])).is_err());
        assert!(parse_serve_args(&argv(&["--tenant-burst", "0.5"])).is_err());
        assert!(parse_serve_args(&argv(&["--cache-cap", "many"])).is_err());
    }

    #[test]
    fn trace_args_parse_and_reject() {
        let TraceArgs::Run(opts) = parse_trace_args(&[]).unwrap() else {
            panic!("no flags should run with defaults");
        };
        assert_eq!(opts.addr, "127.0.0.1:8600");
        assert!(!opts.json);
        let TraceArgs::Run(opts) =
            parse_trace_args(&argv(&["--addr", "127.0.0.1:9000", "--json"])).unwrap()
        else {
            panic!("flags should parse to a run");
        };
        assert_eq!(opts.addr, "127.0.0.1:9000");
        assert!(opts.json);
        assert!(parse_trace_args(&argv(&["--addr"])).is_err(), "missing value");
        assert!(parse_trace_args(&argv(&["--bogus"])).is_err());
        assert!(matches!(parse_trace_args(&argv(&["--help"])), Ok(TraceArgs::Help)));
    }

    #[test]
    fn trace_sample_flags_parse() {
        let ServeArgs::Run(opts) = parse_serve_args(&argv(&["--trace-sample", "8"])).unwrap()
        else {
            panic!("flags should parse to a run");
        };
        assert_eq!(opts.trace_sample, 8);
        let ServeArgs::Run(opts) = parse_serve_args(&[]).unwrap() else { panic!() };
        assert_eq!(opts.trace_sample, ce_telemetry::trace::DEFAULT_SAMPLE_RATE);
        let args = argv(&["--shard", "a=127.0.0.1:9101", "--trace-sample", "0"]);
        let RouteArgs::Run(opts) = parse_route_args(&args).unwrap() else { panic!() };
        assert_eq!(opts.trace_sample, 0, "0 turns routed tracing off");
    }

    #[test]
    fn trace_snapshot_pretty_printer_accepts_the_wire_shape() {
        let text = r#"{"sample_rate": 64, "traces": [{"trace": "00000000000000000000000000000abc", "at_ns": 5000, "total_ns": 900, "stages": [{"stage": "infer", "ns": 700}, {"stage": "write", "ns": 100}]}], "events": [{"at_ns": 1000, "kind": "breaker_open", "anomaly": true, "detail": "mscn"}]}"#;
        print_trace_snapshot(text).expect("wire shape must print");
        assert!(print_trace_snapshot("[]").is_err(), "non-object rejected");
        assert!(print_trace_snapshot("{}").is_err(), "missing fields rejected");
    }

    #[test]
    fn serve_args_help_short_circuits() {
        assert!(matches!(parse_serve_args(&argv(&["--help"])), Ok(ServeArgs::Help)));
        assert!(matches!(
            parse_serve_args(&argv(&["-h", "--nonsense"])),
            Ok(ServeArgs::Help)
        ));
    }
}
