//! `cardest-cli` — an interactive demo of prediction intervals over learned
//! cardinality estimation.
//!
//! ```text
//! cargo run --release --bin cardest-cli -- --dataset dmv --rows 20000 --model mscn
//! ```
//!
//! Builds the dataset, trains the chosen model, calibrates split conformal
//! and locally weighted conformal wrappers, then reads textual queries from
//! stdin (`make = 3 AND unladen_weight in 10..40`) and answers each with the
//! exact count, the model estimate, and both prediction intervals.
//!
//! The `stats` subcommand instead serves a fault-injected stream through a
//! [`ResilientService`] fallback chain with telemetry enabled, then dumps
//! resilience counters, per-position breaker states, the bounded
//! `last_errors` ring buffer, and the metrics registry:
//!
//! ```text
//! cargo run --release --bin cardest-cli -- stats --format text
//! cargo run --release --bin cardest-cli -- stats --format prom
//! ```

use std::io::{BufRead, Write};

use cardest::conformal::{
    install_quiet_chaos_hook, AbsoluteResidual, BreakerState, ChaosConfig, ChaosRegressor,
    OnlineConformal, PiEstimator, PredictionInterval, Regressor, ResilientService,
};
use cardest::estimators::{AviModel, SamplingEstimator};
use cardest::pipeline::{
    run_locally_weighted, run_split_conformal, train_lwnn, train_mscn, train_naru,
    ScoreKind, SingleTableBench, SplitSpec,
};
use cardest::query::{parse_query, GeneratorConfig};

struct Options {
    dataset: String,
    rows: usize,
    model: String,
    alpha: f64,
    queries: usize,
}

fn parse_args() -> Options {
    let mut opts = Options {
        dataset: "dmv".into(),
        rows: 20_000,
        model: "mscn".into(),
        alpha: 0.1,
        queries: 2_000,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| {
                    eprintln!("missing value for {}", args[i]);
                    std::process::exit(2);
                })
                .clone()
        };
        match args[i].as_str() {
            "--dataset" => opts.dataset = value(i),
            "--rows" => opts.rows = value(i).parse().expect("--rows takes a number"),
            "--model" => opts.model = value(i),
            "--alpha" => opts.alpha = value(i).parse().expect("--alpha takes a float"),
            "--queries" => {
                opts.queries = value(i).parse().expect("--queries takes a number")
            }
            "--help" | "-h" => {
                println!(
                    "usage: cardest-cli [--dataset dmv|census|forest|power] \
                     [--rows N] [--model mscn|lwnn|naru] [--alpha A] [--queries N]\n\
                     \x20      cardest-cli stats [--dataset D] [--rows N] [--stream N] \
                     [--format text|json|prom]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    opts
}

/// Options for the `stats` subcommand.
struct StatsOptions {
    dataset: String,
    rows: usize,
    queries: usize,
    stream: usize,
    format: String,
}

fn parse_stats_args(args: &[String]) -> StatsOptions {
    let mut opts = StatsOptions {
        dataset: "dmv".into(),
        rows: 10_000,
        queries: 800,
        stream: 600,
        format: "text".into(),
    };
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| {
                    eprintln!("missing value for {}", args[i]);
                    std::process::exit(2);
                })
                .clone()
        };
        match args[i].as_str() {
            "--dataset" => opts.dataset = value(i),
            "--rows" => opts.rows = value(i).parse().expect("--rows takes a number"),
            "--queries" => {
                opts.queries = value(i).parse().expect("--queries takes a number")
            }
            "--stream" => opts.stream = value(i).parse().expect("--stream takes a number"),
            "--format" => opts.format = value(i),
            "--help" | "-h" => {
                println!(
                    "usage: cardest-cli stats [--dataset dmv|census|forest|power] \
                     [--rows N] [--queries N] [--stream N] [--format text|json|prom]\n\n\
                     Serves a chaos-injected query stream (20% NaN, 5% panic primary) \
                     through the resilient fallback chain with telemetry enabled, then \
                     prints resilience stats, breaker states, recent errors, and the \
                     metrics registry in the chosen format."
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown stats flag {other} (try stats --help)");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    if !matches!(opts.format.as_str(), "text" | "json" | "prom") {
        eprintln!("unknown --format `{}` (text|json|prom)", opts.format);
        std::process::exit(2);
    }
    opts
}

/// `cardest-cli stats`: build the MSCN→AVI→sampling fallback chain with a
/// chaos-wrapped primary, serve a prequential stream with telemetry on, and
/// dump the observability surface (resilience counters, breaker states,
/// bounded error ring, metrics registry).
fn run_stats(args: &[String]) {
    let opts = parse_stats_args(args);
    let seed = 42;
    let alpha = 0.1;
    let Some(table) = cardest::datagen::by_name(&opts.dataset, opts.rows, seed) else {
        eprintln!("unknown dataset `{}` (dmv|census|forest|power)", opts.dataset);
        std::process::exit(2);
    };
    eprintln!(
        "stats: dataset {} ({} rows), {} labeled queries, stream {}",
        opts.dataset,
        table.n_rows(),
        opts.queries,
        opts.stream
    );
    let bench = SingleTableBench::prepare(
        table,
        opts.queries,
        &GeneratorConfig::low_selectivity(),
        SplitSpec::default(),
        seed,
    );
    let floor = 1.0 / bench.table.n_rows() as f64;

    eprintln!("training chain: chaos(mscn) -> avi -> sampling ...");
    install_quiet_chaos_hook();
    let mscn = train_mscn(&bench.feat, &bench.train, 10, seed);
    let chaos = ChaosConfig {
        nan_rate: 0.2,
        panic_rate: 0.05,
        warmup_calls: bench.calib.len() as u64,
        seed,
        ..Default::default()
    };
    let primary: Box<dyn PiEstimator> = Box::new(OnlineConformal::new(
        ChaosRegressor::new(mscn, chaos),
        AbsoluteResidual,
        &bench.calib.x,
        &bench.calib.y,
        alpha,
    ));
    let avi = AviModel::build(&bench.table, floor);
    let sampling =
        SamplingEstimator::build(&bench.table, (opts.rows / 100).max(50), seed + 7, floor);
    let mut service = ResilientService::new(primary)
        .with_fallback(Box::new(OnlineConformal::new(
            avi,
            AbsoluteResidual,
            &bench.calib.x,
            &bench.calib.y,
            alpha,
        )))
        .with_fallback(Box::new(OnlineConformal::new(
            sampling,
            AbsoluteResidual,
            &bench.calib.x,
            &bench.calib.y,
            alpha,
        )))
        .with_expected_dims(bench.test.x[0].len());

    ce_telemetry::set_enabled(true);
    eprintln!("serving {} queries prequentially under chaos ...", opts.stream);
    for qi in 0..opts.stream {
        let i = qi % bench.test.len();
        let x = &bench.test.x[i];
        let _iv = service
            .interval(x)
            .unwrap_or_else(|_| PredictionInterval::new(f64::NEG_INFINITY, f64::INFINITY));
        service.observe(x, bench.test.y[i]);
    }
    // Mirror the counters into the registry so every export format sees them.
    service.publish_telemetry();

    match opts.format.as_str() {
        "json" => println!("{}", ce_telemetry::global().to_json()),
        "prom" => print!("{}", ce_telemetry::global().to_prometheus()),
        _ => print_stats_text(&service),
    }
    ce_telemetry::set_enabled(false);
}

/// Human-readable dump of the service's observability surface.
fn print_stats_text(service: &ResilientService) {
    let stats = service.stats();
    println!("resilience stats ({} queries served)", stats.queries);
    println!("  answered ............ {} (rate {:.3})", stats.answered, stats.answer_rate());
    println!("  fallback rate ....... {:.3}", stats.fallback_rate());
    println!("  floor served ........ {}", stats.floor_served);
    println!("  rejected inputs ..... {}", stats.rejected_inputs);
    println!("  panics caught ....... {}", stats.panics_caught);
    println!("  estimator failures .. {}", stats.estimator_failures);
    println!("  breaker trips ....... {}", stats.breaker_trips);
    println!("fallback chain:");
    for (pos, name) in service.chain_names().iter().enumerate() {
        let state = match service.breaker_state(pos) {
            Some(BreakerState::Closed) => "closed",
            Some(BreakerState::HalfOpen) => "half-open",
            Some(BreakerState::Open) => "OPEN",
            None => "?",
        };
        let served = stats.served_by.get(pos).copied().unwrap_or(0);
        println!("  [{pos}] {name}: breaker {state}, served {served}");
    }
    let errors = service.last_errors();
    println!(
        "last errors ({} buffered, cap {}, oldest first):",
        errors.len(),
        ResilientService::LAST_ERRORS_CAP
    );
    for (who, err) in errors.iter().rev().take(10).rev() {
        println!("  {who}: {err}");
    }
    if errors.len() > 10 {
        println!("  ... ({} older entries omitted)", errors.len() - 10);
    }
    println!("\nmetrics registry (use --format json|prom for machine-readable export):");
    for line in ce_telemetry::global().to_prometheus().lines() {
        if line.starts_with("cardest_resilient_") && !line.starts_with('#') {
            println!("  {line}");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("stats") {
        run_stats(&args[1..]);
        return;
    }
    let opts = parse_args();
    let seed = 42;
    let Some(table) = cardest::datagen::by_name(&opts.dataset, opts.rows, seed) else {
        eprintln!("unknown dataset `{}` (dmv|census|forest|power)", opts.dataset);
        std::process::exit(2);
    };
    eprintln!(
        "dataset {}: {} rows x {} columns; generating {} labeled queries...",
        opts.dataset,
        table.n_rows(),
        table.schema().arity(),
        opts.queries
    );
    let bench = SingleTableBench::prepare(
        table,
        opts.queries,
        &GeneratorConfig::low_selectivity(),
        SplitSpec::default(),
        seed,
    );

    eprintln!("training {}...", opts.model);
    let model: Box<dyn Regressor + Sync> = match opts.model.as_str() {
        "mscn" => Box::new(train_mscn(&bench.feat, &bench.train, 40, seed)),
        "lwnn" => Box::new(train_lwnn(&bench.table, &bench.train, 20, seed)),
        "naru" => Box::new(train_naru(&bench.table, 3, 64, seed)),
        other => {
            eprintln!("unknown model `{other}` (mscn|lwnn|naru)");
            std::process::exit(2);
        }
    };
    let model = &*model;
    let adapter = |f: &[f32]| model.predict(f);

    eprintln!("calibrating prediction intervals (alpha = {})...", opts.alpha);
    let floor = 1.0 / bench.table.n_rows() as f64;
    let scp = run_split_conformal(
        adapter,
        ScoreKind::Residual,
        &bench.calib,
        &bench.test,
        opts.alpha,
        floor,
    );
    let lw = run_locally_weighted(
        adapter,
        ScoreKind::Residual,
        &bench.train,
        &bench.calib,
        &bench.test,
        opts.alpha,
        floor,
        seed,
    );
    eprintln!(
        "held-out sanity: S-CP coverage {:.3} (width {:.5}), LW-S-CP coverage {:.3} (width {:.5})",
        scp.report.coverage, scp.report.mean_width, lw.report.coverage, lw.report.mean_width,
    );
    // Recalibrate interval closures for ad-hoc queries.
    let scp = cardest::conformal::SplitConformal::calibrate(
        adapter,
        cardest::conformal::AbsoluteResidual,
        &bench.calib.x,
        &bench.calib.y,
        opts.alpha,
    );

    let columns: Vec<String> = bench
        .table
        .schema()
        .columns()
        .iter()
        .map(|c| format!("{}(0..{})", c.name, c.domain))
        .collect();
    eprintln!("\ncolumns: {}", columns.join(", "));
    eprintln!("enter queries like `{} = 1 AND {} in 2..5` (empty line quits):",
        bench.table.schema().column(0).name,
        bench.table.schema().column(1).name,
    );

    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    let n = bench.table.n_rows() as f64;
    loop {
        print!("> ");
        let _ = stdout.flush();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() || line == "quit" || line == "exit" {
            break;
        }
        match parse_query(bench.table.schema(), line) {
            Err(e) => println!("  error: {e}"),
            Ok(q) => {
                let truth = bench.table.count(&q);
                let features = bench.feat.encode(&q);
                let est = adapter.predict(&features);
                let iv = scp.interval(&features).clip(0.0, 1.0);
                println!(
                    "  true count {truth} | estimate {:.0} (sel {:.5}) | {:.0}% PI [{:.0}, {:.0}] {}",
                    est * n,
                    est,
                    (1.0 - scp.alpha()) * 100.0,
                    iv.lo * n,
                    iv.hi * n,
                    if iv.contains(truth as f64 / n) { "(covers)" } else { "(MISS)" },
                );
            }
        }
    }
}
