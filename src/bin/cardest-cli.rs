//! `cardest-cli` — an interactive demo of prediction intervals over learned
//! cardinality estimation.
//!
//! ```text
//! cargo run --release --bin cardest-cli -- --dataset dmv --rows 20000 --model mscn
//! ```
//!
//! Builds the dataset, trains the chosen model, calibrates split conformal
//! and locally weighted conformal wrappers, then reads textual queries from
//! stdin (`make = 3 AND unladen_weight in 10..40`) and answers each with the
//! exact count, the model estimate, and both prediction intervals.

use std::io::{BufRead, Write};

use cardest::conformal::Regressor;
use cardest::pipeline::{
    run_locally_weighted, run_split_conformal, train_lwnn, train_mscn, train_naru,
    ScoreKind, SingleTableBench, SplitSpec,
};
use cardest::query::{parse_query, GeneratorConfig};

struct Options {
    dataset: String,
    rows: usize,
    model: String,
    alpha: f64,
    queries: usize,
}

fn parse_args() -> Options {
    let mut opts = Options {
        dataset: "dmv".into(),
        rows: 20_000,
        model: "mscn".into(),
        alpha: 0.1,
        queries: 2_000,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| {
                    eprintln!("missing value for {}", args[i]);
                    std::process::exit(2);
                })
                .clone()
        };
        match args[i].as_str() {
            "--dataset" => opts.dataset = value(i),
            "--rows" => opts.rows = value(i).parse().expect("--rows takes a number"),
            "--model" => opts.model = value(i),
            "--alpha" => opts.alpha = value(i).parse().expect("--alpha takes a float"),
            "--queries" => {
                opts.queries = value(i).parse().expect("--queries takes a number")
            }
            "--help" | "-h" => {
                println!(
                    "usage: cardest-cli [--dataset dmv|census|forest|power] \
                     [--rows N] [--model mscn|lwnn|naru] [--alpha A] [--queries N]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    opts
}

fn main() {
    let opts = parse_args();
    let seed = 42;
    let Some(table) = cardest::datagen::by_name(&opts.dataset, opts.rows, seed) else {
        eprintln!("unknown dataset `{}` (dmv|census|forest|power)", opts.dataset);
        std::process::exit(2);
    };
    eprintln!(
        "dataset {}: {} rows x {} columns; generating {} labeled queries...",
        opts.dataset,
        table.n_rows(),
        table.schema().arity(),
        opts.queries
    );
    let bench = SingleTableBench::prepare(
        table,
        opts.queries,
        &GeneratorConfig::low_selectivity(),
        SplitSpec::default(),
        seed,
    );

    eprintln!("training {}...", opts.model);
    let model: Box<dyn Regressor + Sync> = match opts.model.as_str() {
        "mscn" => Box::new(train_mscn(&bench.feat, &bench.train, 40, seed)),
        "lwnn" => Box::new(train_lwnn(&bench.table, &bench.train, 20, seed)),
        "naru" => Box::new(train_naru(&bench.table, 3, 64, seed)),
        other => {
            eprintln!("unknown model `{other}` (mscn|lwnn|naru)");
            std::process::exit(2);
        }
    };
    let model = &*model;
    let adapter = |f: &[f32]| model.predict(f);

    eprintln!("calibrating prediction intervals (alpha = {})...", opts.alpha);
    let floor = 1.0 / bench.table.n_rows() as f64;
    let scp = run_split_conformal(
        adapter,
        ScoreKind::Residual,
        &bench.calib,
        &bench.test,
        opts.alpha,
        floor,
    );
    let lw = run_locally_weighted(
        adapter,
        ScoreKind::Residual,
        &bench.train,
        &bench.calib,
        &bench.test,
        opts.alpha,
        floor,
        seed,
    );
    eprintln!(
        "held-out sanity: S-CP coverage {:.3} (width {:.5}), LW-S-CP coverage {:.3} (width {:.5})",
        scp.report.coverage, scp.report.mean_width, lw.report.coverage, lw.report.mean_width,
    );
    // Recalibrate interval closures for ad-hoc queries.
    let scp = cardest::conformal::SplitConformal::calibrate(
        adapter,
        cardest::conformal::AbsoluteResidual,
        &bench.calib.x,
        &bench.calib.y,
        opts.alpha,
    );

    let columns: Vec<String> = bench
        .table
        .schema()
        .columns()
        .iter()
        .map(|c| format!("{}(0..{})", c.name, c.domain))
        .collect();
    eprintln!("\ncolumns: {}", columns.join(", "));
    eprintln!("enter queries like `{} = 1 AND {} in 2..5` (empty line quits):",
        bench.table.schema().column(0).name,
        bench.table.schema().column(1).name,
    );

    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    let n = bench.table.n_rows() as f64;
    loop {
        print!("> ");
        let _ = stdout.flush();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() || line == "quit" || line == "exit" {
            break;
        }
        match parse_query(bench.table.schema(), line) {
            Err(e) => println!("  error: {e}"),
            Ok(q) => {
                let truth = bench.table.count(&q);
                let features = bench.feat.encode(&q);
                let est = adapter.predict(&features);
                let iv = scp.interval(&features).clip(0.0, 1.0);
                println!(
                    "  true count {truth} | estimate {:.0} (sel {:.5}) | {:.0}% PI [{:.0}, {:.0}] {}",
                    est * n,
                    est,
                    (1.0 - scp.alpha()) * 100.0,
                    iv.lo * n,
                    iv.hi * n,
                    if iv.contains(truth as f64 / n) { "(covers)" } else { "(MISS)" },
                );
            }
        }
    }
}
