//! Quickstart: wrap a learned cardinality estimator with a prediction
//! interval in ~40 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cardest::conformal::{coverage, mean_width, PredictionInterval};
use cardest::pipeline::{
    run_split_conformal, train_mscn, ScoreKind, SingleTableBench, SplitSpec,
};
use cardest::query::GeneratorConfig;

fn main() {
    // 1. A DMV-shaped table and a labeled workload, split into
    //    train / calibration / test.
    let table = cardest::datagen::dmv(10_000, 7);
    let bench = SingleTableBench::prepare(
        table,
        1_500,
        &GeneratorConfig::low_selectivity(),
        SplitSpec::default(),
        7,
    );
    println!(
        "workload: {} train / {} calibration / {} test queries",
        bench.train.len(),
        bench.calib.len(),
        bench.test.len()
    );

    // 2. Train MSCN on the training split.
    let mscn = train_mscn(&bench.feat, &bench.train, 30, 7);

    // 3. Wrap it with split conformal prediction at 90% coverage.
    let result = run_split_conformal(
        mscn,
        ScoreKind::Residual,
        &bench.calib,
        &bench.test,
        0.1,
        1e-6,
    );

    // 4. Inspect: the interval contains the true selectivity for >= 90% of
    //    unseen queries, at a width the model's accuracy earned.
    println!(
        "coverage {:.3} (target 0.90), mean interval width {:.5}",
        coverage(&result.intervals, &bench.test.y),
        mean_width(&result.intervals),
    );
    let show = |i: usize, iv: &PredictionInterval| {
        println!(
            "  query {:>3}: true selectivity {:.5} in [{:.5}, {:.5}]? {}",
            i,
            bench.test.y[i],
            iv.lo,
            iv.hi,
            iv.contains(bench.test.y[i])
        );
    };
    for i in 0..5.min(result.intervals.len()) {
        show(i, &result.intervals[i]);
    }
}
