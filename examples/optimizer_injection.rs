//! The Table I experiment as an example: inject split-conformal upper bounds
//! into a cost-based join optimizer and watch tail q-errors and total plan
//! cost drop on a correlated workload.
//!
//! ```text
//! cargo run --release --example optimizer_injection
//! ```

use cardest::conformal::{conformal_quantile, percentiles, q_error};
use cardest::datagen::job_star;
use cardest::estimators::PostgresEstimator;
use cardest::optimizer::{optimize, true_cost, CostModel, PiInjectedOracle, TrueOracle};
use cardest::query::{
    generate_join_workload, random_templates, split, JoinGeneratorConfig,
};

fn main() {
    // A JOB-shaped star: skewed fan-in, strongly correlated foreign keys —
    // the regime where independence-assuming estimators underestimate.
    let star = job_star(15_000, 9);
    let estimator = PostgresEstimator::build(&star);
    let cost_model = CostModel::default();

    // Multi-join templates (>= 2 dims) keep the correlated-FK underestimation
    // regime; the selectivity window keeps magnitudes comparable so the
    // additive upper bound stays meaningful.
    let templates: Vec<_> = random_templates(&star, 24, 1)
        .into_iter()
        .filter(|t| t.dims.len() >= 2)
        .collect();
    let gen = JoinGeneratorConfig {
        min_selectivity: 0.01,
        max_selectivity: 0.5,
        ..Default::default()
    };
    let workload = generate_join_workload(&star, &templates, 60, &gen, 2);
    let parts = split(&workload, &[0.5, 0.5], 3);
    let (calib, test) = (&parts[0], &parts[1]);

    // Calibrate delta on the unmodified estimator's residuals (Algorithm 2;
    // no learned model needed — the estimator itself is the black box).
    let scores: Vec<f64> = calib
        .iter()
        .map(|lq| (lq.selectivity - estimator.estimate_selectivity(&lq.query)).abs())
        .collect();
    let delta = conformal_quantile(&scores, 0.1);
    println!("calibrated split-conformal delta = {delta:.5} (selectivity units)");
    let injected = PiInjectedOracle::new(estimator.clone(), delta);

    let n = star.fact().n_rows() as f64;
    let mut q_plain = Vec::new();
    let mut q_pi = Vec::new();
    let (mut cost_plain, mut cost_pi, mut cost_best) = (0.0, 0.0, 0.0);
    for lq in test {
        let est = estimator.estimate_selectivity(&lq.query);
        q_plain.push(q_error(est * n, lq.cardinality as f64, 1.0));
        q_pi.push(q_error((est + delta).min(1.0) * n, lq.cardinality as f64, 1.0));

        let (p0, _) = optimize(&star, &lq.query, &estimator, &cost_model);
        let (p1, _) = optimize(&star, &lq.query, &injected, &cost_model);
        let (pb, _) = optimize(&star, &lq.query, &TrueOracle::new(&star), &cost_model);
        cost_plain += true_cost(&star, &lq.query, &p0, &cost_model);
        cost_pi += true_cost(&star, &lq.query, &p1, &cost_model);
        cost_best += true_cost(&star, &lq.query, &pb, &cost_model);
    }

    let pp = percentiles(&q_plain);
    let pi = percentiles(&q_pi);
    println!("\nq-error percentiles of the estimates fed to the optimizer:");
    println!("{:<18} {:>8} {:>8} {:>8}", "", "P90", "P95", "P99");
    println!("{:<18} {:>8.2} {:>8.2} {:>8.2}", "plain estimates", pp.p90, pp.p95, pp.p99);
    println!("{:<18} {:>8.2} {:>8.2} {:>8.2}", "with PI bound", pi.p90, pi.p95, pi.p99);

    println!("\nsimulated execution cost over the test workload:");
    println!("  plain estimates : {cost_plain:.0}");
    println!("  with PI bound   : {cost_pi:.0}");
    println!("  perfect oracle  : {cost_best:.0}");
    println!(
        "  -> runtime reduction from PI injection: {:.1}%",
        100.0 * (cost_plain - cost_pi) / cost_plain
    );
}
