//! The managed [`PiService`]: one component that serves intervals, watches
//! for workload drift with the exchangeability martingale, and swaps to
//! sliding-window calibration until the new regime stabilizes.
//!
//! ```text
//! cargo run --release --example pi_service
//! ```

use cardest::conformal::{AbsoluteResidual, PiService, PiServiceConfig, ServiceMode};
use cardest::pipeline::{train_mscn, EncodedSet, SingleTableBench, SplitSpec};
use cardest::query::{generate_workload, GeneratorConfig};

fn main() {
    let table = cardest::datagen::dmv(10_000, 17);
    let bench = SingleTableBench::prepare(
        table.clone(),
        1_500,
        &GeneratorConfig::low_selectivity(),
        SplitSpec::default(),
        17,
    );
    let mscn = train_mscn(&bench.feat, &bench.train, 30, 17);
    let model = |f: &[f32]| {
        use cardest::conformal::Regressor;
        mscn.predict(f)
    };

    let mut svc = PiService::new(
        model,
        AbsoluteResidual,
        &bench.calib.x,
        &bench.calib.y,
        PiServiceConfig { window: 150, ..Default::default() },
    );

    // Phase 1: the production (low-selectivity) workload.
    let report = |svc: &PiService<_, _>, set: &EncodedSet, label: &str| {
        let mut covered = 0usize;
        for (x, &y) in set.x.iter().zip(&set.y) {
            covered += usize::from(svc.interval(x).clip(0.0, 1.0).contains(y));
        }
        println!(
            "{label}: mode {:?}, coverage {:.3}, calibration size {}",
            svc.mode(),
            covered as f64 / set.len() as f64,
            svc.calibration_size()
        );
    };
    report(&svc, &bench.test, "before stream     ");
    for (x, &y) in bench.test.x.iter().zip(&bench.test.y) {
        svc.observe(x, y);
    }
    report(&svc, &bench.test, "after calm stream ");

    // Phase 2: the workload shifts to heavy queries the model never saw.
    let shifted_gen = GeneratorConfig {
        min_selectivity: 0.15,
        max_selectivity: 0.9,
        max_range_frac: 0.9,
        min_predicates: 1,
        max_predicates: 2,
        ..Default::default()
    };
    let shifted = EncodedSet::from_workload(
        &bench.feat,
        &generate_workload(&table, 600, &shifted_gen, 99),
    );
    let half = shifted.len() / 2;
    for (x, &y) in shifted.x[..half].iter().zip(&shifted.y[..half]) {
        svc.observe(x, y);
    }
    println!(
        "\nshift stream ingested: {} shift(s) detected, mode now {:?}",
        svc.shifts_detected(),
        svc.mode()
    );
    let tail = EncodedSet {
        x: shifted.x[half..].to_vec(),
        y: shifted.y[half..].to_vec(),
    };
    report(&svc, &tail, "on shifted regime ");
    assert!(svc.shifts_detected() >= 1);
    println!(
        "\n(the service detected the drift and kept serving valid intervals; \
         it returns to {:?} once the global calibration absorbs the new regime)",
        ServiceMode::Stable
    );
}
