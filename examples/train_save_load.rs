//! Train offline, persist the model artifact, reload it elsewhere, and wrap
//! it with conformal calibration at serve time — the deployment shape a
//! query optimizer integration would use.
//!
//! ```text
//! cargo run --release --example train_save_load
//! ```

use cardest::conformal::{AbsoluteResidual, SplitConformal};
use cardest::estimators::Mscn;
use cardest::pipeline::{train_mscn, SingleTableBench, SplitSpec};
use cardest::query::GeneratorConfig;

fn main() {
    let table = cardest::datagen::forest(8_000, 21);
    let bench = SingleTableBench::prepare(
        table,
        1_200,
        &GeneratorConfig::low_selectivity(),
        SplitSpec::default(),
        21,
    );

    // --- Offline: train and persist. ---
    let model = train_mscn(&bench.feat, &bench.train, 30, 21);
    let artifact = serde_json::to_string(&model).expect("serialize model");
    let path = std::env::temp_dir().join("cardest_mscn_forest.json");
    std::fs::write(&path, &artifact).expect("write artifact");
    println!(
        "trained MSCN persisted to {} ({:.1} KiB)",
        path.display(),
        artifact.len() as f64 / 1024.0
    );

    // --- Online: reload and calibrate against the live workload. ---
    let reloaded: Mscn = serde_json::from_str(
        &std::fs::read_to_string(&path).expect("read artifact"),
    )
    .expect("deserialize model");
    let scp = SplitConformal::calibrate(
        reloaded,
        AbsoluteResidual,
        &bench.calib.x,
        &bench.calib.y,
        0.1,
    );
    let covered = bench
        .test
        .x
        .iter()
        .zip(&bench.test.y)
        .filter(|(f, &y)| scp.interval(f).clip(0.0, 1.0).contains(y))
        .count() as f64
        / bench.test.len() as f64;
    println!("reloaded model + conformal wrap: coverage {covered:.3} (target 0.90)");
    let probe = &bench.test.x[0];
    let iv = scp.interval(probe).clip(0.0, 1.0);
    println!(
        "example query: estimate {:.5}, 90% interval [{:.5}, {:.5}]",
        scp.predict(probe),
        iv.lo,
        iv.hi
    );
    let _ = std::fs::remove_file(&path);
}
