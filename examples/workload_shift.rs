//! Workload shift: what happens to coverage when the exchangeability
//! assumption breaks (paper Figs. 10–11), and how the martingale monitor
//! plus a sliding calibration window recover it.
//!
//! ```text
//! cargo run --release --example workload_shift
//! ```

use cardest::conformal::{
    coverage, AbsoluteResidual, ExchangeabilityMartingale, Regressor, ScoreFunction,
    SplitConformal, WindowedConformal,
};
use cardest::pipeline::{train_mscn, EncodedSet, SingleTableBench, SplitSpec};
use cardest::query::{generate_workload, GeneratorConfig};

fn main() {
    let table = cardest::datagen::dmv(10_000, 13);
    let bench = SingleTableBench::prepare(
        table.clone(),
        1_500,
        &GeneratorConfig::low_selectivity(),
        SplitSpec::default(),
        13,
    );
    let mscn = train_mscn(&bench.feat, &bench.train, 30, 13);
    let model = |f: &[f32]| mscn.predict(f);

    let scp = SplitConformal::calibrate(
        model,
        AbsoluteResidual,
        &bench.calib.x,
        &bench.calib.y,
        0.1,
    );

    // A drifted workload: heavy (high-selectivity) queries, a regime the
    // low-selectivity calibration set never saw — the model's residuals out
    // there dwarf the calibrated threshold.
    let drift_gen = GeneratorConfig {
        min_selectivity: 0.15,
        max_selectivity: 0.9,
        max_range_frac: 0.9,
        min_predicates: 1,
        max_predicates: 2,
        ..Default::default()
    };
    let drifted = EncodedSet::from_workload(
        &bench.feat,
        &generate_workload(&table, 400, &drift_gen, 99),
    );

    let eval = |set: &EncodedSet| {
        let ivs: Vec<_> =
            set.x.iter().map(|f| scp.interval(f).clip(0.0, 1.0)).collect();
        coverage(&ivs, &set.y)
    };
    println!("S-CP coverage on exchangeable test : {:.3}", eval(&bench.test));
    println!("S-CP coverage on drifted workload  : {:.3}  <- guarantee lost", eval(&drifted));

    // The martingale monitor fires on the drifted stream...
    let mut monitor = ExchangeabilityMartingale::new();
    for (x, &y) in bench.calib.x.iter().zip(&bench.calib.y) {
        monitor.observe(AbsoluteResidual.score(y, model.predict(x)));
    }
    for (x, &y) in drifted.x.iter().zip(&drifted.y) {
        monitor.observe(AbsoluteResidual.score(y, model.predict(x)));
    }
    println!(
        "martingale max growth: 10^{:.1} -> shift detected at capital 100: {}",
        monitor.max_growth_log10(),
        monitor.detects_shift_at(100.0)
    );

    // ...and a sliding-window calibration recovers coverage once the window
    // fills with post-shift queries.
    let mut windowed = WindowedConformal::new(model, AbsoluteResidual, 150, 0.1);
    for (x, &y) in bench.calib.x.iter().zip(&bench.calib.y) {
        windowed.observe(x, y);
    }
    let half = drifted.len() / 2;
    for (x, &y) in drifted.x[..half].iter().zip(&drifted.y[..half]) {
        windowed.observe(x, y);
    }
    let ivs: Vec<_> = drifted.x[half..]
        .iter()
        .map(|f| windowed.interval(f).clip(0.0, 1.0))
        .collect();
    println!(
        "windowed-conformal coverage on the drifted tail: {:.3}  <- recovered",
        coverage(&ivs, &drifted.y[half..])
    );
}
