//! Online conformal prediction: after each query executes, its true
//! cardinality is folded back into the calibration set, tightening future
//! intervals (paper §IV + Fig. 8). A sliding-window variant and the
//! martingale shift monitor run alongside.
//!
//! ```text
//! cargo run --release --example online_calibration
//! ```

use cardest::conformal::{
    AbsoluteResidual, ExchangeabilityMartingale, OnlineConformal, Regressor,
    ScoreFunction, WindowedConformal,
};
use cardest::pipeline::{train_mscn, SingleTableBench, SplitSpec};
use cardest::query::GeneratorConfig;

fn main() {
    let table = cardest::datagen::forest(10_000, 5);
    let bench = SingleTableBench::prepare(
        table,
        1_800,
        &GeneratorConfig::low_selectivity(),
        SplitSpec::default(),
        5,
    );
    let mscn = train_mscn(&bench.feat, &bench.train, 30, 5);
    let model = |f: &[f32]| mscn.predict(f);

    // Start with a tiny calibration set; stream the rest.
    let warm = 30;
    let mut online = OnlineConformal::new(
        model,
        AbsoluteResidual,
        &bench.calib.x[..warm],
        &bench.calib.y[..warm],
        0.1,
    );
    let mut window = WindowedConformal::new(model, AbsoluteResidual, 200, 0.1);
    let mut monitor = ExchangeabilityMartingale::new();

    let stream_x: Vec<&Vec<f32>> =
        bench.calib.x[warm..].iter().chain(bench.test.x.iter()).collect();
    let stream_y: Vec<f64> = bench.calib.y[warm..]
        .iter()
        .chain(bench.test.y.iter())
        .copied()
        .collect();

    println!("{:>8} {:>14} {:>14} {:>12}", "queries", "online delta", "window delta", "mart.log10");
    for (t, (x, &y)) in stream_x.iter().zip(&stream_y).enumerate() {
        online.observe(x, y);
        window.observe(x, y);
        monitor.observe(AbsoluteResidual.score(y, model.predict(x)));
        if [50usize, 200, 500, stream_x.len() - 1].contains(&t) {
            println!(
                "{:>8} {:>14.6} {:>14.6} {:>12.2}",
                t + 1,
                online.delta(),
                window.delta(),
                monitor.log10_martingale()
            );
        }
    }
    println!(
        "\nonline calibration grew to {} scores; shift detected at 1e4: {}",
        online.calibration_size(),
        monitor.detects_shift_at(1e4)
    );
    println!("(thresholds tighten as the calibration set absorbs the live workload)");
}
