//! Compares all four prediction-interval methods around one MSCN model —
//! the trade-off table a practitioner would consult (paper §V-D).
//!
//! ```text
//! cargo run --release --example compare_methods
//! ```

use cardest::pipeline::{
    run_cqr, run_jackknife_cv_mscn, run_locally_weighted, run_split_conformal,
    train_mscn, train_mscn_quantile_heads, EncodedSet, ScoreKind, SingleTableBench,
    SplitSpec,
};
use cardest::query::GeneratorConfig;

fn main() {
    let table = cardest::datagen::census(10_000, 11);
    let bench = SingleTableBench::prepare(
        table,
        1_500,
        &GeneratorConfig::low_selectivity(),
        SplitSpec::default(),
        11,
    );
    let alpha = 0.1;
    let floor = 1e-6;
    let epochs = 30;

    let mscn = train_mscn(&bench.feat, &bench.train, epochs, 11);

    let scp = run_split_conformal(
        mscn.clone(),
        ScoreKind::Residual,
        &bench.calib,
        &bench.test,
        alpha,
        floor,
    );

    let mut labeled = bench.train.clone();
    labeled.x.extend(bench.calib.x.iter().cloned());
    labeled.y.extend(bench.calib.y.iter().cloned());
    let labeled = EncodedSet { x: labeled.x, y: labeled.y };
    let jk = run_jackknife_cv_mscn(&bench.feat, &labeled, &bench.test, 10, alpha, epochs, 11);

    let lw = run_locally_weighted(
        mscn.clone(),
        ScoreKind::Residual,
        &bench.train,
        &bench.calib,
        &bench.test,
        alpha,
        floor,
        11,
    );

    let (lo, hi) = train_mscn_quantile_heads(&bench.feat, &bench.train, epochs, alpha, 11);
    let cqr = run_cqr(lo, hi, &bench.calib, &bench.test, alpha);

    println!(
        "{:<10} {:>9} {:>12} {:>12}   cost profile",
        "method", "coverage", "mean width", "med width"
    );
    let cost = |m: &str| match m {
        "S-CP" => "no extra training; constant width",
        "JK-CV+" => "K retrained models; symmetric width",
        "LW-S-CP" => "one GBDT difficulty model; adaptive width",
        "CQR" => "two quantile heads (loss change); adaptive + asymmetric",
        _ => "",
    };
    for r in [&scp, &jk, &lw, &cqr] {
        println!(
            "{:<10} {:>9.3} {:>12.6} {:>12.6}   {}",
            r.method,
            r.report.coverage,
            r.report.mean_width,
            r.report.median_width,
            cost(r.method)
        );
    }
}
