//! Prediction intervals on a multi-table join workload: a DSB-like star
//! schema, template-instantiated SPJ queries, and a star-layout MSCN wrapped
//! with split conformal + locally weighted conformal (paper Figs. 3–4).
//!
//! ```text
//! cargo run --release --example join_workload_pi
//! ```

use cardest::conformal::{AbsoluteResidual, SplitConformal};
use cardest::datagen::dsb_star;
use cardest::estimators::{Mscn, MscnConfig, MscnLayout, StarFeaturizer};
use cardest::pipeline::{run_locally_weighted, EncodedSet, ScoreKind};
use cardest::query::{
    generate_join_workload, random_templates, split, JoinGeneratorConfig,
};

fn main() {
    // A retail-shaped star schema: fact + date/store/item/customer.
    let star = dsb_star(15_000, 3);
    let feat = StarFeaturizer::new(&star);
    println!(
        "star schema: {} fact rows, {} dimensions",
        star.fact().n_rows(),
        star.n_dimensions()
    );

    // 15 SPJ templates, 100 queries each, split 50:25:25 (the paper's DSB
    // protocol).
    let templates = random_templates(&star, 15, 1);
    let workload =
        generate_join_workload(&star, &templates, 100, &JoinGeneratorConfig::default(), 2);
    let parts = split(&workload, &[0.5, 0.25, 0.25], 3);
    let encode = |w: &cardest::query::JoinWorkload| {
        let x: Vec<Vec<f32>> = w.iter().map(|lq| feat.encode(&lq.query)).collect();
        let y: Vec<f64> = w.iter().map(|lq| lq.selectivity).collect();
        (x, y)
    };
    let (train_x, train_y) = encode(&parts[0]);
    let (calib_x, calib_y) = encode(&parts[1]);
    let (test_x, test_y) = encode(&parts[2]);

    // Star-layout MSCN: predicate set + join-flag context.
    let mscn = Mscn::fit(
        MscnLayout::Star(feat.clone()),
        &train_x,
        &train_y,
        &MscnConfig { epochs: 30, ..Default::default() },
    );

    // S-CP wrapper.
    let scp =
        SplitConformal::calibrate(mscn.clone(), AbsoluteResidual, &calib_x, &calib_y, 0.1);
    let mut scp_cov = 0usize;
    let mut scp_width = 0.0;
    for (f, &y) in test_x.iter().zip(&test_y) {
        let a = scp.interval(f).clip(0.0, 1.0);
        scp_cov += usize::from(a.contains(y));
        scp_width += a.width();
    }
    let n = test_x.len() as f64;
    println!(
        "S-CP   : coverage {:.3}, mean width {:.5}",
        scp_cov as f64 / n,
        scp_width / n
    );

    // LW-S-CP wrapper (GBDT difficulty model trained in log space with
    // clamped U(X) — the pipeline's robust recipe).
    let train = EncodedSet { x: train_x, y: train_y };
    let calib = EncodedSet { x: calib_x, y: calib_y };
    let test = EncodedSet { x: test_x, y: test_y };
    let lw = run_locally_weighted(
        mscn,
        ScoreKind::Residual,
        &train,
        &calib,
        &test,
        0.1,
        1e-6,
        3,
    );
    println!(
        "LW-S-CP: coverage {:.3}, mean width {:.5}",
        lw.report.coverage, lw.report.mean_width
    );
    println!("(PI wrappers are join-agnostic: they only ever see residual lists)");
}
