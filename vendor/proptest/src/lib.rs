//! Offline stand-in for `proptest`.
//!
//! Re-implements the subset of the proptest DSL this workspace uses as a
//! deterministic seeded-loop harness: `proptest! { #[test] fn f(x in strat) {..} }`
//! expands to a plain `#[test]` that draws a fixed number of random cases
//! (seeded by the test's name, so failures reproduce) and runs the body on
//! each. No shrinking — a failing case panics with its case index so the
//! seed can be replayed.

use rand::rngs::StdRng;

/// Number of random cases each property runs.
pub const CASES: u32 = 64;

/// A source of random values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy just
/// draws a concrete value from an RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for ::core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for ::core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!((0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

/// Types with a canonical "anything goes" strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        use rand::Rng;
        rng.gen()
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The unconstrained strategy for `T`, as in `any::<bool>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// Inclusive-exclusive bounds on a generated collection's length.
    ///
    /// Implements `From` for `usize` ranges only, so integer literals in
    /// `vec(elem, 1..200)` infer as `usize` like they do with real proptest.
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: r.end().saturating_add(1) }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n.saturating_add(1) }
        }
    }

    /// Strategy for `Vec`s with element strategy `S`.
    pub struct VecStrategy<S> {
        elem: S,
        len: SizeRange,
    }

    /// A `Vec` strategy: each case draws a length from `len`, then that many
    /// elements from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, len: len.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            use rand::Rng;
            let n = rng.gen_range(self.len.lo..self.len.hi);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option::of`).
pub mod option {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// Strategy for `Option`s that are `Some` about three quarters of the time.
    pub struct OptionStrategy<S>(S);

    /// Wraps a strategy to sometimes produce `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            use rand::Rng;
            if rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Deterministic 64-bit FNV-1a, used to derive a per-test seed from its name.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Defines seeded property tests.
///
/// Each `fn name(pat in strategy, ...) { body }` becomes a `#[test]` that
/// runs [`CASES`] random cases. `prop_assert!`-family macros panic on
/// failure (no shrinking); `prop_assume!` skips the current case.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($p:pat_param in $s:expr),* $(,)?) $body:block)*) => {$(
        $(#[$attr])*
        fn $name() {
            use $crate::Strategy as _;
            let __seed = $crate::seed_from_name(stringify!($name));
            for __case in 0..$crate::CASES {
                let mut __rng = <$crate::test_runner::StdRng as $crate::test_runner::SeedableRng>::seed_from_u64(
                    __seed ^ (__case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                );
                $(let $p = ($s).generate(&mut __rng);)*
                // Reference the loop variable so `prop_assume!` (`continue`)
                // and failure messages can name the case.
                let _ = __case;
                $body
            }
        }
    )*};
}

/// Asserts a property holds; panics with the formatted message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// RNG plumbing referenced by the expanded [`proptest!`] macro.
pub mod test_runner {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

/// Everything a property-test file needs, as in `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, proptest, Strategy};

    /// The `prop::` module path used by the DSL (`prop::collection::vec`).
    pub mod prop {
        pub use crate::{collection, option};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn sum_of_lengths(xs in prop::collection::vec(0.0f64..1.0, 1..20), flag in any::<bool>()) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
            let _ = flag;
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n != 3);
            prop_assert!(n != 3);
        }

        #[test]
        fn map_applies(x in (0u32..5).prop_map(|v| v * 2)) {
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(
            crate::seed_from_name("some_test"),
            crate::seed_from_name("some_test")
        );
        assert_ne!(
            crate::seed_from_name("some_test"),
            crate::seed_from_name("other_test")
        );
    }
}
