//! Offline stand-in for `serde_derive`.
//!
//! Generates `Serialize`/`Deserialize` impls for the vendored `serde`'s
//! JSON-backed traits. Supports exactly the shapes this workspace derives:
//! non-generic named-field structs, tuple structs (newtype passthrough,
//! larger tuples as arrays), and enums with unit / tuple / named-field
//! variants (externally tagged, like real serde's default). No `#[serde]`
//! attributes. Parsing is done directly over the `proc_macro` token stream —
//! `syn`/`quote` are unavailable offline.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

enum Shape {
    /// `struct S { a: T, b: U }` — field names in order.
    NamedStruct(Vec<String>),
    /// `struct S(T, U);` — field count.
    TupleStruct(usize),
    /// `enum E { ... }`
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive: expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive stub does not support generic types (deriving `{name}`)");
    }
    let shape = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Shape::TupleStruct(0),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("derive: expected enum body, found {other:?}"),
        },
        other => panic!("derive stub supports struct/enum only, found `{other}`"),
    };
    Item { name, shape }
}

/// Advances past `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `pub(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

/// Splits a field/variant list at top-level commas. Groups (`()`, `[]`,
/// `{}`) are atomic tokens; only `<`/`>` need explicit depth tracking.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                parts.push(Vec::new());
                continue;
            }
            _ => {}
        }
        parts.last_mut().expect("non-empty parts").push(tt);
    }
    parts.retain(|p| !p.is_empty());
    parts
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|field| {
            let mut i = 0usize;
            skip_attrs_and_vis(&field, &mut i);
            match &field[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("derive: expected field name, found {other}"),
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .map(|part| {
            let mut i = 0usize;
            skip_attrs_and_vis(&part, &mut i);
            let name = match &part[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("derive: expected variant name, found {other}"),
            };
            i += 1;
            let kind = match part.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantKind::Tuple(count_tuple_fields(g.stream()))
                }
                None => VariantKind::Unit,
                Some(other) => {
                    panic!("derive: unsupported tokens after variant `{name}`: {other}")
                }
            };
            Variant { name, kind }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut b = String::from("__w.begin_object();\n");
            for f in fields {
                b.push_str(&format!(
                    "__w.key(\"{f}\"); ::serde::Serialize::serialize(&self.{f}, __w);\n"
                ));
            }
            b.push_str("__w.end_object();");
            b
        }
        Shape::TupleStruct(0) => String::from("__w.raw(\"null\".to_string());"),
        Shape::TupleStruct(1) => {
            String::from("::serde::Serialize::serialize(&self.0, __w);")
        }
        Shape::TupleStruct(n) => {
            let mut b = String::from("__w.begin_array();\n");
            for idx in 0..*n {
                b.push_str(&format!(
                    "__w.element(); ::serde::Serialize::serialize(&self.{idx}, __w);\n"
                ));
            }
            b.push_str("__w.end_array();");
            b
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vname} => __w.string(\"{vname}\"),\n"
                        ));
                    }
                    VariantKind::Tuple(1) => {
                        arms.push_str(&format!(
                            "{name}::{vname}(__f0) => {{ __w.begin_object(); \
                             __w.key(\"{vname}\"); \
                             ::serde::Serialize::serialize(__f0, __w); \
                             __w.end_object(); }}\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> =
                            (0..*n).map(|k| format!("__f{k}")).collect();
                        let mut inner = String::from("__w.begin_array();");
                        for b in &binders {
                            inner.push_str(&format!(
                                " __w.element(); ::serde::Serialize::serialize({b}, __w);"
                            ));
                        }
                        inner.push_str(" __w.end_array();");
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => {{ __w.begin_object(); \
                             __w.key(\"{vname}\"); {inner} __w.end_object(); }}\n",
                            binders.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let pattern: Vec<String> =
                            fields.iter().map(|f| format!("{f}: __{f}")).collect();
                        let mut inner = String::from("__w.begin_object();");
                        for f in fields {
                            inner.push_str(&format!(
                                " __w.key(\"{f}\"); ::serde::Serialize::serialize(__{f}, __w);"
                            ));
                        }
                        inner.push_str(" __w.end_object();");
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{ __w.begin_object(); \
                             __w.key(\"{vname}\"); {inner} __w.end_object(); }}\n",
                            pattern.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self, __w: &mut ::serde::json::Writer) {{\n{body}\n}}\n}}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: <_ as ::serde::Deserialize>::deserialize(__v.field(\"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "::core::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(0) => format!("::core::result::Result::Ok({name})"),
        Shape::TupleStruct(1) => format!(
            "::core::result::Result::Ok({name}(<_ as ::serde::Deserialize>::deserialize(__v)?))"
        ),
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|k| {
                    format!("<_ as ::serde::Deserialize>::deserialize(&__items[{k}])?")
                })
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::json::Value::Array(__items) if __items.len() == {n} => \
                 ::core::result::Result::Ok({name}({})),\n\
                 _ => ::core::result::Result::Err(::serde::json::Error::new(\
                 \"expected {n}-element array for {name}\")),\n}}",
                inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),\n"
                        ));
                    }
                    VariantKind::Tuple(1) => {
                        data_arms.push_str(&format!(
                            "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}(\
                             <_ as ::serde::Deserialize>::deserialize(__val)?)),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|k| {
                                format!(
                                    "<_ as ::serde::Deserialize>::deserialize(&__items[{k}])?"
                                )
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vname}\" => match __val {{\n\
                             ::serde::json::Value::Array(__items) if __items.len() == {n} => \
                             ::core::result::Result::Ok({name}::{vname}({})),\n\
                             _ => ::core::result::Result::Err(::serde::json::Error::new(\
                             \"expected {n}-element array for variant {vname}\")),\n}},\n",
                            inits.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: <_ as ::serde::Deserialize>::deserialize(\
                                     __val.field(\"{f}\")?)?"
                                )
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vname}\" => ::core::result::Result::Ok({name}::{vname} {{ {} }}),\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::json::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => ::core::result::Result::Err(::serde::json::Error::new(\
                 format!(\"unknown unit variant `{{__other}}` of {name}\"))),\n}},\n\
                 ::serde::json::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                 let (__tag, __val) = &__fields[0];\n\
                 match __tag.as_str() {{\n{data_arms}\
                 __other => ::core::result::Result::Err(::serde::json::Error::new(\
                 format!(\"unknown variant `{{__other}}` of {name}\"))),\n}}\n}},\n\
                 _ => ::core::result::Result::Err(::serde::json::Error::new(\
                 \"expected string or single-key object for enum {name}\")),\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(__v: &::serde::json::Value) -> \
         ::core::result::Result<Self, ::serde::json::Error> {{\n\
         #[allow(unused_variables)]\nlet __v = __v;\n{body}\n}}\n}}"
    )
}
