//! # ce-telemetry — out-of-band observability for the cardest workspace
//!
//! A dependency-free (std-only) telemetry substrate, vendored like
//! `ce-parallel`: a thread-safe metrics registry (atomic counters, gauges,
//! fixed-bucket log2 histograms with percentile reads), lightweight
//! hierarchical timing spans, and dual export as JSON and Prometheus text
//! exposition.
//!
//! ## Out-of-band contract
//!
//! Telemetry observes computations, it never participates in them: no
//! instrumented code path reads a metric back to make a decision, so enabling
//! or disabling telemetry cannot change any computed result — experiment
//! outputs stay byte-identical either way. Recording is globally gated by
//! [`set_enabled`]; while disabled (the default) every record operation
//! reduces to one relaxed atomic load and spans never read the clock, so the
//! disabled cost on a hot path is a branch.
//!
//! ## Shape
//!
//! * [`Counter`] — monotonically increasing `u64`.
//! * [`Gauge`] — last-write-wins `f64` (stored as bits in an `AtomicU64`).
//! * [`Histogram`] — 64 fixed log2 buckets over `u64` samples (bucket *i*
//!   holds values with bit length *i*, i.e. `[2^(i-1), 2^i)`), plus sum,
//!   count, and max; [`Histogram::quantile`] reads are conservative (they
//!   return the upper bound of the bucket containing the rank).
//! * [`Span`] — RAII timer; nested spans build a `/`-separated path per
//!   thread and record into the histogram `span.<path>` on drop.
//! * [`Registry`] — named metrics behind a mutex for registration; handles
//!   are `Arc`-backed so recording itself is lock-free.
//!
//! ```
//! ce_telemetry::set_enabled(true);
//! ce_telemetry::counter("queries").add(3);
//! {
//!     let _outer = ce_telemetry::Span::enter("serve");
//!     let _inner = ce_telemetry::Span::enter("predict");
//!     // dropping records span.serve/predict, then span.serve
//! }
//! let json = ce_telemetry::global().to_json();
//! assert!(json.contains("\"queries\": 3"));
//! ce_telemetry::set_enabled(false);
//! ```

#![warn(missing_docs)]

mod export;
mod metric;
mod registry;
mod span;
pub mod trace;

use std::sync::atomic::{AtomicBool, Ordering};

pub use export::escape_label_value;
pub use metric::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{global, MetricValue, Registry};
pub use span::Span;

/// Global recording switch; off by default.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns telemetry recording on or off process-wide. Registration and export
/// work either way; only *recording* (and span clock reads) is gated.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether telemetry recording is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A counter handle from the global registry.
pub fn counter(name: &str) -> Counter {
    global().counter(name)
}

/// A gauge handle from the global registry.
pub fn gauge(name: &str) -> Gauge {
    global().gauge(name)
}

/// A histogram handle from the global registry.
pub fn histogram(name: &str) -> Histogram {
    global().histogram(name)
}

#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    // Tests that toggle the global enable flag or reset the global registry
    // serialize on this lock so they cannot race each other.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
