//! Hand-rolled JSON and Prometheus text exposition (no serde dependency).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metric::bucket_upper_bound;
use crate::{HistogramSnapshot, MetricValue, Registry};

/// JSON number for an `f64`: `Debug` formatting is valid JSON for finite
/// values; non-finite values become `null` (JSON has no NaN/Inf literals).
fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value:?}")
    } else {
        "null".to_string()
    }
}

fn json_escape(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Cumulative `(le, count)` pairs for the occupied buckets plus the
/// `+Inf` total — the shared shape of both exports, so round-tripping either
/// format recovers identical values.
fn cumulative_buckets(h: &HistogramSnapshot) -> Vec<(Option<u64>, u64)> {
    let mut out = Vec::new();
    let mut cumulative = 0u64;
    for (i, &c) in h.buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        cumulative += c;
        if let Some(le) = bucket_upper_bound(i) {
            out.push((Some(le), cumulative));
        }
    }
    out.push((None, h.count));
    out
}

fn json_histogram(h: &HistogramSnapshot) -> String {
    let buckets: Vec<String> = cumulative_buckets(h)
        .into_iter()
        .map(|(le, cum)| match le {
            Some(le) => format!("[{le}, {cum}]"),
            None => format!("[\"+Inf\", {cum}]"),
        })
        .collect();
    format!(
        "{{\"count\": {}, \"sum\": {}, \"max\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [{}]}}",
        h.count,
        h.sum,
        h.max,
        h.quantile(0.50),
        h.quantile(0.95),
        h.quantile(0.99),
        buckets.join(", ")
    )
}

/// Renders a snapshot as a JSON object with `counters`, `gauges`, and
/// `histograms` sections.
pub(crate) fn to_json(snapshot: &BTreeMap<String, MetricValue>) -> String {
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut histograms = Vec::new();
    for (name, value) in snapshot {
        let key = json_escape(name);
        match value {
            MetricValue::Counter(v) => counters.push(format!("\"{key}\": {v}")),
            MetricValue::Gauge(v) => gauges.push(format!("\"{key}\": {}", json_f64(*v))),
            MetricValue::Histogram(h) => {
                histograms.push(format!("\"{key}\": {}", json_histogram(h)));
            }
        }
    }
    format!(
        "{{\n  \"counters\": {{{}}},\n  \"gauges\": {{{}}},\n  \"histograms\": {{{}}}\n}}",
        counters.join(", "),
        gauges.join(", "),
        histograms.join(", ")
    )
}

/// Escapes a Prometheus label *value* per the text exposition format:
/// backslash, double quote, and newline become `\\`, `\"`, and `\n`. Every
/// string interpolated into a `label="…"` position must pass through here —
/// fleet aggregation puts shard names (operator-controlled, potentially
/// hostile) into labels, and an unescaped quote would corrupt the whole
/// scrape.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Prometheus metric name: `cardest_` prefix, any character outside
/// `[a-zA-Z0-9_]` replaced by `_`.
fn prom_name(name: &str) -> String {
    let sanitized: String =
        name.chars().map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' }).collect();
    format!("cardest_{sanitized}")
}

fn prom_f64(value: f64) -> String {
    if value.is_nan() {
        "NaN".to_string()
    } else if value == f64::INFINITY {
        "+Inf".to_string()
    } else if value == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{value:?}")
    }
}

/// Renders a snapshot in the Prometheus text exposition format.
pub(crate) fn to_prometheus(snapshot: &BTreeMap<String, MetricValue>) -> String {
    let mut out = String::new();
    for (name, value) in snapshot {
        let pname = prom_name(name);
        match value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "# TYPE {pname} counter");
                let _ = writeln!(out, "{pname} {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {pname} gauge");
                let _ = writeln!(out, "{pname} {}", prom_f64(*v));
            }
            MetricValue::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {pname} histogram");
                for (le, cum) in cumulative_buckets(h) {
                    let le = match le {
                        Some(le) => le.to_string(),
                        None => "+Inf".to_string(),
                    };
                    let _ = writeln!(out, "{pname}_bucket{{le=\"{le}\"}} {cum}");
                }
                let _ = writeln!(out, "{pname}_sum {}", h.sum);
                let _ = writeln!(out, "{pname}_count {}", h.count);
            }
        }
    }
    out
}

impl Registry {
    /// Renders every registered metric as a JSON object.
    pub fn to_json(&self) -> String {
        to_json(&self.snapshot())
    }

    /// Renders every registered metric in the Prometheus text exposition
    /// format (metric names get a `cardest_` prefix and are sanitized).
    pub fn to_prometheus(&self) -> String {
        to_prometheus(&self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> Registry {
        let registry = Registry::new();
        registry.counter("queries").add(7);
        registry.gauge("gflops").set(1.25);
        let h = registry.histogram("span.serve/predict");
        for _ in 0..3 {
            h.record(10);
        }
        h.record(1000);
        registry
    }

    #[test]
    fn json_export_contains_all_sections() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        let registry = sample_registry();
        crate::set_enabled(false);
        let json = registry.to_json();
        assert!(json.contains("\"queries\": 7"), "{json}");
        assert!(json.contains("\"gflops\": 1.25"), "{json}");
        assert!(json.contains("\"span.serve/predict\": {\"count\": 4, \"sum\": 1030, \"max\": 1000"), "{json}");
        assert!(json.contains("[15, 3], [1023, 4], [\"+Inf\", 4]"), "{json}");
    }

    #[test]
    fn prometheus_export_has_cumulative_buckets() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        let registry = sample_registry();
        crate::set_enabled(false);
        let text = registry.to_prometheus();
        assert!(text.contains("# TYPE cardest_queries counter\ncardest_queries 7\n"), "{text}");
        assert!(text.contains("cardest_gflops 1.25"), "{text}");
        assert!(text.contains("cardest_span_serve_predict_bucket{le=\"15\"} 3"), "{text}");
        assert!(text.contains("cardest_span_serve_predict_bucket{le=\"1023\"} 4"), "{text}");
        assert!(text.contains("cardest_span_serve_predict_bucket{le=\"+Inf\"} 4"), "{text}");
        assert!(text.contains("cardest_span_serve_predict_sum 1030"), "{text}");
        assert!(text.contains("cardest_span_serve_predict_count 4"), "{text}");
    }

    /// Un-escapes one Prometheus label value the way a scraper would,
    /// walking escape sequences left to right.
    fn unescape_label_value(escaped: &str) -> String {
        let mut out = String::with_capacity(escaped.len());
        let mut chars = escaped.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                Some('n') => out.push('\n'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        }
        out
    }

    #[test]
    fn hostile_label_values_round_trip_through_escaping() {
        let hostile = [
            "plain-shard",
            "quote\"inject",
            "back\\slash",
            "new\nline",
            "all\\three\"at\nonce",
            "trailing\\",
            "\"} fake_metric 1\n",
            "",
        ];
        for name in hostile {
            let escaped = escape_label_value(name);
            // A scraper recovers the exact original value...
            assert_eq!(unescape_label_value(&escaped), name, "escaped form {escaped:?}");
            // ...and the escaped form can never terminate the quoted label
            // early (no raw quote) or split the sample line (no raw newline).
            assert!(!escaped.contains('\n'), "raw newline survived in {escaped:?}");
            let mut prev_backslash = false;
            for c in escaped.chars() {
                if c == '"' {
                    assert!(prev_backslash, "unescaped quote in {escaped:?}");
                }
                prev_backslash = c == '\\' && !prev_backslash;
            }
        }
    }

    #[test]
    fn distinct_hostile_values_stay_distinct_after_escaping() {
        // Injection-style collisions: these pairs differ, and must still
        // differ after escaping (otherwise two shards could alias one label).
        let pairs = [("a\\nb", "a\nb"), ("a\\\"b", "a\"b"), ("x\\\\", "x\\\\\\\\")];
        for (a, b) in pairs {
            assert_ne!(escape_label_value(a), escape_label_value(b), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn non_finite_gauges_export_safely() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        let registry = Registry::new();
        registry.gauge("bad").set(f64::NAN);
        registry.gauge("inf").set(f64::INFINITY);
        crate::set_enabled(false);
        let json = registry.to_json();
        assert!(json.contains("\"bad\": null"), "{json}");
        assert!(json.contains("\"inf\": null"), "{json}");
        let text = registry.to_prometheus();
        assert!(text.contains("cardest_bad NaN"), "{text}");
        assert!(text.contains("cardest_inf +Inf"), "{text}");
    }
}
