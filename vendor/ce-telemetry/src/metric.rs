//! The three metric primitives: counter, gauge, log2-bucket histogram.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of histogram buckets. Bucket `i` (for `i >= 1`) holds samples whose
/// bit length is `i`, i.e. values in `[2^(i-1), 2^i)`; bucket 0 holds exactly
/// the value 0; the last bucket absorbs everything from `2^62` up.
pub(crate) const N_BUCKETS: usize = 64;

/// Bucket index of one sample.
#[inline]
pub(crate) fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (N_BUCKETS - value.leading_zeros() as usize).min(N_BUCKETS - 1)
    }
}

/// Inclusive upper bound (`le`) of bucket `i`; `None` for the open-ended
/// last bucket.
pub(crate) fn bucket_upper_bound(i: usize) -> Option<u64> {
    if i >= N_BUCKETS - 1 {
        None
    } else {
        Some((1u64 << i) - 1)
    }
}

#[derive(Default)]
pub(crate) struct CounterCore {
    value: AtomicU64,
}

/// A monotonically increasing counter. Cloning shares the underlying value.
#[derive(Clone)]
pub struct Counter {
    pub(crate) core: Arc<CounterCore>,
}

impl Counter {
    /// Increments by one (no-op while telemetry is disabled).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n` (no-op while telemetry is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.core.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.core.value.load(Ordering::Relaxed)
    }
}

#[derive(Default)]
pub(crate) struct GaugeCore {
    bits: AtomicU64,
}

/// A last-write-wins `f64` gauge. Cloning shares the underlying value.
#[derive(Clone)]
pub struct Gauge {
    pub(crate) core: Arc<GaugeCore>,
}

impl Gauge {
    /// Sets the gauge (no-op while telemetry is disabled).
    #[inline]
    pub fn set(&self, value: f64) {
        if crate::enabled() {
            self.core.bits.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 if never set).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.core.bits.load(Ordering::Relaxed))
    }
}

pub(crate) struct HistogramCore {
    buckets: [AtomicU64; N_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// An immutable point-in-time view of a histogram, used by exporters and
/// quantile reads so one consistent set of bucket counts is inspected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) sample counts.
    pub buckets: Vec<u64>,
    /// Sum of all recorded samples.
    pub sum: u64,
    /// Number of recorded samples.
    pub count: u64,
    /// Largest recorded sample (0 if empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// The conservative `q`-quantile: the upper bound of the bucket holding
    /// rank `ceil(q * count)` (the recorded max for the open last bucket),
    /// or 0 for an empty histogram. `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return match bucket_upper_bound(i) {
                    Some(le) => le.min(self.max),
                    None => self.max,
                };
            }
        }
        self.max
    }
}

/// A fixed-bucket log2 histogram over `u64` samples (typically nanoseconds).
/// Cloning shares the underlying buckets.
#[derive(Clone)]
pub struct Histogram {
    pub(crate) core: Arc<HistogramCore>,
}

impl Histogram {
    /// Records one sample (no-op while telemetry is disabled).
    #[inline]
    pub fn record(&self, value: u64) {
        if !crate::enabled() {
            return;
        }
        let core = &*self.core;
        core.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(value, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.core.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.core.max.load(Ordering::Relaxed)
    }

    /// Consistent view of the current bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let core = &*self.core;
        HistogramSnapshot {
            buckets: core.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            sum: core.sum.load(Ordering::Relaxed),
            count: core.count.load(Ordering::Relaxed),
            max: core.max.load(Ordering::Relaxed),
        }
    }

    /// Conservative quantile read; see [`HistogramSnapshot::quantile`].
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    /// Median (conservative upper bound).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile (conservative upper bound).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile (conservative upper bound).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), Some(0));
        assert_eq!(bucket_upper_bound(10), Some(1023));
        assert_eq!(bucket_upper_bound(N_BUCKETS - 1), None);
    }

    #[test]
    fn counters_gauges_histograms_record_when_enabled() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        let registry = crate::Registry::new();
        let c = registry.counter("c");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = registry.gauge("g");
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        let h = registry.histogram("h");
        for v in [0, 1, 3, 100, 1000, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1_001_104);
        assert_eq!(h.max(), 1_000_000);
        crate::set_enabled(false);
    }

    #[test]
    fn disabled_recording_is_dropped() {
        let _guard = crate::test_lock();
        crate::set_enabled(false);
        let registry = crate::Registry::new();
        let c = registry.counter("c");
        c.add(10);
        let g = registry.gauge("g");
        g.set(1.0);
        let h = registry.histogram("h");
        h.record(42);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn quantiles_are_conservative_bucket_upper_bounds() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        let registry = crate::Registry::new();
        let h = registry.histogram("q");
        // 100 samples of 10 (bucket 4, le 15) and 1 sample of 1000 (le 1023).
        for _ in 0..100 {
            h.record(10);
        }
        h.record(1000);
        assert_eq!(h.p50(), 15);
        assert_eq!(h.p95(), 15);
        assert_eq!(h.quantile(1.0), 1000); // capped at the observed max
        assert_eq!(h.p99(), 15);
        crate::set_enabled(false);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let registry = crate::Registry::new();
        let h = registry.histogram("empty");
        assert_eq!(h.p50(), 0);
        assert_eq!(h.quantile(1.0), 0);
        assert_eq!(h.max(), 0);
    }
}
