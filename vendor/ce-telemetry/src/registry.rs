//! Named-metric registry: registration behind a mutex, recording lock-free.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::metric::{Counter, CounterCore, Gauge, GaugeCore, Histogram, HistogramCore};
use crate::HistogramSnapshot;

enum Metric {
    Counter(Arc<CounterCore>),
    Gauge(Arc<GaugeCore>),
    Histogram(Arc<HistogramCore>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A point-in-time value of one registered metric, as returned by
/// [`Registry::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram bucket snapshot.
    Histogram(HistogramSnapshot),
}

/// A collection of named metrics. Handles returned by the accessors stay
/// valid for the life of the registry and record without taking the lock.
///
/// Names are dot/slash-separated paths (`resilient.breaker_open`,
/// `span.serve/batch`); the Prometheus exporter sanitizes them.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Creates an empty registry.
    pub const fn new() -> Self {
        Registry { metrics: Mutex::new(BTreeMap::new()) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        // A panic while holding the lock can only happen on a kind-mismatch
        // bug; exporting best-effort data afterwards is still the right move.
        self.metrics.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The counter registered under `name`, creating it on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.lock();
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(CounterCore::default())));
        match metric {
            Metric::Counter(core) => Counter { core: core.clone() },
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// The gauge registered under `name`, creating it on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.lock();
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(GaugeCore::default())));
        match metric {
            Metric::Gauge(core) => Gauge { core: core.clone() },
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// The histogram registered under `name`, creating it on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut metrics = self.lock();
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(HistogramCore::default())));
        match metric {
            Metric::Histogram(core) => Histogram { core: core.clone() },
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    /// Removes every registered metric. Existing handles keep working but
    /// are detached from the registry (their values no longer export).
    pub fn reset(&self) {
        self.lock().clear();
    }

    /// Point-in-time values of every registered metric, in name order.
    pub fn snapshot(&self) -> BTreeMap<String, MetricValue> {
        let metrics = self.lock();
        metrics
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(core) => {
                        MetricValue::Counter(Counter { core: core.clone() }.get())
                    }
                    Metric::Gauge(core) => MetricValue::Gauge(Gauge { core: core.clone() }.get()),
                    Metric::Histogram(core) => {
                        MetricValue::Histogram(Histogram { core: core.clone() }.snapshot())
                    }
                };
                (name.clone(), value)
            })
            .collect()
    }
}

/// The process-wide registry used by the convenience accessors and spans.
pub fn global() -> &'static Registry {
    static GLOBAL: Registry = Registry::new();
    &GLOBAL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_and_snapshot_sees_them() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        let registry = Registry::new();
        let a = registry.counter("hits");
        let b = registry.counter("hits");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        registry.gauge("load").set(0.5);
        registry.histogram("lat").record(7);
        let snap = registry.snapshot();
        assert_eq!(snap["hits"], MetricValue::Counter(2));
        assert_eq!(snap["load"], MetricValue::Gauge(0.5));
        match &snap["lat"] {
            MetricValue::Histogram(h) => assert_eq!(h.count, 1),
            other => panic!("expected histogram, got {other:?}"),
        }
        registry.reset();
        assert!(registry.snapshot().is_empty());
        crate::set_enabled(false);
    }

    #[test]
    #[should_panic(expected = "is a counter, not a gauge")]
    fn kind_mismatch_panics() {
        let registry = Registry::new();
        registry.counter("x");
        registry.gauge("x");
    }
}
