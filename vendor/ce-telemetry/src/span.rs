//! RAII timing spans with per-thread hierarchical paths.

use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    /// Stack of active span names on this thread, innermost last.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// An RAII timer. While telemetry is enabled, entering a span pushes its name
/// onto a per-thread stack and dropping it records the elapsed nanoseconds
/// into the global histogram `span.<path>`, where `<path>` is the
/// `/`-joined stack of enclosing span names (e.g. `span.serve/predict`).
///
/// While telemetry is disabled, [`Span::enter`] reads no clock and touches no
/// thread-local state — the whole span costs one atomic load.
///
/// Spans must be dropped in LIFO order on the thread that entered them
/// (guaranteed by normal scoping); a span entered while disabled stays inert
/// even if telemetry is enabled before it drops.
#[must_use = "a span records its timing when dropped"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// Enters a span named `name`. No-op (no clock read) while telemetry is
    /// disabled.
    pub fn enter(name: &'static str) -> Span {
        if !crate::enabled() {
            return Span { name, start: None };
        }
        STACK.with(|stack| stack.borrow_mut().push(name));
        Span { name, start: Some(Instant::now()) }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed_ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let path = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = format!("span.{}", stack.join("/"));
            stack.pop();
            path
        });
        crate::global().histogram(&path).record(elapsed_ns);
        // Join the span tree with the active distributed trace, if any: the
        // span's leaf name becomes a stage so one trace record shows the
        // conformal layer's time next to the transport stages.
        crate::trace::stage(self.name, elapsed_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_record_hierarchical_paths() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        crate::global().reset();
        {
            let _outer = Span::enter("serve");
            {
                let _inner = Span::enter("predict");
            }
            {
                let _inner = Span::enter("predict");
            }
        }
        let snap = crate::global().snapshot();
        match &snap["span.serve"] {
            crate::MetricValue::Histogram(h) => assert_eq!(h.count, 1),
            other => panic!("expected histogram, got {other:?}"),
        }
        match &snap["span.serve/predict"] {
            crate::MetricValue::Histogram(h) => assert_eq!(h.count, 2),
            other => panic!("expected histogram, got {other:?}"),
        }
        crate::set_enabled(false);
        crate::global().reset();
    }

    #[test]
    fn disabled_spans_leave_no_trace() {
        let _guard = crate::test_lock();
        crate::set_enabled(false);
        crate::global().reset();
        {
            let _span = Span::enter("ghost");
        }
        assert!(crate::global().snapshot().is_empty());
    }

    #[test]
    fn span_entered_while_disabled_stays_inert() {
        let _guard = crate::test_lock();
        crate::set_enabled(false);
        crate::global().reset();
        let span = Span::enter("late");
        crate::set_enabled(true);
        drop(span);
        assert!(crate::global().snapshot().is_empty());
        crate::set_enabled(false);
    }
}
