//! Distributed trace context, per-stage latency attribution, and the anomaly
//! flight recorder (DESIGN.md §13).
//!
//! A request is traced end to end by a 128-bit [`TraceId`] minted at the
//! first hop (router, or shard for direct traffic) and propagated in the
//! `x-ce-trace` request/response header. While a request is being served,
//! the serving thread holds an *active trace* in thread-local storage; each
//! layer appends named stages (`park`, `dispatch`, `queue`, `window`,
//! `infer`, `write`, …) as plain `(name, nanoseconds)` pairs into a
//! fixed-capacity array — no allocation on the hot path. When the response
//! is flushed the completed [`TraceRecord`] is published into the *flight
//! recorder*: a lock-free seqlock ring that retains the last
//! [`TRACE_RING_CAP`] records plus the last [`EVENT_RING_CAP`] structured
//! [`EventRecord`]s (breaker transitions, coverage alarms, shard
//! ejection/readmission, shed/drain decisions).
//!
//! ## Sampling
//!
//! Tracing is head-sampled: [`should_sample`] admits one request in
//! [`sample_rate`] (default 64; `0` disables tracing entirely, `1` traces
//! everything). An un-sampled request costs one relaxed `fetch_add` and a
//! compare. An [`anomaly`] — a breaker opening, a coverage alarm firing —
//! opens a window during which *every* request is sampled, so the flight
//! recorder fills with the traffic surrounding the incident; the anomaly
//! also freezes a JSON snapshot of the ring, retrievable with
//! [`last_anomaly_dump`].
//!
//! ## Out-of-band contract
//!
//! Like the rest of `ce-telemetry`, tracing observes computations and never
//! participates in them: no traced code path reads trace state back to make
//! a decision, so results are byte-identical at any sample rate.

use std::cell::{RefCell, UnsafeCell};
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Maximum number of stages retained per trace; later stages are dropped.
pub const MAX_STAGES: usize = 16;
/// Completed trace records retained by the flight recorder.
pub const TRACE_RING_CAP: usize = 256;
/// Structured events retained by the flight recorder.
pub const EVENT_RING_CAP: usize = 128;
/// Maximum bytes of free-form detail retained per event.
pub const EVENT_DETAIL_CAP: usize = 64;
/// Default head-sampling rate: one request in this many is traced.
pub const DEFAULT_SAMPLE_RATE: u64 = 64;
/// How long after an anomaly every request is sampled.
pub const ANOMALY_WINDOW: Duration = Duration::from_secs(2);

// ---------------------------------------------------------------------------
// Trace IDs
// ---------------------------------------------------------------------------

/// A 128-bit trace identifier, wire-formatted as exactly 32 lowercase hex
/// digits. Zero is reserved to mean "no trace" and never minted or parsed.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TraceId(pub u128);

impl TraceId {
    /// Parses the wire form: exactly 32 lowercase hex digits, nonzero.
    /// Anything else — wrong length, uppercase, stray characters — is
    /// rejected so a hostile header can only ever be ignored.
    pub fn parse(s: &str) -> Option<TraceId> {
        if s.len() != 32 {
            return None;
        }
        let mut v: u128 = 0;
        for b in s.bytes() {
            let digit = match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                _ => return None,
            };
            v = (v << 4) | u128::from(digit);
        }
        if v == 0 {
            None
        } else {
            Some(TraceId(v))
        }
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// SplitMix64 finalizer: a full-avalanche 64-bit mix.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mints a fresh trace ID: a process-unique sequence number pushed through
/// SplitMix64 twice, seeded once per process from the wall clock and an
/// address (ASLR) so concurrent fleets do not collide.
pub fn mint() -> TraceId {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    static SEED: OnceLock<u64> = OnceLock::new();
    let seed = *SEED.get_or_init(|| {
        let clock = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5eed);
        let aslr = &SEQ as *const AtomicU64 as u64;
        splitmix64(clock ^ aslr.rotate_left(17))
    });
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let hi = splitmix64(seed ^ splitmix64(n));
    let lo = splitmix64(hi ^ n.wrapping_add(0x6a09_e667_f3bc_c909));
    let id = (u128::from(hi) << 64) | u128::from(lo);
    TraceId(if id == 0 { 1 } else { id })
}

// ---------------------------------------------------------------------------
// Process-relative clock
// ---------------------------------------------------------------------------

fn process_start() -> Instant {
    static T0: OnceLock<Instant> = OnceLock::new();
    *T0.get_or_init(Instant::now)
}

/// Nanoseconds since the first trace-clock read in this process. Trace and
/// event records are stamped on this monotonic scale so they order correctly
/// even across wall-clock adjustments.
pub fn now_ns() -> u64 {
    process_start().elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

// ---------------------------------------------------------------------------
// Sampling
// ---------------------------------------------------------------------------

static SAMPLE_RATE: AtomicU64 = AtomicU64::new(DEFAULT_SAMPLE_RATE);
static SAMPLE_SEQ: AtomicU64 = AtomicU64::new(0);
static ANOMALY_UNTIL_NS: AtomicU64 = AtomicU64::new(0);

/// Sets the head-sampling rate: trace one request in `rate`. `0` disables
/// tracing, `1` traces every request.
pub fn set_sample_rate(rate: u64) {
    SAMPLE_RATE.store(rate, Ordering::Relaxed);
}

/// The current head-sampling rate (see [`set_sample_rate`]).
pub fn sample_rate() -> u64 {
    SAMPLE_RATE.load(Ordering::Relaxed)
}

/// Head-sampling decision for one request. Inside an anomaly window every
/// request is sampled; otherwise one in [`sample_rate`] is. The un-sampled
/// cost is one relaxed `fetch_add` plus a compare.
pub fn should_sample() -> bool {
    let until = ANOMALY_UNTIL_NS.load(Ordering::Relaxed);
    if until != 0 {
        if now_ns() < until {
            return true;
        }
        // Window elapsed: fold it shut so later requests skip the clock read.
        let _ = ANOMALY_UNTIL_NS.compare_exchange(until, 0, Ordering::Relaxed, Ordering::Relaxed);
    }
    match SAMPLE_RATE.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        rate => SAMPLE_SEQ.fetch_add(1, Ordering::Relaxed).is_multiple_of(rate),
    }
}

// ---------------------------------------------------------------------------
// Stages and the active trace
// ---------------------------------------------------------------------------

/// One attributed latency stage inside a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stage {
    /// Stage name from the fixed taxonomy (DESIGN.md §13): `park`,
    /// `dispatch`, `queue`, `window`, `infer`, `write`, `route`, `network`,
    /// or a telemetry span name joined from the conformal layer.
    pub name: &'static str,
    /// Wall-clock nanoseconds attributed to this stage.
    pub ns: u64,
}

const NO_STAGE: Stage = Stage { name: "", ns: 0 };

/// A completed, published trace: the unit stored in the flight recorder and
/// served by `GET /debug/trace`.
#[derive(Clone, Copy, Debug)]
pub struct TraceRecord {
    /// The 128-bit trace ID (see [`TraceId`]).
    pub id: u128,
    /// Completion time in nanoseconds on the [`now_ns`] process clock.
    pub at_ns: u64,
    /// End-to-end nanoseconds observed at the hop that published the record.
    pub total_ns: u64,
    stages: [Stage; MAX_STAGES],
    len: u8,
}

impl TraceRecord {
    const EMPTY: TraceRecord =
        TraceRecord { id: 0, at_ns: 0, total_ns: 0, stages: [NO_STAGE; MAX_STAGES], len: 0 };

    /// The recorded stages, in arrival order.
    pub fn stages(&self) -> &[Stage] {
        &self.stages[..usize::from(self.len)]
    }

    /// Sum of all recorded stage durations in nanoseconds.
    pub fn stage_sum_ns(&self) -> u64 {
        self.stages().iter().map(|s| s.ns).sum()
    }
}

#[derive(Clone, Copy)]
struct ActiveTrace {
    id: u128,
    started_ns: u64,
    stages: [Stage; MAX_STAGES],
    len: u8,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
    /// Pre-handler stages (poller park, dispatch wait) stamped by the server
    /// before the sampling decision is taken; adopted by `begin`, discarded
    /// by the next `clear_pending`.
    static PENDING: RefCell<([Stage; 4], u8)> = const { RefCell::new(([NO_STAGE; 4], 0)) };
}

/// Discards any pre-handler stages staged on this thread. The server calls
/// this at the top of each request so stages from a previous request on the
/// same connection can never leak into the next trace.
pub fn clear_pending() {
    PENDING.with(|p| p.borrow_mut().1 = 0);
}

/// Stages a pre-handler latency (poller park, dispatch-queue wait) measured
/// before the sampling decision exists. If the handler then starts a trace,
/// [`begin`] adopts these; otherwise the next [`clear_pending`] drops them.
pub fn pending_stage(name: &'static str, ns: u64) {
    PENDING.with(|p| {
        let (stages, len) = &mut *p.borrow_mut();
        if usize::from(*len) < stages.len() {
            stages[usize::from(*len)] = Stage { name, ns };
            *len += 1;
        }
    });
}

/// Starts the active trace for this thread under `id`, adopting any staged
/// pre-handler stages. Replaces a previous active trace, if any (a trace
/// left unfinished is dropped, never published half-built).
pub fn begin(id: TraceId) {
    let mut trace =
        ActiveTrace { id: id.0, started_ns: now_ns(), stages: [NO_STAGE; MAX_STAGES], len: 0 };
    PENDING.with(|p| {
        let (stages, len) = &mut *p.borrow_mut();
        for stage in &stages[..usize::from(*len)] {
            trace.stages[usize::from(trace.len)] = *stage;
            trace.len += 1;
        }
        *len = 0;
    });
    ACTIVE.with(|a| *a.borrow_mut() = Some(trace));
}

/// The ID of the trace active on this thread, if any.
pub fn active_id() -> Option<TraceId> {
    ACTIVE.with(|a| a.borrow().as_ref().map(|t| TraceId(t.id)))
}

/// Appends a stage to the active trace. No-op (one thread-local borrow) when
/// no trace is active; stages past [`MAX_STAGES`] are dropped.
pub fn stage(name: &'static str, ns: u64) {
    ACTIVE.with(|a| {
        if let Some(trace) = a.borrow_mut().as_mut() {
            if usize::from(trace.len) < MAX_STAGES {
                trace.stages[usize::from(trace.len)] = Stage { name, ns };
                trace.len += 1;
            }
        }
    });
}

/// Completes the active trace and publishes it to the flight recorder.
/// `total_ns` is the caller-observed end-to-end time; pass `None` to use the
/// time since [`begin`]. No-op when no trace is active.
pub fn finish(total_ns: Option<u64>) {
    let Some(trace) = ACTIVE.with(|a| a.borrow_mut().take()) else { return };
    let at_ns = now_ns();
    let record = TraceRecord {
        id: trace.id,
        at_ns,
        total_ns: total_ns.unwrap_or_else(|| at_ns.saturating_sub(trace.started_ns)),
        stages: trace.stages,
        len: trace.len,
    };
    trace_ring().push(record);
}

/// Drops the active trace without publishing it (e.g. when a request dies
/// before producing a response).
pub fn abandon() {
    ACTIVE.with(|a| *a.borrow_mut() = None);
}

// ---------------------------------------------------------------------------
// Cross-hop stage propagation (the `x-ce-stages` response header)
// ---------------------------------------------------------------------------

/// Stage names a downstream hop may report in its `x-ce-stages` header.
/// Merging interns against this table so stage names stay `&'static str`
/// (and a hostile header can only ever contribute known names).
const KNOWN_STAGES: &[&str] = &[
    "park",
    "dispatch",
    "queue",
    "window",
    "infer",
    "write",
    "route",
    "network",
    "serve_predict",
    "pi_interval",
    "pi_batch",
    "pi_observe",
    "resilient_serve",
    "resilient_batch",
    "resilient_observe",
    "sanitize",
];

/// The stages that partition a hop's wall clock end to end. Everything
/// else in [`KNOWN_STAGES`] is a telemetry span joined as a stage — those
/// *nest inside* `infer`, so summing them alongside the transport stages
/// would double-count.
pub const TRANSPORT_STAGES: &[&str] =
    &["park", "dispatch", "queue", "window", "infer", "write", "route", "network"];

fn intern_stage(name: &str) -> Option<&'static str> {
    KNOWN_STAGES.iter().find(|k| **k == name).copied()
}

/// Renders the active trace's stages as the `x-ce-stages` wire form
/// (`name=ns;name=ns;…`) so a downstream hop can report its breakdown to the
/// hop that minted the trace. `None` when no trace is active.
pub fn stages_header() -> Option<String> {
    ACTIVE.with(|a| {
        let borrow = a.borrow();
        let trace = borrow.as_ref()?;
        let mut out = String::new();
        for stage in &trace.stages[..usize::from(trace.len)] {
            if !out.is_empty() {
                out.push(';');
            }
            let _ = write!(out, "{}={}", stage.name, stage.ns);
        }
        Some(out)
    })
}

/// Merges a downstream hop's `x-ce-stages` header into the active trace.
/// Unknown stage names and malformed pairs are skipped (the header crosses a
/// network boundary and is untrusted). Returns the summed nanoseconds of the
/// *transport* stages merged — span-joined stages nest inside `infer` and
/// must not count twice — so the caller can attribute the remainder of its
/// own forward time to the network.
pub fn merge_stages_header(header: &str) -> u64 {
    let mut merged = 0u64;
    for pair in header.split(';') {
        let Some((name, ns)) = pair.split_once('=') else { continue };
        let Some(name) = intern_stage(name.trim()) else { continue };
        let Ok(ns) = ns.trim().parse::<u64>() else { continue };
        stage(name, ns);
        if TRANSPORT_STAGES.contains(&name) {
            merged = merged.saturating_add(ns);
        }
    }
    merged
}

// ---------------------------------------------------------------------------
// Structured events
// ---------------------------------------------------------------------------

/// A structured flight-recorder event: a breaker transition, coverage alarm,
/// shard ejection/readmission, or shed/drain decision.
#[derive(Clone, Copy, Debug)]
pub struct EventRecord {
    /// Event time in nanoseconds on the [`now_ns`] process clock.
    pub at_ns: u64,
    /// Event kind, e.g. `breaker_open`, `coverage_alarm`, `shard_ejected`.
    pub kind: &'static str,
    /// Whether this event opened an anomaly sampling window.
    pub anomaly: bool,
    detail: [u8; EVENT_DETAIL_CAP],
    detail_len: u8,
}

impl EventRecord {
    const EMPTY: EventRecord = EventRecord {
        at_ns: 0,
        kind: "",
        anomaly: false,
        detail: [0; EVENT_DETAIL_CAP],
        detail_len: 0,
    };

    fn new(kind: &'static str, detail: &str, anomaly: bool) -> EventRecord {
        let mut record = EventRecord { at_ns: now_ns(), kind, anomaly, ..EventRecord::EMPTY };
        // Truncate to capacity on a char boundary so the stored bytes stay
        // valid UTF-8.
        let mut cut = detail.len().min(EVENT_DETAIL_CAP);
        while cut > 0 && !detail.is_char_boundary(cut) {
            cut -= 1;
        }
        record.detail[..cut].copy_from_slice(&detail.as_bytes()[..cut]);
        record.detail_len = cut as u8;
        record
    }

    /// The free-form detail string (truncated to [`EVENT_DETAIL_CAP`] bytes).
    pub fn detail(&self) -> &str {
        std::str::from_utf8(&self.detail[..usize::from(self.detail_len)]).unwrap_or("")
    }
}

/// Records a routine structured event into the flight recorder.
pub fn event(kind: &'static str, detail: &str) {
    event_ring().push(EventRecord::new(kind, detail, false));
}

/// Records an *anomaly* event: besides entering the flight recorder, it
/// opens an [`ANOMALY_WINDOW`] during which every request is sampled, and
/// freezes a JSON snapshot of the recorder (the triggering event plus the
/// traces and events that preceded it), retrievable with
/// [`last_anomaly_dump`].
pub fn anomaly(kind: &'static str, detail: &str) {
    event_ring().push(EventRecord::new(kind, detail, true));
    let now = now_ns();
    let until = now.saturating_add(ANOMALY_WINDOW.as_nanos().min(u128::from(u64::MAX)) as u64);
    let prev = ANOMALY_UNTIL_NS.swap(until, Ordering::Relaxed);
    // Freeze (and print) only for the anomaly that *opens* a window. A
    // storm of follow-on trips — a flapping breaker under load — extends
    // the 100%-sampling window but must not re-freeze per trip: the
    // forensically interesting state is the one surrounding the first
    // trigger, and the serialization is the only expensive step here.
    if prev >= now {
        return;
    }
    let dump = snapshot_json();
    eprintln!("flight-recorder: anomaly `{kind}` ({detail}); snapshot frozen");
    *last_anomaly().lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(dump);
}

fn last_anomaly() -> &'static Mutex<Option<String>> {
    static LAST: OnceLock<Mutex<Option<String>>> = OnceLock::new();
    LAST.get_or_init(|| Mutex::new(None))
}

/// The JSON snapshot frozen by the most recent [`anomaly`], if any.
pub fn last_anomaly_dump() -> Option<String> {
    last_anomaly().lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
}

// ---------------------------------------------------------------------------
// The flight recorder: lock-free seqlock rings
// ---------------------------------------------------------------------------

/// A fixed-capacity, lock-free, multi-writer ring of `Copy` records.
///
/// Writers claim a monotonically increasing index with one `fetch_add` and
/// publish through a per-slot sequence word (seqlock protocol: odd while a
/// write is in flight, `2·generation + 2` once slot content for that lap is
/// stable). Readers take no lock and never block a writer: a slot whose
/// sequence word moved during the copy is simply discarded, so a snapshot
/// only ever contains records that were fully written.
struct Ring<T: Copy> {
    cursor: AtomicU64,
    seqs: Box<[AtomicU64]>,
    slots: Box<[UnsafeCell<T>]>,
}

// SAFETY: all access to `slots` is mediated by the seqlock protocol above —
// readers discard any slot observed mid-write, writers own distinct indexes.
unsafe impl<T: Copy + Send> Sync for Ring<T> {}

impl<T: Copy> Ring<T> {
    fn new(cap: usize, empty: T) -> Ring<T> {
        Ring {
            cursor: AtomicU64::new(0),
            seqs: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            slots: (0..cap).map(|_| UnsafeCell::new(empty)).collect(),
        }
    }

    fn push(&self, value: T) {
        let cap = self.seqs.len() as u64;
        let idx = self.cursor.fetch_add(1, Ordering::AcqRel);
        let slot = (idx % cap) as usize;
        let generation = idx / cap;
        self.seqs[slot].store(2 * generation + 1, Ordering::Release);
        // SAFETY: writers collide on a slot only if the cursor laps the whole
        // ring mid-write; the volatile write cannot be torn *observably*
        // because readers validate the sequence word on both sides of their
        // copy and discard the slot on any mismatch.
        unsafe { std::ptr::write_volatile(self.slots[slot].get(), value) };
        self.seqs[slot].store(2 * generation + 2, Ordering::Release);
    }

    /// The last `cap` fully-written records, oldest first.
    fn snapshot(&self) -> Vec<T> {
        let end = self.cursor.load(Ordering::Acquire);
        let cap = self.seqs.len() as u64;
        let start = end.saturating_sub(cap);
        let mut out = Vec::with_capacity((end - start) as usize);
        for idx in start..end {
            let slot = (idx % cap) as usize;
            let want = 2 * (idx / cap) + 2;
            if self.seqs[slot].load(Ordering::Acquire) != want {
                continue;
            }
            // SAFETY: seqlock read — the copy is only kept if the sequence
            // word is unchanged on both sides, proving no concurrent write.
            let value = unsafe { std::ptr::read_volatile(self.slots[slot].get()) };
            if self.seqs[slot].load(Ordering::Acquire) == want {
                out.push(value);
            }
        }
        out
    }

    fn reset(&self) {
        self.cursor.store(0, Ordering::Release);
        for seq in self.seqs.iter() {
            seq.store(0, Ordering::Release);
        }
    }
}

fn trace_ring() -> &'static Ring<TraceRecord> {
    static RING: OnceLock<Ring<TraceRecord>> = OnceLock::new();
    RING.get_or_init(|| Ring::new(TRACE_RING_CAP, TraceRecord::EMPTY))
}

fn event_ring() -> &'static Ring<EventRecord> {
    static RING: OnceLock<Ring<EventRecord>> = OnceLock::new();
    RING.get_or_init(|| Ring::new(EVENT_RING_CAP, EventRecord::EMPTY))
}

/// Forces the flight recorder's one-time allocations (the two rings) so a
/// server can take them at startup instead of on the first sampled request.
pub fn warm() {
    let _ = trace_ring();
    let _ = event_ring();
}

/// The last [`TRACE_RING_CAP`] completed traces, oldest first.
pub fn trace_snapshot() -> Vec<TraceRecord> {
    trace_ring().snapshot()
}

/// The last [`EVENT_RING_CAP`] structured events, oldest first.
pub fn event_snapshot() -> Vec<EventRecord> {
    event_ring().snapshot()
}

/// Clears the flight recorder, the anomaly window, and the frozen anomaly
/// snapshot. Test/bench isolation only — never called on a serving path.
#[doc(hidden)]
pub fn reset() {
    trace_ring().reset();
    event_ring().reset();
    ANOMALY_UNTIL_NS.store(0, Ordering::Relaxed);
    *last_anomaly().lock().unwrap_or_else(std::sync::PoisonError::into_inner) = None;
    ACTIVE.with(|a| *a.borrow_mut() = None);
    PENDING.with(|p| p.borrow_mut().1 = 0);
}

// ---------------------------------------------------------------------------
// JSON export
// ---------------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders one trace record as a JSON object.
pub fn trace_to_json(record: &TraceRecord) -> String {
    let stages: Vec<String> = record
        .stages()
        .iter()
        .map(|s| format!("{{\"stage\": \"{}\", \"ns\": {}}}", json_escape(s.name), s.ns))
        .collect();
    format!(
        "{{\"trace\": \"{:032x}\", \"at_ns\": {}, \"total_ns\": {}, \"stages\": [{}]}}",
        record.id,
        record.at_ns,
        record.total_ns,
        stages.join(", ")
    )
}

fn event_to_json(record: &EventRecord) -> String {
    format!(
        "{{\"at_ns\": {}, \"kind\": \"{}\", \"anomaly\": {}, \"detail\": \"{}\"}}",
        record.at_ns,
        json_escape(record.kind),
        record.anomaly,
        json_escape(record.detail())
    )
}

/// Renders the whole flight recorder — sample rate, retained traces, and
/// retained events — as one JSON object. This is the body of
/// `GET /debug/trace` and the payload frozen by [`anomaly`].
pub fn snapshot_json() -> String {
    let traces: Vec<String> = trace_snapshot().iter().map(trace_to_json).collect();
    let events: Vec<String> = event_snapshot().iter().map(event_to_json).collect();
    format!(
        "{{\n\"sample_rate\": {},\n\"traces\": [{}],\n\"events\": [{}]\n}}",
        sample_rate(),
        traces.join(", "),
        events.join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_round_trip_and_reject_garbage() {
        let id = mint();
        assert_ne!(id.0, 0);
        let wire = id.to_string();
        assert_eq!(wire.len(), 32);
        assert_eq!(TraceId::parse(&wire), Some(id));
        for bad in [
            "",
            "123",
            "g2345678901234567890123456789012",                                  // non-hex
            "1234567890123456789012345678901",                                   // 31 chars
            "123456789012345678901234567890123",                                 // 33 chars
            "A2345678901234567890123456789012",                                  // uppercase
            "00000000000000000000000000000000",                                  // zero
            "0x345678901234567890123456789012",                                  // prefix
        ] {
            assert_eq!(TraceId::parse(bad), None, "accepted {bad:?}");
        }
    }

    #[test]
    fn minted_ids_are_distinct() {
        let a = mint();
        let b = mint();
        assert_ne!(a, b);
    }

    #[test]
    fn stages_accumulate_and_publish() {
        let _guard = crate::test_lock();
        reset();
        let id = mint();
        clear_pending();
        pending_stage("park", 11);
        pending_stage("dispatch", 22);
        begin(id);
        assert_eq!(active_id(), Some(id));
        stage("queue", 33);
        stage("infer", 44);
        finish(Some(1000));
        assert_eq!(active_id(), None);
        let traces = trace_snapshot();
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.id, id.0);
        assert_eq!(t.total_ns, 1000);
        let names: Vec<&str> = t.stages().iter().map(|s| s.name).collect();
        assert_eq!(names, ["park", "dispatch", "queue", "infer"]);
        assert_eq!(t.stage_sum_ns(), 11 + 22 + 33 + 44);
        reset();
    }

    #[test]
    fn pending_stages_do_not_leak_across_requests() {
        let _guard = crate::test_lock();
        reset();
        pending_stage("park", 99);
        clear_pending(); // next request: the server clears before staging
        begin(mint());
        finish(None);
        let traces = trace_snapshot();
        assert_eq!(traces.len(), 1);
        assert!(traces[0].stages().is_empty(), "leaked: {:?}", traces[0].stages());
        reset();
    }

    #[test]
    fn ring_wraps_keeping_the_newest_records() {
        let _guard = crate::test_lock();
        reset();
        for i in 0..(TRACE_RING_CAP as u64 + 10) {
            begin(TraceId(u128::from(i) + 1));
            finish(Some(i));
        }
        let traces = trace_snapshot();
        assert_eq!(traces.len(), TRACE_RING_CAP);
        assert_eq!(traces.first().unwrap().total_ns, 10);
        assert_eq!(traces.last().unwrap().total_ns, TRACE_RING_CAP as u64 + 9);
        reset();
    }

    #[test]
    fn concurrent_writers_never_produce_a_torn_snapshot() {
        let _guard = crate::test_lock();
        reset();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        begin(TraceId((u128::from(t) << 64) | u128::from(i + 1)));
                        stage("infer", t * 1_000_000 + i);
                        finish(Some(t * 1_000_000 + i));
                    }
                })
            })
            .collect();
        for _ in 0..50 {
            for record in trace_snapshot() {
                // Invariant linking the fields: a torn read would mix them.
                assert_eq!(record.stages().len(), 1);
                assert_eq!(record.stages()[0].ns, record.total_ns);
            }
        }
        for t in threads {
            t.join().unwrap();
        }
        reset();
    }

    #[test]
    fn sampling_honors_rate_and_anomaly_window() {
        let _guard = crate::test_lock();
        reset();
        set_sample_rate(0);
        assert!(!should_sample());
        set_sample_rate(1);
        assert!(should_sample());
        set_sample_rate(4);
        let hits = (0..400).filter(|_| should_sample()).count();
        assert_eq!(hits, 100, "1-in-4 sampling admitted {hits}/400");
        // An anomaly forces sampling regardless of rate.
        set_sample_rate(0);
        anomaly("test_anomaly", "forced");
        assert!(should_sample());
        let dump = last_anomaly_dump().expect("anomaly froze a snapshot");
        assert!(dump.contains("test_anomaly"), "{dump}");
        set_sample_rate(DEFAULT_SAMPLE_RATE);
        reset();
    }

    #[test]
    fn stages_header_round_trips_between_hops() {
        let _guard = crate::test_lock();
        reset();
        // Downstream hop (shard): record stages, render the header.
        begin(mint());
        stage("queue", 100);
        stage("window", 200);
        stage("infer", 300);
        let header = stages_header().expect("active trace renders");
        assert_eq!(header, "queue=100;window=200;infer=300");
        abandon();
        // Upstream hop (router): merge into its own trace.
        begin(mint());
        let merged = merge_stages_header(&header);
        assert_eq!(merged, 600);
        // Hostile header: unknown names and junk pairs are skipped.
        assert_eq!(merge_stages_header("evil=1;queue;=;queue=abc;infer=7"), 7);
        // Span-joined stages merge into the trace but do not count toward
        // the wall-clock sum — they nest inside `infer`.
        assert_eq!(merge_stages_header("pi_batch=5000;write=40"), 40);
        finish(None);
        let t = trace_snapshot();
        let names: Vec<&str> = t[0].stages().iter().map(|s| s.name).collect();
        assert_eq!(names, ["queue", "window", "infer", "infer", "pi_batch", "write"]);
        reset();
    }

    #[test]
    fn events_retain_kind_and_truncated_detail() {
        let _guard = crate::test_lock();
        reset();
        event("shard_ejected", "shard=alpha probes=3");
        let long = "x".repeat(EVENT_DETAIL_CAP + 40);
        event("shed", &long);
        let events = event_snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, "shard_ejected");
        assert_eq!(events[0].detail(), "shard=alpha probes=3");
        assert!(!events[0].anomaly);
        assert_eq!(events[1].detail().len(), EVENT_DETAIL_CAP);
        reset();
    }

    #[test]
    fn snapshot_json_carries_traces_and_events() {
        let _guard = crate::test_lock();
        reset();
        begin(TraceId(0xabc));
        stage("infer", 42);
        finish(Some(99));
        event("drain", "graceful");
        let json = snapshot_json();
        assert!(json.contains("\"trace\": \"00000000000000000000000000000abc\""), "{json}");
        assert!(json.contains("\"stage\": \"infer\", \"ns\": 42"), "{json}");
        assert!(json.contains("\"kind\": \"drain\""), "{json}");
        assert!(json.contains("\"sample_rate\": "), "{json}");
        reset();
    }
}
