//! Fleet membership: the shared ring + per-shard hysteresis counters, and a
//! background health checker that probes every shard's readiness endpoint.
//!
//! [`Fleet`] is the single source of routing truth shared by the router's
//! request path and the [`HealthChecker`]'s probe loop. Both feed the same
//! hysteresis state machine through [`Fleet::report`]:
//!
//! - a **live** shard is ejected after `fail_threshold` *consecutive*
//!   failures (probe failures and router-observed hard failures count
//!   alike);
//! - an **ejected** shard is readmitted after `recover_threshold`
//!   consecutive probe successes (only the prober can readmit — the router
//!   never talks to ejected shards, so it cannot observe recovery).
//!
//! Any success resets the failure streak and vice versa, so one flaky probe
//! neither ejects a healthy shard nor readmits a dead one — that is the
//! hysteresis. Ejection only masks the shard in the [`HashRing`]
//! (`DESIGN.md` §11): its keys fail over to each key's next candidate and
//! snap back on readmission, and every other key keeps its owner.
//!
//! Shards are keyed by stable logical *name*; the dialable address is a
//! mutable attribute ([`Fleet::set_addr`]). A shard restarted on a new port
//! re-registers its address and keeps its exact ring placement — address
//! changes never reshuffle keys.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::client::{ClientConfig, HttpClient};
use crate::ring::HashRing;

/// Tuning for the health state machine and probe loop.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Readiness path probed on every shard (expects `200`).
    pub probe_path: String,
    /// Delay between probe rounds.
    pub probe_interval: Duration,
    /// TCP connect timeout per probe.
    pub connect_timeout: Duration,
    /// Read timeout per probe.
    pub read_timeout: Duration,
    /// Consecutive failures that eject a live shard.
    pub fail_threshold: u32,
    /// Consecutive probe successes that readmit an ejected shard.
    pub recover_threshold: u32,
    /// Fractional jitter on `probe_interval` (±`probe_jitter` of the
    /// interval, uniformly drawn from a seeded SplitMix64 stream). A large
    /// fleet of probers started together would otherwise hit every shard in
    /// lockstep, turning the probe round itself into a synchronized load
    /// spike. `0.0` disables jitter; values are clamped to `[0, 1]`.
    pub probe_jitter: f64,
    /// Seed for the jitter stream — deterministic per checker, so test runs
    /// reproduce the same probe cadence.
    pub probe_seed: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            probe_path: "/readyz".to_string(),
            probe_interval: Duration::from_millis(50),
            connect_timeout: Duration::from_millis(250),
            read_timeout: Duration::from_millis(500),
            fail_threshold: 3,
            recover_threshold: 2,
            probe_jitter: 0.15,
            probe_seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

/// Liveness + streak counters for one shard.
#[derive(Debug, Clone, Copy, Default)]
struct ShardHealth {
    consecutive_failures: u32,
    consecutive_successes: u32,
}

/// Counters over the fleet's health history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Probe rounds completed by the checker.
    pub probe_rounds: u64,
    /// Individual probes that succeeded.
    pub probe_ok: u64,
    /// Individual probes that failed (connect error, read error, non-200).
    pub probe_failed: u64,
    /// Live → ejected transitions.
    pub ejections: u64,
    /// Ejected → live transitions.
    pub readmissions: u64,
}

struct FleetInner {
    ring: HashRing,
    addrs: Vec<SocketAddr>,
    health: Vec<ShardHealth>,
    stats: FleetStats,
}

/// Shared fleet state: the ring, shard addresses, and hysteresis counters.
/// Cheap to clone (an `Arc`); all methods take `&self`.
#[derive(Clone)]
pub struct Fleet {
    inner: Arc<Mutex<FleetInner>>,
    config: Arc<HealthConfig>,
}

impl Fleet {
    /// Builds the fleet from `(name, addr)` pairs, all initially live.
    ///
    /// # Panics
    /// Panics on zero `vnodes` or duplicate names (see [`HashRing::new`]).
    pub fn new(shards: &[(String, SocketAddr)], vnodes: usize, config: HealthConfig) -> Fleet {
        let names: Vec<String> = shards.iter().map(|(n, _)| n.clone()).collect();
        let addrs: Vec<SocketAddr> = shards.iter().map(|(_, a)| *a).collect();
        let ring = HashRing::new(&names, vnodes);
        let health = vec![ShardHealth::default(); names.len()];
        Fleet {
            inner: Arc::new(Mutex::new(FleetInner {
                ring,
                addrs,
                health,
                stats: FleetStats::default(),
            })),
            config: Arc::new(config),
        }
    }

    /// The health configuration this fleet was built with.
    pub fn config(&self) -> &HealthConfig {
        &self.config
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FleetInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Shard names in id order.
    pub fn shard_names(&self) -> Vec<String> {
        self.lock().ring.shards().to_vec()
    }

    /// Every shard with its current address and liveness.
    pub fn snapshot(&self) -> Vec<(String, SocketAddr, bool)> {
        let inner = self.lock();
        inner
            .ring
            .shards()
            .iter()
            .enumerate()
            .map(|(i, name)| (name.clone(), inner.addrs[i], inner.ring.is_live(name)))
            .collect()
    }

    /// Number of live shards.
    pub fn live_count(&self) -> usize {
        self.lock().ring.live_count()
    }

    /// Whether `name` is currently live.
    pub fn is_live(&self, name: &str) -> bool {
        self.lock().ring.is_live(name)
    }

    /// Health history counters.
    pub fn stats(&self) -> FleetStats {
        self.lock().stats
    }

    /// Updates a shard's dialable address (restart on a new port). Ring
    /// placement is untouched. Returns `false` for unknown names.
    pub fn set_addr(&self, name: &str, addr: SocketAddr) -> bool {
        let mut inner = self.lock();
        let Some(i) = inner.ring.shards().iter().position(|s| s == name) else {
            return false;
        };
        inner.addrs[i] = addr;
        true
    }

    /// The dialable address of `name`, if known.
    pub fn addr_of(&self, name: &str) -> Option<SocketAddr> {
        let inner = self.lock();
        inner.ring.shards().iter().position(|s| s == name).map(|i| inner.addrs[i])
    }

    /// Live failover candidates for `signature`: `(name, addr)` in ring
    /// order starting at the signature's owner.
    pub fn candidates(&self, signature: u64) -> Vec<(String, SocketAddr)> {
        let inner = self.lock();
        inner
            .ring
            .candidates(signature)
            .into_iter()
            .map(|name| {
                let i = inner
                    .ring
                    .shards()
                    .iter()
                    .position(|s| s == name)
                    .expect("candidate name is in the ring");
                (name.to_string(), inner.addrs[i])
            })
            .collect()
    }

    /// The first `r` distinct live shards for `signature` as `(name, addr)`:
    /// `replicas[0]` is the primary, the rest are backups in failover order.
    /// See [`HashRing::replica_set`] for the stability guarantees.
    pub fn replica_set(&self, signature: u64, r: usize) -> Vec<(String, SocketAddr)> {
        let inner = self.lock();
        inner
            .ring
            .replica_set(signature, r)
            .into_iter()
            .map(|name| {
                let i = inner
                    .ring
                    .shards()
                    .iter()
                    .position(|s| s == name)
                    .expect("replica name is in the ring");
                (name.to_string(), inner.addrs[i])
            })
            .collect()
    }

    /// Adds a shard to the *running* fleet: ring points land via
    /// [`HashRing::add_shard`] (bounded movement — keys only move *to* the
    /// newcomer), the address is registered, and hysteresis counters start
    /// fresh. The shard is immediately live and routable; the prober picks
    /// it up on its next round. Returns `false` on a duplicate name.
    pub fn add_shard(&self, name: &str, addr: SocketAddr) -> bool {
        let mut inner = self.lock();
        if !inner.ring.add_shard(name) {
            return false;
        }
        inner.addrs.push(addr);
        inner.health.push(ShardHealth::default());
        ce_telemetry::trace::event("shard_added", name);
        true
    }

    /// Feeds one success/failure observation for `name` into the hysteresis
    /// state machine. `from_probe` marks prober observations, the only kind
    /// allowed to readmit an ejected shard. Returns `true` if liveness
    /// flipped.
    pub fn report(&self, name: &str, ok: bool, from_probe: bool) -> bool {
        let mut inner = self.lock();
        let Some(i) = inner.ring.shards().iter().position(|s| s == name) else {
            return false;
        };
        if from_probe {
            if ok {
                inner.stats.probe_ok += 1;
            } else {
                inner.stats.probe_failed += 1;
            }
        }
        let live = inner.ring.is_live(name);
        let health = &mut inner.health[i];
        if ok {
            health.consecutive_failures = 0;
            // Only the prober advances an ejected shard's recovery streak; a
            // stray router-side success against an ejected shard (a race
            // against ejection) must not short-cut readmission.
            if live || from_probe {
                health.consecutive_successes = health.consecutive_successes.saturating_add(1);
            }
            let successes = health.consecutive_successes;
            if !live && from_probe && successes >= self.config.recover_threshold {
                let name = name.to_string();
                inner.ring.readmit(&name);
                inner.stats.readmissions += 1;
                inner.health[i] = ShardHealth::default();
                ce_telemetry::trace::event("shard_readmitted", &name);
                return true;
            }
        } else {
            health.consecutive_successes = 0;
            health.consecutive_failures = health.consecutive_failures.saturating_add(1);
            let failures = health.consecutive_failures;
            if live && failures >= self.config.fail_threshold {
                let name = name.to_string();
                inner.ring.eject(&name);
                inner.stats.ejections += 1;
                inner.health[i] = ShardHealth::default();
                ce_telemetry::trace::anomaly("shard_ejected", &name);
                return true;
            }
        }
        false
    }

    fn note_probe_round(&self) {
        self.lock().stats.probe_rounds += 1;
    }
}

/// Background prober: one thread, one `GET {probe_path}` per shard per
/// round, feeding [`Fleet::report`]. Ejected shards keep getting probed —
/// that is the readmission path.
pub struct HealthChecker {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl HealthChecker {
    /// Starts the probe loop over `fleet`.
    pub fn start(fleet: Fleet) -> HealthChecker {
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("ce-health-probe".into())
                .spawn(move || probe_loop(fleet, stop))
                .expect("spawn health checker")
        };
        HealthChecker { stop, thread: Some(thread) }
    }

    /// Stops the probe loop and joins the thread. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for HealthChecker {
    fn drop(&mut self) {
        self.stop();
    }
}

/// SplitMix64 step for the probe-jitter stream: deterministic, seeded, and
/// private to the checker thread (no contention with the ring's hashing).
fn jitter_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn probe_loop(fleet: Fleet, stop: Arc<AtomicBool>) {
    let config = fleet.config().clone();
    let client_config = ClientConfig {
        connect_timeout: config.connect_timeout,
        read_timeout: config.read_timeout,
        write_timeout: config.read_timeout,
    };
    let jitter = config.probe_jitter.clamp(0.0, 1.0);
    let mut rng_state = config.probe_seed;
    while !stop.load(Ordering::SeqCst) {
        for (name, addr, _live) in fleet.snapshot() {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            let started = std::time::Instant::now();
            let ok = probe_once(addr, &config.probe_path, client_config);
            if ce_telemetry::enabled() {
                // Per-shard probe latency (log2 buckets): a shard whose
                // probes slow down is drifting toward ejection before its
                // first failed probe — the histogram shows it early.
                ce_telemetry::histogram(&format!("cluster.probe_us.{name}"))
                    .record(started.elapsed().as_micros() as u64);
            }
            fleet.report(&name, ok, true);
        }
        fleet.note_probe_round();
        // Jitter the inter-round sleep by ±probe_jitter so a fleet of
        // checkers does not probe in lockstep. The draw is uniform over
        // [1-j, 1+j] × interval from a seeded stream, so any single cadence
        // is reproducible under test.
        let mut remaining = if jitter > 0.0 {
            let unit = jitter_next(&mut rng_state) as f64 / (u64::MAX as f64 + 1.0);
            let scale = 1.0 + jitter * (2.0 * unit - 1.0);
            config.probe_interval.mul_f64(scale)
        } else {
            config.probe_interval
        };
        // Sleep in small slices so stop() never waits a full interval.
        while remaining > Duration::ZERO && !stop.load(Ordering::SeqCst) {
            let slice = remaining.min(Duration::from_millis(10));
            std::thread::sleep(slice);
            remaining = remaining.saturating_sub(slice);
        }
    }
}

/// One probe: fresh connection (a wedged keep-alive stream must not fake
/// health), `GET path`, success iff status 200.
fn probe_once(addr: SocketAddr, path: &str, config: ClientConfig) -> bool {
    match HttpClient::connect_with(addr, config) {
        Ok(mut client) => matches!(client.get(path), Ok(resp) if resp.status == 200),
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(n: usize, fail: u32, recover: u32) -> Fleet {
        let shards: Vec<(String, SocketAddr)> = (0..n)
            .map(|i| (format!("s{i}"), format!("127.0.0.1:{}", 9000 + i).parse().unwrap()))
            .collect();
        Fleet::new(
            &shards,
            16,
            HealthConfig { fail_threshold: fail, recover_threshold: recover, ..Default::default() },
        )
    }

    #[test]
    fn ejection_needs_consecutive_failures() {
        let f = fleet(2, 3, 2);
        assert!(!f.report("s0", false, true));
        assert!(!f.report("s0", false, true));
        // A success in between resets the streak.
        assert!(!f.report("s0", true, true));
        assert!(!f.report("s0", false, true));
        assert!(!f.report("s0", false, true));
        assert!(f.is_live("s0"), "two failures after a success must not eject");
        assert!(f.report("s0", false, true), "third consecutive failure ejects");
        assert!(!f.is_live("s0"));
        assert_eq!(f.stats().ejections, 1);
    }

    #[test]
    fn readmission_needs_consecutive_probe_successes() {
        let f = fleet(2, 1, 2);
        assert!(f.report("s0", false, true));
        assert!(!f.is_live("s0"));
        // Router-side successes cannot readmit (the router never reaches an
        // ejected shard, so such a report would be a bug anyway).
        assert!(!f.report("s0", true, false));
        assert!(!f.report("s0", true, false));
        assert!(!f.is_live("s0"));
        // One probe success is not enough; a failure resets the streak.
        assert!(!f.report("s0", true, true));
        assert!(!f.report("s0", false, true));
        assert!(!f.report("s0", true, true));
        assert!(!f.is_live("s0"));
        assert!(f.report("s0", true, true), "second consecutive probe success readmits");
        assert!(f.is_live("s0"));
        assert_eq!(f.stats().readmissions, 1);
    }

    #[test]
    fn router_failures_count_toward_ejection() {
        let f = fleet(2, 2, 1);
        assert!(!f.report("s1", false, false));
        assert!(f.report("s1", false, true), "probe + router failures share the streak");
        assert!(!f.is_live("s1"));
    }

    #[test]
    fn set_addr_keeps_ring_placement() {
        let f = fleet(3, 3, 2);
        let sig = 0xfeed_f00d_u64;
        let before: Vec<String> =
            f.candidates(sig).into_iter().map(|(n, _)| n).collect();
        let new_addr: SocketAddr = "127.0.0.1:19999".parse().unwrap();
        assert!(f.set_addr("s1", new_addr));
        assert!(!f.set_addr("nope", new_addr));
        let after: Vec<(String, SocketAddr)> = f.candidates(sig);
        let names: Vec<String> = after.iter().map(|(n, _)| n.clone()).collect();
        assert_eq!(before, names, "address change must not move keys");
        assert_eq!(f.addr_of("s1"), Some(new_addr));
    }

    #[test]
    fn unknown_shard_reports_are_ignored() {
        let f = fleet(1, 1, 1);
        assert!(!f.report("ghost", false, true));
        assert!(f.is_live("s0"));
    }

    #[test]
    fn replica_set_is_the_candidate_prefix_with_addrs() {
        let f = fleet(4, 3, 2);
        for sig in [0u64, 7, 0xdead_beef, u64::MAX] {
            let cands = f.candidates(sig);
            let set = f.replica_set(sig, 2);
            assert_eq!(set.len(), 2);
            assert_eq!(set[..], cands[..2], "replica set must be the failover prefix");
            for (name, addr) in &set {
                assert_eq!(f.addr_of(name), Some(*addr));
            }
        }
    }

    #[test]
    fn add_shard_joins_live_and_routable() {
        let f = fleet(2, 3, 2);
        let addr: SocketAddr = "127.0.0.1:9100".parse().unwrap();
        assert!(f.add_shard("s2", addr));
        assert!(!f.add_shard("s2", addr), "duplicate add rejected");
        assert!(f.is_live("s2"));
        assert_eq!(f.addr_of("s2"), Some(addr));
        assert_eq!(f.live_count(), 3);
        // The newcomer is reachable through the hysteresis machinery too.
        assert!(!f.report("s2", false, false));
        assert!(!f.report("s2", false, false));
        assert!(f.report("s2", false, false), "third strike ejects the newcomer");
        assert!(!f.is_live("s2"));
    }
}
