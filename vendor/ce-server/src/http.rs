//! Incremental HTTP/1.1 request parsing and response serialization.
//!
//! The parser is a push-style state machine over an internal buffer: feed it
//! whatever bytes the socket produced ([`RequestParser::push`], or
//! [`RequestParser::fill_from`] to read straight off the socket with no
//! intermediate copy), then drain complete requests
//! ([`RequestParser::next_request`]). Partial reads, pipelined requests, and
//! head/body split across arbitrary chunk boundaries all fall out of the
//! same two calls. Every limit violation and syntax error is a typed
//! [`HttpError`] carrying the status code the connection should die with —
//! the parser never panics on hostile input.
//!
//! Parsing is **zero-copy**: [`Request`] borrows its method, target, header
//! fields, and body directly from the parser's buffer as `&str`/`&[u8]`
//! slices — nothing is materialized per request. Header positions are
//! recorded as offsets relative to the head start, so buffer compaction
//! (which slides unconsumed bytes to the front to reclaim space) never
//! invalidates them. In steady state a pooled connection's parser performs
//! **zero heap allocations** per request: the buffer and the span table
//! reach their high-water capacity during warm-up and are reused thereafter
//! ([`RequestParser::alloc_events`] counts the growth events so tests and
//! the server can assert this).
//!
//! Scope is deliberately the subset a loopback serving layer needs:
//! `Content-Length` bodies only (a request bearing `Transfer-Encoding` is
//! rejected with 501), no multiline header folding (400), CRLF or bare-LF
//! line endings.

use std::fmt;
use std::io;

/// Request/response header carrying the 128-bit distributed trace ID as 32
/// lowercase hex characters. The router mints one if the client did not send
/// one; shards echo it back so the caller can correlate.
pub const TRACE_HEADER: &str = "x-ce-trace";

/// Response header carrying per-stage latency attribution as
/// `name=ns;name=ns;…` — a shard reports its stages here so the router can
/// merge them into its own trace record for the same request.
pub const STAGES_HEADER: &str = "x-ce-stages";

/// Request header carrying a router-minted observation identity as 16
/// lowercase hex characters (a nonzero `u64`). Replicated truth posts and
/// hedge duplicates reuse the ID, so shards can deduplicate the prequential
/// update — observing the same truth twice would skew calibration.
pub const TRUTH_HEADER: &str = "x-ce-truth-id";

/// Request header naming the tenant a request bills against for per-tenant
/// admission control (token-bucket rate limiting and queue-depth gauges).
/// Absent or empty means the unlabeled tenant: requests without the header
/// still share one bucket rather than bypassing fairness entirely.
pub const TENANT_HEADER: &str = "x-ce-tenant";

/// Byte/size caps enforced while parsing a request head and body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParserLimits {
    /// Maximum bytes in the request line (method + target + version).
    pub max_request_line: usize,
    /// Maximum total bytes in the head (request line + all headers).
    pub max_head_bytes: usize,
    /// Maximum number of header fields.
    pub max_headers: usize,
    /// Maximum bytes in the body (`Content-Length` above this is rejected
    /// before any body byte is buffered).
    pub max_body_bytes: usize,
}

impl Default for ParserLimits {
    fn default() -> Self {
        ParserLimits {
            max_request_line: 8 * 1024,
            max_head_bytes: 32 * 1024,
            max_headers: 64,
            max_body_bytes: 4 * 1024 * 1024,
        }
    }
}

/// A typed parse failure; [`HttpError::status`] is the response code the
/// server answers with before closing the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The request line is malformed (missing parts, bad version tag, …).
    BadRequestLine,
    /// A header field is malformed (no colon, invalid name bytes, folding).
    BadHeader,
    /// The request line exceeds [`ParserLimits::max_request_line`].
    RequestLineTooLong,
    /// The head exceeds [`ParserLimits::max_head_bytes`] or
    /// [`ParserLimits::max_headers`].
    HeadersTooLarge,
    /// `Content-Length` is unparseable or conflicting.
    BadContentLength,
    /// The declared body exceeds [`ParserLimits::max_body_bytes`].
    BodyTooLarge,
    /// The request uses `Transfer-Encoding` (chunked uploads unsupported).
    UnsupportedTransferEncoding,
    /// An HTTP version other than 1.0 / 1.1.
    UnsupportedVersion,
}

impl HttpError {
    /// The status code a server should answer this error with.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequestLine
            | HttpError::BadHeader
            | HttpError::BadContentLength => 400,
            HttpError::RequestLineTooLong => 414,
            HttpError::HeadersTooLarge => 431,
            HttpError::BodyTooLarge => 413,
            HttpError::UnsupportedTransferEncoding => 501,
            HttpError::UnsupportedVersion => 505,
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            HttpError::BadRequestLine => "malformed request line",
            HttpError::BadHeader => "malformed header field",
            HttpError::RequestLineTooLong => "request line too long",
            HttpError::HeadersTooLarge => "headers too large",
            HttpError::BadContentLength => "bad content-length",
            HttpError::BodyTooLarge => "body too large",
            HttpError::UnsupportedTransferEncoding => "transfer-encoding unsupported",
            HttpError::UnsupportedVersion => "http version unsupported",
        };
        write!(f, "{msg}")
    }
}

impl std::error::Error for HttpError {}

/// Byte range of one header field inside the head region, relative to the
/// head start (so compaction, which only slides the whole region, never
/// invalidates it).
#[derive(Debug, Clone, Copy)]
struct HeaderSpan {
    name: (usize, usize),
    value: (usize, usize),
}

fn span_str(head: &[u8], span: (usize, usize)) -> &str {
    std::str::from_utf8(&head[span.0..span.1]).expect("span utf8-validated at parse time")
}

/// A borrowed view of a request's header fields, in arrival order with
/// original case (lookups are case-insensitive).
///
/// Backed either by the parser's span table (zero-copy path) or by a static
/// slice of pairs ([`Headers::from_pairs`], for synthetic requests in tests
/// and the router).
#[derive(Clone, Copy)]
pub struct Headers<'a> {
    repr: HeadersRepr<'a>,
}

#[derive(Clone, Copy)]
enum HeadersRepr<'a> {
    Spans { head: &'a [u8], spans: &'a [HeaderSpan] },
    Pairs(&'a [(&'a str, &'a str)]),
}

impl<'a> Headers<'a> {
    fn from_spans(head: &'a [u8], spans: &'a [HeaderSpan]) -> Headers<'a> {
        Headers { repr: HeadersRepr::Spans { head, spans } }
    }

    /// A header view over explicit name/value pairs (synthetic requests).
    pub fn from_pairs(pairs: &'a [(&'a str, &'a str)]) -> Headers<'a> {
        Headers { repr: HeadersRepr::Pairs(pairs) }
    }

    /// No header fields at all.
    pub fn empty() -> Headers<'static> {
        Headers { repr: HeadersRepr::Pairs(&[]) }
    }

    /// First value of header `name` (case-insensitive), if present.
    pub fn get(&self, name: &str) -> Option<&'a str> {
        self.iter().find(|(k, _)| k.eq_ignore_ascii_case(name)).map(|(_, v)| v)
    }

    /// Iterates `(name, value)` pairs in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = (&'a str, &'a str)> + 'a {
        let repr = self.repr;
        let mut i = 0;
        std::iter::from_fn(move || {
            let out = match repr {
                HeadersRepr::Spans { head, spans } => {
                    let s = spans.get(i)?;
                    (span_str(head, s.name), span_str(head, s.value))
                }
                HeadersRepr::Pairs(pairs) => *pairs.get(i)?,
            };
            i += 1;
            Some(out)
        })
    }

    /// Number of header fields.
    pub fn len(&self) -> usize {
        match self.repr {
            HeadersRepr::Spans { spans, .. } => spans.len(),
            HeadersRepr::Pairs(pairs) => pairs.len(),
        }
    }

    /// Whether there are no header fields.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for Headers<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

/// One parsed request, borrowing everything from the parser's buffer.
///
/// The borrow ends at the next parser call; to keep a request past that
/// (tests, queues), convert with [`Request::to_owned`].
#[derive(Debug, Clone, Copy)]
pub struct Request<'a> {
    /// Request method, upper-case as received (`GET`, `POST`, …).
    pub method: &'a str,
    /// Request target (path + optional query), as received.
    pub target: &'a str,
    /// `true` for HTTP/1.1, `false` for HTTP/1.0.
    pub http11: bool,
    /// Header fields in arrival order, original case.
    pub headers: Headers<'a>,
    /// The (possibly empty) body.
    pub body: &'a [u8],
}

impl<'a> Request<'a> {
    /// First value of header `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&'a str> {
        self.headers.get(name)
    }

    /// Whether the connection should be kept open after this request:
    /// HTTP/1.1 defaults to keep-alive unless `Connection: close`; HTTP/1.0
    /// only persists with an explicit `Connection: keep-alive`.
    pub fn keep_alive(&self) -> bool {
        keep_alive_of(self.http11, self.header("connection"))
    }

    /// The path part of the target (query string stripped).
    pub fn path(&self) -> &'a str {
        path_of(self.target)
    }

    /// Copies the request into owned storage, detaching it from the parser.
    pub fn to_owned(self) -> OwnedRequest {
        OwnedRequest {
            method: self.method.to_string(),
            target: self.target.to_string(),
            http11: self.http11,
            headers: self.headers.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            body: self.body.to_vec(),
        }
    }
}

/// An owned copy of a [`Request`] (see [`Request::to_owned`]) for callers
/// that must hold requests past the parser's next call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnedRequest {
    /// Request method, upper-case as received.
    pub method: String,
    /// Request target, as received.
    pub target: String,
    /// `true` for HTTP/1.1.
    pub http11: bool,
    /// Header fields in arrival order, original case.
    pub headers: Vec<(String, String)>,
    /// The (possibly empty) body.
    pub body: Vec<u8>,
}

impl OwnedRequest {
    /// First value of header `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }

    /// Same disposition logic as [`Request::keep_alive`].
    pub fn keep_alive(&self) -> bool {
        keep_alive_of(self.http11, self.header("connection"))
    }

    /// The path part of the target (query string stripped).
    pub fn path(&self) -> &str {
        path_of(&self.target)
    }
}

fn keep_alive_of(http11: bool, connection: Option<&str>) -> bool {
    match connection {
        Some(v) if v.eq_ignore_ascii_case("close") => false,
        Some(v) if !http11 && v.eq_ignore_ascii_case("keep-alive") => true,
        _ => http11,
    }
}

fn path_of(target: &str) -> &str {
    target.split('?').next().unwrap_or(target)
}

/// Internal phase of the parser between calls. Offsets are absolute buffer
/// indices, adjusted in lockstep when the buffer is compacted.
#[derive(Debug, Clone, Copy)]
enum Phase {
    /// Accumulating head bytes until the blank line.
    Head,
    /// Head parsed (spans populated); waiting for the full body.
    Body { head_start: usize, head_len: usize, body_len: usize },
}

/// A push-style incremental request parser (see module docs).
#[derive(Debug)]
pub struct RequestParser {
    limits: ParserLimits,
    /// Backing storage. `len()` is the high-water mark; the live region is
    /// `start..end` (tracked separately so socket reads can land directly in
    /// the tail without zero-fill or growth in steady state).
    buf: Vec<u8>,
    start: usize,
    end: usize,
    phase: Phase,
    /// Request-line spans, relative to the head start.
    method: (usize, usize),
    target: (usize, usize),
    http11: bool,
    /// Header spans for the request being parsed, relative to head start.
    spans: Vec<HeaderSpan>,
    /// Latched error: once poisoned, the connection must die.
    dead: Option<HttpError>,
    /// Heap allocation events (buffer/span-table growth) since creation.
    allocs: u64,
}

/// Socket read granularity for [`RequestParser::fill_from`].
const FILL_CHUNK: usize = 16 * 1024;

impl RequestParser {
    /// Creates a parser with the given limits.
    pub fn new(limits: ParserLimits) -> Self {
        RequestParser {
            limits,
            buf: Vec::new(),
            start: 0,
            end: 0,
            phase: Phase::Head,
            method: (0, 0),
            target: (0, 0),
            http11: false,
            spans: Vec::new(),
            dead: None,
            allocs: 0,
        }
    }

    /// Appends raw socket bytes to the internal buffer.
    pub fn push(&mut self, bytes: &[u8]) {
        self.ensure_tail(bytes.len());
        self.buf[self.end..self.end + bytes.len()].copy_from_slice(bytes);
        self.end += bytes.len();
    }

    /// Reads one chunk from `src` directly into the buffer tail (no
    /// intermediate copy) and returns the byte count (`Ok(0)` = EOF).
    pub fn fill_from(&mut self, src: &mut impl io::Read) -> io::Result<usize> {
        self.ensure_tail(FILL_CHUNK);
        let n = src.read(&mut self.buf[self.end..])?;
        self.end += n;
        Ok(n)
    }

    /// Bytes currently buffered but not yet consumed by a parsed request.
    pub fn buffered(&self) -> usize {
        self.end - self.start
    }

    /// Heap allocation events (buffer or span-table growth) since creation.
    /// Flat across requests in steady state — the zero-copy guarantee.
    pub fn alloc_events(&self) -> u64 {
        self.allocs
    }

    /// Clears all parse state (buffered bytes, phase, poisoning) while
    /// keeping the warmed buffers — this is what makes pooled reuse across
    /// connections allocation-free.
    pub fn reset(&mut self) {
        self.start = 0;
        self.end = 0;
        self.phase = Phase::Head;
        self.spans.clear();
        self.dead = None;
    }

    /// Tries to drain one complete request from the buffer.
    ///
    /// The returned [`Request`] borrows from the parser and must be dropped
    /// before the next parser call. `Ok(None)` means "need more bytes"; an
    /// `Err` poisons the parser (every later call returns the same error —
    /// the connection is unrecoverable because the byte stream's framing is
    /// lost).
    pub fn next_request(&mut self) -> Result<Option<Request<'_>>, HttpError> {
        if let Some(e) = &self.dead {
            return Err(e.clone());
        }
        let staged = match self.try_stage() {
            Ok(staged) => staged,
            Err(e) => {
                self.dead = Some(e.clone());
                return Err(e);
            }
        };
        if !staged {
            return Ok(None);
        }
        let Phase::Body { head_start, head_len, body_len } = self.phase else {
            unreachable!("try_stage returned true only from a complete Body phase");
        };
        // Consume the request's bytes *before* building the borrowed view:
        // the next call starts fresh while this view pins the buffer.
        let body_start = head_start + head_len;
        self.phase = Phase::Head;
        self.start = body_start + body_len;
        let head = &self.buf[head_start..body_start];
        Ok(Some(Request {
            method: span_str(head, self.method),
            target: span_str(head, self.target),
            http11: self.http11,
            headers: Headers::from_spans(head, &self.spans),
            body: &self.buf[body_start..body_start + body_len],
        }))
    }

    /// Advances the state machine until a complete request is staged
    /// (`Ok(true)`), more bytes are needed (`Ok(false)`), or the stream is
    /// malformed.
    fn try_stage(&mut self) -> Result<bool, HttpError> {
        loop {
            match self.phase {
                Phase::Head => {
                    let window = &self.buf[self.start..self.end];
                    let Some(head_len) = find_head_end(window) else {
                        // No blank line yet: enforce caps on the partial head
                        // so a drip-fed attacker cannot grow the buffer
                        // unboundedly.
                        if window.len() > self.limits.max_head_bytes {
                            return Err(HttpError::HeadersTooLarge);
                        }
                        if !window.contains(&b'\n')
                            && window.len() > self.limits.max_request_line
                        {
                            return Err(HttpError::RequestLineTooLong);
                        }
                        return Ok(false);
                    };
                    if head_len > self.limits.max_head_bytes {
                        return Err(HttpError::HeadersTooLarge);
                    }
                    let head_start = self.start;
                    self.parse_head(head_start, head_len)?;
                    let body_len = self.resolve_body_len(head_start, head_len)?;
                    self.phase = Phase::Body { head_start, head_len, body_len };
                }
                Phase::Body { head_start, head_len, body_len } => {
                    return Ok(self.end >= head_start + head_len + body_len);
                }
            }
        }
    }

    /// Parses the head region into request-line fields and header spans
    /// (all relative to `head_start`).
    fn parse_head(&mut self, head_start: usize, head_len: usize) -> Result<(), HttpError> {
        self.spans.clear();
        let spans_cap = self.spans.capacity();
        let head = &self.buf[head_start..head_start + head_len];
        let mut saw_request_line = false;
        let mut pos = 0;
        while pos < head.len() {
            let nl = match head[pos..].iter().position(|&b| b == b'\n') {
                Some(off) => pos + off,
                None => head.len(),
            };
            let mut line_end = nl;
            if line_end > pos && head[line_end - 1] == b'\r' {
                line_end -= 1;
            }
            let line_off = pos;
            let line_len = line_end - pos;
            pos = nl + 1;
            if line_len == 0 {
                continue; // request-terminating blank line (or split artifact)
            }
            if !saw_request_line {
                saw_request_line = true;
                let (method, target, http11) =
                    parse_request_line(head, line_off, line_len, &self.limits)?;
                self.method = method;
                self.target = target;
                self.http11 = http11;
            } else {
                if self.spans.len() >= self.limits.max_headers {
                    return Err(HttpError::HeadersTooLarge);
                }
                self.spans.push(parse_header_line(head, line_off, line_len)?);
            }
        }
        if !saw_request_line {
            return Err(HttpError::BadRequestLine);
        }
        if self.spans.capacity() != spans_cap {
            self.allocs += 1;
        }
        Ok(())
    }

    /// Resolves the staged request's body length from its headers, enforcing
    /// the body cap *before* any body byte is buffered.
    fn resolve_body_len(&self, head_start: usize, head_len: usize) -> Result<usize, HttpError> {
        let head = &self.buf[head_start..head_start + head_len];
        let headers = Headers::from_spans(head, &self.spans);
        if headers.get("transfer-encoding").is_some() {
            return Err(HttpError::UnsupportedTransferEncoding);
        }
        let mut lengths =
            headers.iter().filter(|(k, _)| k.eq_ignore_ascii_case("content-length"));
        let Some((_, first)) = lengths.next() else {
            return Ok(0);
        };
        // Duplicate Content-Length headers with different values are another
        // smuggling vector.
        if lengths.any(|(_, v)| v != first) {
            return Err(HttpError::BadContentLength);
        }
        let n: usize = first.parse().map_err(|_| HttpError::BadContentLength)?;
        if n > self.limits.max_body_bytes {
            return Err(HttpError::BodyTooLarge);
        }
        Ok(n)
    }

    /// Makes room for `extra` more bytes at the tail: cheap index reset when
    /// everything is consumed, compaction (slide live bytes to the front)
    /// when leading space can be reclaimed, growth only as a last resort.
    fn ensure_tail(&mut self, extra: usize) {
        if self.start == self.end && matches!(self.phase, Phase::Head) {
            self.start = 0;
            self.end = 0;
        }
        if self.end + extra <= self.buf.len() {
            return;
        }
        self.compact();
        if self.end + extra <= self.buf.len() {
            return;
        }
        let needed = self.end + extra;
        if needed > self.buf.capacity() {
            self.allocs += 1;
            self.buf.reserve(needed - self.buf.len());
        }
        // Extend the high-water mark to the full capacity so later fills
        // reuse it without further growth.
        let cap = self.buf.capacity();
        self.buf.resize(cap, 0);
    }

    /// Slides the live region to the buffer front, adjusting the absolute
    /// offsets in `phase` (header spans are head-relative and unaffected).
    fn compact(&mut self) {
        if self.start == 0 {
            return;
        }
        let shift = self.start;
        self.buf.copy_within(shift..self.end, 0);
        self.start = 0;
        self.end -= shift;
        if let Phase::Body { head_start, .. } = &mut self.phase {
            *head_start -= shift;
        }
    }
}

/// Index one past the head's terminating blank line (`\r\n\r\n` or `\n\n`,
/// mixed endings included), or `None` if the head is still incomplete.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            // A line boundary; look at what follows.
            let rest = &buf[i + 1..];
            if rest.first() == Some(&b'\n') {
                return Some(i + 2);
            }
            if rest.len() >= 2 && rest[0] == b'\r' && rest[1] == b'\n' {
                return Some(i + 3);
            }
        }
        i += 1;
    }
    None
}

/// Parses the request line at `head[off..off + len]`, returning head-relative
/// method/target spans and the HTTP/1.1 flag.
#[allow(clippy::type_complexity)]
fn parse_request_line(
    head: &[u8],
    off: usize,
    len: usize,
    limits: &ParserLimits,
) -> Result<((usize, usize), (usize, usize), bool), HttpError> {
    let line = &head[off..off + len];
    if line.len() > limits.max_request_line {
        return Err(HttpError::RequestLineTooLong);
    }
    std::str::from_utf8(line).map_err(|_| HttpError::BadRequestLine)?;
    // Tokenize on (runs of) spaces: exactly three tokens expected.
    let mut tokens = [(0usize, 0usize); 3];
    let mut count = 0;
    let mut i = 0;
    while i < line.len() {
        if line[i] == b' ' {
            i += 1;
            continue;
        }
        let t0 = i;
        while i < line.len() && line[i] != b' ' {
            i += 1;
        }
        if count == 3 {
            return Err(HttpError::BadRequestLine);
        }
        tokens[count] = (t0, i);
        count += 1;
    }
    if count != 3 {
        return Err(HttpError::BadRequestLine);
    }
    let [(m0, m1), (t0, t1), (v0, v1)] = tokens;
    if !line[m0..m1]
        .iter()
        .all(|&b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
    {
        return Err(HttpError::BadRequestLine);
    }
    let http11 = match &line[v0..v1] {
        b"HTTP/1.1" => true,
        b"HTTP/1.0" => false,
        v if v.starts_with(b"HTTP/") => return Err(HttpError::UnsupportedVersion),
        _ => return Err(HttpError::BadRequestLine),
    };
    Ok(((off + m0, off + m1), (off + t0, off + t1), http11))
}

/// Parses the header field at `head[off..off + len]` into a head-relative
/// span, with the value trimmed of surrounding whitespace.
fn parse_header_line(head: &[u8], off: usize, len: usize) -> Result<HeaderSpan, HttpError> {
    let line = &head[off..off + len];
    // Obsolete line folding (continuation lines starting with SP/HTAB) is a
    // request-smuggling vector; reject it outright.
    if line[0] == b' ' || line[0] == b'\t' {
        return Err(HttpError::BadHeader);
    }
    let text = std::str::from_utf8(line).map_err(|_| HttpError::BadHeader)?;
    let colon = text.find(':').ok_or(HttpError::BadHeader)?;
    let name = &text[..colon];
    if name.is_empty()
        || !name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.'))
    {
        return Err(HttpError::BadHeader);
    }
    let raw = &text[colon + 1..];
    let lead = raw.len() - raw.trim_start().len();
    let trimmed_len = raw.trim().len();
    let v0 = colon + 1 + lead;
    Ok(HeaderSpan { name: (off, off + colon), value: (off + v0, off + v0 + trimmed_len) })
}

/// Canonical reason phrase for the status codes this crate emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// An HTTP response under construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers (`Content-Length` and `Connection` are managed by the
    /// serializer / server and must not be set here).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with the given status and empty body.
    pub fn new(status: u16) -> Self {
        Response { status, headers: Vec::new(), body: Vec::new() }
    }

    /// Adds a header field.
    pub fn header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Sets the body.
    pub fn body(mut self, body: impl Into<Vec<u8>>) -> Self {
        self.body = body.into();
        self
    }

    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response::new(status).header("Content-Type", "text/plain; charset=utf-8").body(body)
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response::new(status).header("Content-Type", "application/json").body(body)
    }

    /// Serializes the response head + body into `out` (typically a pooled,
    /// already-warm buffer — the allocation-free hot path). `Content-Length`
    /// is always emitted (responses are never chunked, so any client —
    /// including pipelining ones — can frame them), plus the requested
    /// `Connection` disposition.
    pub fn serialize_into(&self, keep_alive: bool, out: &mut Vec<u8>) {
        out.extend_from_slice(b"HTTP/1.1 ");
        push_dec(out, self.status as u64);
        out.push(b' ');
        out.extend_from_slice(reason_phrase(self.status).as_bytes());
        out.extend_from_slice(b"\r\n");
        for (name, value) in &self.headers {
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(value.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        out.extend_from_slice(b"Content-Length: ");
        push_dec(out, self.body.len() as u64);
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(if keep_alive {
            b"Connection: keep-alive\r\n".as_slice()
        } else {
            b"Connection: close\r\n".as_slice()
        });
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
    }

    /// Serializes into a fresh buffer (see [`Response::serialize_into`]).
    pub fn serialize(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.body.len());
        self.serialize_into(keep_alive, &mut out);
        out
    }
}

/// Appends `v` in decimal without going through `format!`.
fn push_dec(out: &mut Vec<u8>, mut v: u64) {
    let mut tmp = [0u8; 20];
    let mut i = tmp.len();
    loop {
        i -= 1;
        tmp[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.extend_from_slice(&tmp[i..]);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(bytes: &[u8]) -> Result<Option<OwnedRequest>, HttpError> {
        let mut p = RequestParser::new(ParserLimits::default());
        p.push(bytes);
        Ok(p.next_request()?.map(|r| r.to_owned()))
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse_one(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .expect("complete");
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/healthz");
        assert!(req.http11);
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
        assert!(req.keep_alive());
    }

    #[test]
    fn parses_post_with_body_and_bare_lf() {
        let req = parse_one(b"POST /v1/predict HTTP/1.1\nContent-Length: 4\n\nabcd")
            .unwrap()
            .expect("complete");
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn incremental_byte_at_a_time() {
        let raw = b"POST /p HTTP/1.1\r\nContent-Length: 3\r\nX-K: v\r\n\r\nxyz";
        let mut p = RequestParser::new(ParserLimits::default());
        for (i, b) in raw.iter().enumerate() {
            p.push(std::slice::from_ref(b));
            let out = p.next_request().unwrap();
            if i + 1 < raw.len() {
                assert!(out.is_none(), "complete too early at byte {i}");
            } else {
                let req = out.expect("complete at last byte");
                assert_eq!(req.body, b"xyz".as_slice());
                assert_eq!(req.header("x-k"), Some("v"));
            }
        }
    }

    #[test]
    fn pipelined_requests_drain_in_order() {
        let mut p = RequestParser::new(ParserLimits::default());
        p.push(b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /c HTTP/1.1\r\n\r\n");
        let a = p.next_request().unwrap().unwrap().to_owned();
        let b = p.next_request().unwrap().unwrap().to_owned();
        let c = p.next_request().unwrap().unwrap().to_owned();
        assert_eq!((a.target.as_str(), b.target.as_str(), c.target.as_str()), ("/a", "/b", "/c"));
        assert_eq!(b.body, b"hi");
        assert!(p.next_request().unwrap().is_none());
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for bad in [
            &b"GET\r\n\r\n"[..],
            b"GET /x\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"G@T /x HTTP/1.1\r\n\r\n",
            b" / HTTP/1.1\r\n\r\n",
            b"GET /x FTP/1.1\r\n\r\n",
        ] {
            assert!(parse_one(bad).is_err(), "accepted {:?}", String::from_utf8_lossy(bad));
        }
        assert_eq!(
            parse_one(b"GET /x HTTP/2.0\r\n\r\n"),
            Err(HttpError::UnsupportedVersion)
        );
    }

    #[test]
    fn tolerates_runs_of_spaces_in_request_line() {
        let req = parse_one(b"GET  /x   HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/x");
    }

    #[test]
    fn rejects_bad_headers_and_folding() {
        assert_eq!(
            parse_one(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(HttpError::BadHeader)
        );
        assert_eq!(
            parse_one(b"GET / HTTP/1.1\r\nA: 1\r\n folded\r\n\r\n"),
            Err(HttpError::BadHeader)
        );
        assert_eq!(
            parse_one(b"GET / HTTP/1.1\r\nB@d: 1\r\n\r\n"),
            Err(HttpError::BadHeader)
        );
    }

    #[test]
    fn header_names_keep_case_but_lookups_ignore_it() {
        let req = parse_one(b"GET / HTTP/1.1\r\nX-Mixed-Case:  padded \r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.headers[0].0, "X-Mixed-Case");
        assert_eq!(req.header("x-mixed-case"), Some("padded"));
        assert_eq!(req.header("X-MIXED-CASE"), Some("padded"));
    }

    #[test]
    fn enforces_size_limits() {
        let limits = ParserLimits {
            max_request_line: 32,
            max_head_bytes: 128,
            max_headers: 4,
            max_body_bytes: 16,
        };
        // Oversized request line, detected before the line terminator shows.
        let mut p = RequestParser::new(limits);
        p.push(&[b'A'; 64]);
        assert_eq!(p.next_request().unwrap_err(), HttpError::RequestLineTooLong);
        // Oversized head.
        let mut p = RequestParser::new(limits);
        p.push(b"GET / HTTP/1.1\r\n");
        p.push(&[b"X: ".as_slice(), &vec![b'y'; 256], b"\r\n\r\n"].concat());
        assert_eq!(p.next_request().unwrap_err(), HttpError::HeadersTooLarge);
        // Too many headers.
        let mut p = RequestParser::new(limits);
        p.push(b"GET / HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3\r\nD: 4\r\nE: 5\r\n\r\n");
        assert_eq!(p.next_request().unwrap_err(), HttpError::HeadersTooLarge);
        // Oversized declared body, rejected before body bytes arrive.
        let mut p = RequestParser::new(limits);
        p.push(b"POST / HTTP/1.1\r\nContent-Length: 17\r\n\r\n");
        assert_eq!(p.next_request().unwrap_err(), HttpError::BodyTooLarge);
    }

    #[test]
    fn rejects_transfer_encoding_and_conflicting_lengths() {
        assert_eq!(
            parse_one(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::UnsupportedTransferEncoding)
        );
        assert_eq!(
            parse_one(b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\n"),
            Err(HttpError::BadContentLength)
        );
        assert!(parse_one(b"POST / HTTP/1.1\r\nContent-Length: x\r\n\r\n").is_err());
        // Identical duplicates are tolerated per RFC 9110 §8.6.
        let req = parse_one(b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nok")
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"ok");
    }

    #[test]
    fn parse_errors_poison_the_parser() {
        let mut p = RequestParser::new(ParserLimits::default());
        p.push(b"BOGUS\r\n\r\nGET / HTTP/1.1\r\n\r\n");
        let first = p.next_request().unwrap_err();
        assert_eq!(
            p.next_request().unwrap_err(),
            first,
            "poisoned parser must stay failed"
        );
    }

    #[test]
    fn reset_clears_poisoning_and_reuses_buffers() {
        let mut p = RequestParser::new(ParserLimits::default());
        p.push(b"BOGUS\r\n\r\n");
        assert!(p.next_request().is_err());
        p.reset();
        assert_eq!(p.buffered(), 0);
        p.push(b"GET /after HTTP/1.1\r\n\r\n");
        let req = p.next_request().unwrap().expect("fresh life after reset");
        assert_eq!(req.target, "/after");
    }

    #[test]
    fn keep_alive_semantics() {
        let req = parse_one(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive());
        let req = parse_one(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive());
        let req = parse_one(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap().unwrap();
        assert!(req.keep_alive());
    }

    #[test]
    fn path_strips_query() {
        let req = parse_one(b"GET /metrics?x=1 HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert_eq!(req.path(), "/metrics");
    }

    #[test]
    fn steady_state_parsing_does_not_allocate() {
        let raw = b"POST /v1/predict HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 24\r\n\r\n{\"queries\":[[1,2,3,4]]}x";
        let mut p = RequestParser::new(ParserLimits::default());
        // Warm-up: let the buffer and span table reach high water.
        for _ in 0..3 {
            p.push(raw);
            assert!(p.next_request().unwrap().is_some());
        }
        let warmed = p.alloc_events();
        for i in 0..500 {
            p.push(raw);
            let req = p.next_request().unwrap().expect("complete request");
            assert_eq!(req.target, "/v1/predict");
            assert_eq!(req.body.len(), 24);
            assert_eq!(
                p.alloc_events(),
                warmed,
                "allocation on steady-state request {i}"
            );
        }
    }

    #[test]
    fn fill_from_reads_without_intermediate_copies() {
        let raw = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
        let mut src = io::Cursor::new(raw.to_vec());
        let mut p = RequestParser::new(ParserLimits::default());
        let n = p.fill_from(&mut src).unwrap();
        assert_eq!(n, raw.len());
        let req = p.next_request().unwrap().expect("complete");
        assert_eq!(req.path(), "/healthz");
        assert_eq!(p.fill_from(&mut src).unwrap(), 0, "EOF");
    }

    #[test]
    fn spans_survive_compaction_across_pipelined_requests() {
        // Drive the parser with many pipelined requests in small pushes so
        // the live region slides and compaction fires repeatedly; header
        // values must stay correct throughout.
        let one = b"POST /q HTTP/1.1\r\nX-Seq: 7\r\nContent-Length: 5\r\n\r\nhello";
        let mut stream = Vec::new();
        for _ in 0..64 {
            stream.extend_from_slice(one);
        }
        let mut p = RequestParser::new(ParserLimits::default());
        let mut served = 0;
        for chunk in stream.chunks(13) {
            p.push(chunk);
            while let Some(req) = p.next_request().unwrap() {
                assert_eq!(req.target, "/q");
                assert_eq!(req.header("x-seq"), Some("7"));
                assert_eq!(req.body, b"hello".as_slice());
                served += 1;
            }
        }
        assert_eq!(served, 64);
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn response_serialization_frames_with_content_length() {
        let resp = Response::text(200, "hello").serialize(true);
        let text = String::from_utf8(resp).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\nhello"));
        let closed = Response::new(503).header("Retry-After", "1").serialize(false);
        let text = String::from_utf8(closed).unwrap();
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
    }

    #[test]
    fn serialize_into_matches_serialize_exactly() {
        let resp = Response::json(422, "{\"error\":\"x\"}").header("Retry-After", "2");
        for keep in [true, false] {
            let mut pooled = Vec::new();
            resp.serialize_into(keep, &mut pooled);
            assert_eq!(pooled, resp.serialize(keep), "pooled path must be byte-identical");
        }
    }
}
