//! Incremental HTTP/1.1 request parsing and response serialization.
//!
//! The parser is a push-style state machine over an internal buffer: feed it
//! whatever bytes the socket produced ([`RequestParser::push`]), then drain
//! complete requests ([`RequestParser::next_request`]). Partial reads,
//! pipelined requests, and head/body split across arbitrary chunk boundaries
//! all fall out of the same two calls. Every limit violation and syntax
//! error is a typed [`HttpError`] carrying the status code the connection
//! should die with — the parser never panics on hostile input.
//!
//! Scope is deliberately the subset a loopback serving layer needs:
//! `Content-Length` bodies only (a request bearing `Transfer-Encoding` is
//! rejected with 501), no multiline header folding (400), CRLF or bare-LF
//! line endings.

use std::fmt;

/// Byte/size caps enforced while parsing a request head and body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParserLimits {
    /// Maximum bytes in the request line (method + target + version).
    pub max_request_line: usize,
    /// Maximum total bytes in the head (request line + all headers).
    pub max_head_bytes: usize,
    /// Maximum number of header fields.
    pub max_headers: usize,
    /// Maximum bytes in the body (`Content-Length` above this is rejected
    /// before any body byte is buffered).
    pub max_body_bytes: usize,
}

impl Default for ParserLimits {
    fn default() -> Self {
        ParserLimits {
            max_request_line: 8 * 1024,
            max_head_bytes: 32 * 1024,
            max_headers: 64,
            max_body_bytes: 4 * 1024 * 1024,
        }
    }
}

/// A typed parse failure; [`HttpError::status`] is the response code the
/// server answers with before closing the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The request line is malformed (missing parts, bad version tag, …).
    BadRequestLine,
    /// A header field is malformed (no colon, invalid name bytes, folding).
    BadHeader,
    /// The request line exceeds [`ParserLimits::max_request_line`].
    RequestLineTooLong,
    /// The head exceeds [`ParserLimits::max_head_bytes`] or
    /// [`ParserLimits::max_headers`].
    HeadersTooLarge,
    /// `Content-Length` is unparseable or conflicting.
    BadContentLength,
    /// The declared body exceeds [`ParserLimits::max_body_bytes`].
    BodyTooLarge,
    /// The request uses `Transfer-Encoding` (chunked uploads unsupported).
    UnsupportedTransferEncoding,
    /// An HTTP version other than 1.0 / 1.1.
    UnsupportedVersion,
}

impl HttpError {
    /// The status code a server should answer this error with.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequestLine
            | HttpError::BadHeader
            | HttpError::BadContentLength => 400,
            HttpError::RequestLineTooLong => 414,
            HttpError::HeadersTooLarge => 431,
            HttpError::BodyTooLarge => 413,
            HttpError::UnsupportedTransferEncoding => 501,
            HttpError::UnsupportedVersion => 505,
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            HttpError::BadRequestLine => "malformed request line",
            HttpError::BadHeader => "malformed header field",
            HttpError::RequestLineTooLong => "request line too long",
            HttpError::HeadersTooLarge => "headers too large",
            HttpError::BadContentLength => "bad content-length",
            HttpError::BodyTooLarge => "body too large",
            HttpError::UnsupportedTransferEncoding => "transfer-encoding unsupported",
            HttpError::UnsupportedVersion => "http version unsupported",
        };
        write!(f, "{msg}")
    }
}

impl std::error::Error for HttpError {}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, upper-case as received (`GET`, `POST`, …).
    pub method: String,
    /// Request target (path + optional query), as received.
    pub target: String,
    /// `true` for HTTP/1.1, `false` for HTTP/1.0.
    pub http11: bool,
    /// Header fields in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The (possibly empty) body.
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// Whether the connection should be kept open after this request:
    /// HTTP/1.1 defaults to keep-alive unless `Connection: close`; HTTP/1.0
    /// only persists with an explicit `Connection: keep-alive`.
    pub fn keep_alive(&self) -> bool {
        let conn = self.header("connection").map(str::to_ascii_lowercase);
        match (self.http11, conn.as_deref()) {
            (_, Some("close")) => false,
            (true, _) => true,
            (false, Some("keep-alive")) => true,
            (false, _) => false,
        }
    }

    /// The path part of the target (query string stripped).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }
}

/// Internal phase of the parser between calls.
#[derive(Debug)]
enum Phase {
    /// Accumulating head bytes until the blank line.
    Head,
    /// Head parsed; waiting for `remaining` more body bytes.
    Body { request: Request, remaining: usize },
}

/// A push-style incremental request parser (see module docs).
#[derive(Debug)]
pub struct RequestParser {
    limits: ParserLimits,
    buf: Vec<u8>,
    phase: Phase,
    /// Latched error: once poisoned, the connection must die.
    dead: Option<HttpError>,
}

impl RequestParser {
    /// Creates a parser with the given limits.
    pub fn new(limits: ParserLimits) -> Self {
        RequestParser { limits, buf: Vec::new(), phase: Phase::Head, dead: None }
    }

    /// Appends raw socket bytes to the internal buffer.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered but not yet consumed by a parsed request.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Tries to drain one complete request from the buffer.
    ///
    /// `Ok(None)` means "need more bytes"; an `Err` poisons the parser (every
    /// later call returns the same error — the connection is unrecoverable
    /// because the byte stream's framing is lost).
    pub fn next_request(&mut self) -> Result<Option<Request>, HttpError> {
        if let Some(e) = &self.dead {
            return Err(e.clone());
        }
        match self.try_next() {
            Ok(out) => Ok(out),
            Err(e) => {
                self.dead = Some(e.clone());
                Err(e)
            }
        }
    }

    fn try_next(&mut self) -> Result<Option<Request>, HttpError> {
        loop {
            match &mut self.phase {
                Phase::Head => {
                    let Some(head_end) = find_head_end(&self.buf) else {
                        // No blank line yet: enforce caps on the partial head
                        // so a drip-fed attacker cannot grow the buffer
                        // unboundedly.
                        if self.buf.len() > self.limits.max_head_bytes {
                            return Err(HttpError::HeadersTooLarge);
                        }
                        if !self.buf.contains(&b'\n')
                            && self.buf.len() > self.limits.max_request_line
                        {
                            return Err(HttpError::RequestLineTooLong);
                        }
                        return Ok(None);
                    };
                    if head_end > self.limits.max_head_bytes {
                        return Err(HttpError::HeadersTooLarge);
                    }
                    let head: Vec<u8> = self.buf.drain(..head_end).collect();
                    let request = parse_head(&head, &self.limits)?;
                    let body_len = content_length(&request, &self.limits)?;
                    self.phase = Phase::Body { request, remaining: body_len };
                }
                Phase::Body { remaining, .. } => {
                    if self.buf.len() < *remaining {
                        return Ok(None);
                    }
                    let n = *remaining;
                    let body: Vec<u8> = self.buf.drain(..n).collect();
                    let Phase::Body { mut request, .. } =
                        std::mem::replace(&mut self.phase, Phase::Head)
                    else {
                        unreachable!("phase checked above");
                    };
                    request.body = body;
                    return Ok(Some(request));
                }
            }
        }
    }
}

/// Index one past the head's terminating blank line (`\r\n\r\n` or `\n\n`,
/// mixed endings included), or `None` if the head is still incomplete.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            // A line boundary; look at what follows.
            let rest = &buf[i + 1..];
            if rest.first() == Some(&b'\n') {
                return Some(i + 2);
            }
            if rest.len() >= 2 && rest[0] == b'\r' && rest[1] == b'\n' {
                return Some(i + 3);
            }
        }
        i += 1;
    }
    None
}

/// Splits head bytes into lines, tolerating CRLF and bare LF endings.
fn head_lines(head: &[u8]) -> Vec<&[u8]> {
    let mut lines = Vec::new();
    for line in head.split(|&b| b == b'\n') {
        let line = line.strip_suffix(b"\r").unwrap_or(line);
        if line.is_empty() {
            continue; // request-terminating blank line (or trailing split artifact)
        }
        lines.push(line);
    }
    lines
}

fn parse_head(head: &[u8], limits: &ParserLimits) -> Result<Request, HttpError> {
    let lines = head_lines(head);
    let Some((request_line, header_lines)) = lines.split_first() else {
        return Err(HttpError::BadRequestLine);
    };
    if request_line.len() > limits.max_request_line {
        return Err(HttpError::RequestLineTooLong);
    }
    let text = std::str::from_utf8(request_line).map_err(|_| HttpError::BadRequestLine)?;
    let mut parts = text.split(' ').filter(|p| !p.is_empty());
    let method = parts.next().ok_or(HttpError::BadRequestLine)?;
    let target = parts.next().ok_or(HttpError::BadRequestLine)?;
    let version = parts.next().ok_or(HttpError::BadRequestLine)?;
    if parts.next().is_some() {
        return Err(HttpError::BadRequestLine);
    }
    if method.is_empty()
        || !method.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
    {
        return Err(HttpError::BadRequestLine);
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        v if v.starts_with("HTTP/") => return Err(HttpError::UnsupportedVersion),
        _ => return Err(HttpError::BadRequestLine),
    };
    if header_lines.len() > limits.max_headers {
        return Err(HttpError::HeadersTooLarge);
    }
    let mut headers = Vec::with_capacity(header_lines.len());
    for line in header_lines {
        // Obsolete line folding (continuation lines starting with SP/HTAB)
        // is a request-smuggling vector; reject it outright.
        if line[0] == b' ' || line[0] == b'\t' {
            return Err(HttpError::BadHeader);
        }
        let text = std::str::from_utf8(line).map_err(|_| HttpError::BadHeader)?;
        let (name, value) = text.split_once(':').ok_or(HttpError::BadHeader)?;
        if name.is_empty()
            || !name
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.'))
        {
            return Err(HttpError::BadHeader);
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(Request {
        method: method.to_string(),
        target: target.to_string(),
        http11,
        headers,
        body: Vec::new(),
    })
}

/// Resolves the request's body length from its headers, enforcing the body
/// cap *before* any body byte is buffered.
fn content_length(request: &Request, limits: &ParserLimits) -> Result<usize, HttpError> {
    if request.header("transfer-encoding").is_some() {
        return Err(HttpError::UnsupportedTransferEncoding);
    }
    let mut lengths = request.headers.iter().filter(|(k, _)| k == "content-length");
    let Some((_, first)) = lengths.next() else {
        return Ok(0);
    };
    // Duplicate Content-Length headers with different values are another
    // smuggling vector.
    if lengths.any(|(_, v)| v != first) {
        return Err(HttpError::BadContentLength);
    }
    let n: usize = first.parse().map_err(|_| HttpError::BadContentLength)?;
    if n > limits.max_body_bytes {
        return Err(HttpError::BodyTooLarge);
    }
    Ok(n)
}

/// Canonical reason phrase for the status codes this crate emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// An HTTP response under construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers (`Content-Length` and `Connection` are managed by the
    /// serializer / server and must not be set here).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with the given status and empty body.
    pub fn new(status: u16) -> Self {
        Response { status, headers: Vec::new(), body: Vec::new() }
    }

    /// Adds a header field.
    pub fn header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Sets the body.
    pub fn body(mut self, body: impl Into<Vec<u8>>) -> Self {
        self.body = body.into();
        self
    }

    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response::new(status).header("Content-Type", "text/plain; charset=utf-8").body(body)
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response::new(status).header("Content-Type", "application/json").body(body)
    }

    /// Serializes the response head + body. `Content-Length` is always
    /// emitted (responses are never chunked, so any client — including
    /// pipelining ones — can frame them), plus the requested `Connection`
    /// disposition.
    pub fn serialize(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.body.len());
        out.extend_from_slice(
            format!("HTTP/1.1 {} {}\r\n", self.status, reason_phrase(self.status)).as_bytes(),
        );
        for (name, value) in &self.headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        out.extend_from_slice(if keep_alive {
            b"Connection: keep-alive\r\n".as_slice()
        } else {
            b"Connection: close\r\n".as_slice()
        });
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        let mut p = RequestParser::new(ParserLimits::default());
        p.push(bytes);
        p.next_request()
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse_one(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .expect("complete");
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/healthz");
        assert!(req.http11);
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
        assert!(req.keep_alive());
    }

    #[test]
    fn parses_post_with_body_and_bare_lf() {
        let req = parse_one(b"POST /v1/predict HTTP/1.1\nContent-Length: 4\n\nabcd")
            .unwrap()
            .expect("complete");
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn incremental_byte_at_a_time() {
        let raw = b"POST /p HTTP/1.1\r\nContent-Length: 3\r\nX-K: v\r\n\r\nxyz";
        let mut p = RequestParser::new(ParserLimits::default());
        for (i, b) in raw.iter().enumerate() {
            p.push(std::slice::from_ref(b));
            let out = p.next_request().unwrap();
            if i + 1 < raw.len() {
                assert!(out.is_none(), "complete too early at byte {i}");
            } else {
                let req = out.expect("complete at last byte");
                assert_eq!(req.body, b"xyz");
                assert_eq!(req.header("x-k"), Some("v"));
            }
        }
    }

    #[test]
    fn pipelined_requests_drain_in_order() {
        let mut p = RequestParser::new(ParserLimits::default());
        p.push(b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /c HTTP/1.1\r\n\r\n");
        let a = p.next_request().unwrap().unwrap();
        let b = p.next_request().unwrap().unwrap();
        let c = p.next_request().unwrap().unwrap();
        assert_eq!((a.target.as_str(), b.target.as_str(), c.target.as_str()), ("/a", "/b", "/c"));
        assert_eq!(b.body, b"hi");
        assert_eq!(p.next_request().unwrap(), None);
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for bad in [
            &b"GET\r\n\r\n"[..],
            b"GET /x\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"G@T /x HTTP/1.1\r\n\r\n",
            b" / HTTP/1.1\r\n\r\n",
            b"GET /x FTP/1.1\r\n\r\n",
        ] {
            assert!(parse_one(bad).is_err(), "accepted {:?}", String::from_utf8_lossy(bad));
        }
        assert_eq!(
            parse_one(b"GET /x HTTP/2.0\r\n\r\n"),
            Err(HttpError::UnsupportedVersion)
        );
    }

    #[test]
    fn rejects_bad_headers_and_folding() {
        assert_eq!(
            parse_one(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(HttpError::BadHeader)
        );
        assert_eq!(
            parse_one(b"GET / HTTP/1.1\r\nA: 1\r\n folded\r\n\r\n"),
            Err(HttpError::BadHeader)
        );
        assert_eq!(
            parse_one(b"GET / HTTP/1.1\r\nB@d: 1\r\n\r\n"),
            Err(HttpError::BadHeader)
        );
    }

    #[test]
    fn enforces_size_limits() {
        let limits = ParserLimits {
            max_request_line: 32,
            max_head_bytes: 128,
            max_headers: 4,
            max_body_bytes: 16,
        };
        // Oversized request line, detected before the line terminator shows.
        let mut p = RequestParser::new(limits);
        p.push(&[b'A'; 64]);
        assert_eq!(p.next_request(), Err(HttpError::RequestLineTooLong));
        // Oversized head.
        let mut p = RequestParser::new(limits);
        p.push(b"GET / HTTP/1.1\r\n");
        p.push(&[b"X: ".as_slice(), &vec![b'y'; 256], b"\r\n\r\n"].concat());
        assert_eq!(p.next_request(), Err(HttpError::HeadersTooLarge));
        // Too many headers.
        let mut p = RequestParser::new(limits);
        p.push(b"GET / HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3\r\nD: 4\r\nE: 5\r\n\r\n");
        assert_eq!(p.next_request(), Err(HttpError::HeadersTooLarge));
        // Oversized declared body, rejected before body bytes arrive.
        let mut p = RequestParser::new(limits);
        p.push(b"POST / HTTP/1.1\r\nContent-Length: 17\r\n\r\n");
        assert_eq!(p.next_request(), Err(HttpError::BodyTooLarge));
    }

    #[test]
    fn rejects_transfer_encoding_and_conflicting_lengths() {
        assert_eq!(
            parse_one(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::UnsupportedTransferEncoding)
        );
        assert_eq!(
            parse_one(b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\n"),
            Err(HttpError::BadContentLength)
        );
        assert!(parse_one(b"POST / HTTP/1.1\r\nContent-Length: x\r\n\r\n").is_err());
        // Identical duplicates are tolerated per RFC 9110 §8.6.
        let req = parse_one(b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nok")
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"ok");
    }

    #[test]
    fn parse_errors_poison_the_parser() {
        let mut p = RequestParser::new(ParserLimits::default());
        p.push(b"BOGUS\r\n\r\nGET / HTTP/1.1\r\n\r\n");
        let first = p.next_request().unwrap_err();
        assert_eq!(p.next_request(), Err(first), "poisoned parser must stay failed");
    }

    #[test]
    fn keep_alive_semantics() {
        let req = parse_one(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive());
        let req = parse_one(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive());
        let req = parse_one(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap().unwrap();
        assert!(req.keep_alive());
    }

    #[test]
    fn path_strips_query() {
        let req = parse_one(b"GET /metrics?x=1 HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert_eq!(req.path(), "/metrics");
    }

    #[test]
    fn response_serialization_frames_with_content_length() {
        let resp = Response::text(200, "hello").serialize(true);
        let text = String::from_utf8(resp).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\nhello"));
        let closed = Response::new(503).header("Retry-After", "1").serialize(false);
        let text = String::from_utf8(closed).unwrap();
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
    }
}
