//! Threaded HTTP/1.1 server: nonblocking accept loop, bounded connection
//! queue, fixed worker pool, keep-alive connections, graceful drain.
//!
//! Admission control happens at two layers. Connections that would
//! overflow the bounded queue get an immediate raw `503` + `Retry-After`
//! and are closed — the queue never grows unboundedly. (Request-level
//! shedding — the micro-batcher's `QueueFull` → 503 — lives above this
//! crate, in the handler.) [`HttpServer::shutdown`] drains gracefully:
//! the acceptor stops, workers finish queued + in-flight requests with
//! `Connection: close`, and the call blocks until every thread has joined.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::http::{ParserLimits, Request, RequestParser, Response};

/// Tuning knobs for [`HttpServer`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Bounded queue of accepted-but-unclaimed connections; overflow is
    /// answered with a raw 503 and closed.
    pub conn_queue: usize,
    /// Parser size limits applied per connection.
    pub limits: ParserLimits,
    /// Requests served per connection before the server forces
    /// `Connection: close` (bounds per-connection resource lifetime).
    pub keep_alive_max_requests: usize,
    /// Socket read timeout; an idle keep-alive connection is closed after
    /// this long without bytes.
    pub read_timeout: Duration,
    /// Read tick: how often a blocked worker wakes to poll the stop flag
    /// (and the acceptor polls for new connections when idle). Bounds how
    /// long a drain — and anything gated on one, like a router noticing a
    /// shard went away — can lag behind the stop signal. Health-probe
    /// traffic answers as fast as bytes arrive regardless; the tick only
    /// quantizes *shutdown* responsiveness, which is why the cluster router
    /// and its shards run with a few-millisecond tick instead of the 100ms
    /// general-serving default.
    pub read_tick: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            conn_queue: 64,
            limits: ParserLimits::default(),
            keep_alive_max_requests: 1024,
            read_timeout: Duration::from_secs(5),
            read_tick: Duration::from_millis(100),
        }
    }
}

/// Request handler: borrow the request, produce a response. Implemented
/// for any `Fn(&Request) -> Response`.
pub trait Handler: Send + Sync + 'static {
    /// Handles one parsed request.
    fn handle(&self, request: &Request) -> Response;
}

impl<F> Handler for F
where
    F: Fn(&Request) -> Response + Send + Sync + 'static,
{
    fn handle(&self, request: &Request) -> Response {
        self(request)
    }
}

/// Point-in-time counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Connections accepted and queued.
    pub accepted: u64,
    /// Connections refused with a raw 503 because the queue was full.
    pub conn_shed: u64,
    /// Requests fully served (any status).
    pub requests: u64,
    /// Connections dropped on a parse error (after the error response).
    pub parse_errors: u64,
}

struct ConnQueue {
    conns: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
}

struct Counters {
    accepted: AtomicU64,
    conn_shed: AtomicU64,
    requests: AtomicU64,
    parse_errors: AtomicU64,
}

/// A running server; see module docs.
pub struct HttpServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    queue: Arc<ConnQueue>,
    counters: Arc<Counters>,
    acceptor: Mutex<Option<JoinHandle<()>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl HttpServer {
    /// Binds `addr` (use port 0 for an ephemeral port — read it back via
    /// [`HttpServer::local_addr`]) and starts the acceptor + worker pool.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        config: ServerConfig,
        handler: Arc<dyn Handler>,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        // Nonblocking so the acceptor can poll the stop flag between
        // accepts instead of parking in the kernel forever.
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(ConnQueue {
            conns: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        });
        let counters = Arc::new(Counters {
            accepted: AtomicU64::new(0),
            conn_shed: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            parse_errors: AtomicU64::new(0),
        });

        let acceptor = {
            let stop = Arc::clone(&stop);
            let queue = Arc::clone(&queue);
            let counters = Arc::clone(&counters);
            std::thread::Builder::new()
                .name("ce-server-accept".into())
                .spawn(move || accept_loop(listener, config, stop, queue, counters))?
        };

        let mut workers = Vec::with_capacity(config.workers.max(1));
        for i in 0..config.workers.max(1) {
            let stop = Arc::clone(&stop);
            let queue = Arc::clone(&queue);
            let counters = Arc::clone(&counters);
            let handler = Arc::clone(&handler);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("ce-server-worker-{i}"))
                    .spawn(move || worker_loop(config, stop, queue, counters, handler))?,
            );
        }

        Ok(HttpServer {
            local_addr,
            stop,
            queue,
            counters,
            acceptor: Mutex::new(Some(acceptor)),
            workers: Mutex::new(workers),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            accepted: self.counters.accepted.load(Ordering::Relaxed),
            conn_shed: self.counters.conn_shed.load(Ordering::Relaxed),
            requests: self.counters.requests.load(Ordering::Relaxed),
            parse_errors: self.counters.parse_errors.load(Ordering::Relaxed),
        }
    }

    /// Graceful drain: stop accepting, finish queued + in-flight requests
    /// (responses carry `Connection: close`), join all threads. Idempotent;
    /// blocks until the drain completes.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.queue.available.notify_all();
        if let Some(handle) =
            self.acceptor.lock().unwrap_or_else(|e| e.into_inner()).take()
        {
            let _ = handle.join();
        }
        let workers: Vec<JoinHandle<()>> =
            self.workers.lock().unwrap_or_else(|e| e.into_inner()).drain(..).collect();
        for handle in workers {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
    queue: Arc<ConnQueue>,
    counters: Arc<Counters>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let mut conns = queue.conns.lock().unwrap_or_else(|e| e.into_inner());
                if conns.len() >= config.conn_queue {
                    drop(conns);
                    counters.conn_shed.fetch_add(1, Ordering::Relaxed);
                    shed_connection(stream);
                    continue;
                }
                conns.push_back(stream);
                counters.accepted.fetch_add(1, Ordering::Relaxed);
                drop(conns);
                queue.available.notify_one();
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(accept_idle(&config));
            }
            Err(_) => {
                // Transient accept errors (ECONNABORTED etc.): back off
                // briefly and keep serving.
                std::thread::sleep(accept_idle(&config));
            }
        }
    }
}

/// Idle accept-poll interval: the configured read tick, capped at 10ms so a
/// long tick never makes *accepting* sluggish.
fn accept_idle(config: &ServerConfig) -> Duration {
    config.read_tick.max(Duration::from_millis(1)).min(Duration::from_millis(10))
}

/// Answers an over-quota connection with a raw 503 and closes it. Best
/// effort — the peer may already be gone.
fn shed_connection(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = stream.write_all(
        Response::new(503)
            .header("Retry-After", "1")
            .serialize(false)
            .as_slice(),
    );
    let _ = stream.flush();
}

fn worker_loop(
    config: ServerConfig,
    stop: Arc<AtomicBool>,
    queue: Arc<ConnQueue>,
    counters: Arc<Counters>,
    handler: Arc<dyn Handler>,
) {
    loop {
        let stream = {
            let mut conns = queue.conns.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(stream) = conns.pop_front() {
                    break Some(stream);
                }
                // Drain semantics: exit only once stopped AND the queue is
                // empty, so accepted connections are always served.
                if stop.load(Ordering::SeqCst) {
                    break None;
                }
                conns = queue.available.wait(conns).unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some(stream) = stream else { return };
        serve_connection(stream, &config, &stop, &counters, handler.as_ref());
    }
}

fn serve_connection(
    mut stream: TcpStream,
    config: &ServerConfig,
    stop: &AtomicBool,
    counters: &Counters,
    handler: &dyn Handler,
) {
    // Short read ticks let the worker notice the stop flag promptly while
    // still honoring the configured idle timeout across ticks.
    let tick = config
        .read_tick
        .max(Duration::from_millis(1))
        .min(config.read_timeout.max(Duration::from_millis(1)));
    let _ = stream.set_read_timeout(Some(tick));
    let _ = stream.set_write_timeout(Some(config.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut parser = RequestParser::new(config.limits);
    let mut buf = [0u8; 16 * 1024];
    let mut served = 0usize;
    let mut idle_since = std::time::Instant::now();
    loop {
        // Drain anything already buffered (pipelined requests) before
        // touching the socket again.
        loop {
            match parser.next_request() {
                Ok(Some(request)) => {
                    let response = handler.handle(&request);
                    served += 1;
                    let keep = request.keep_alive()
                        && served < config.keep_alive_max_requests
                        && !stop.load(Ordering::SeqCst);
                    counters.requests.fetch_add(1, Ordering::Relaxed);
                    if stream.write_all(&response.serialize(keep)).is_err() {
                        return;
                    }
                    if !keep {
                        let _ = stream.flush();
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    counters.parse_errors.fetch_add(1, Ordering::Relaxed);
                    let _ = stream.write_all(&Response::new(e.status()).serialize(false));
                    let _ = stream.flush();
                    return;
                }
            }
        }
        match stream.read(&mut buf) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                parser.push(&buf[..n]);
                idle_since = std::time::Instant::now();
            }
            Err(e)
                if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
            {
                // No bytes this tick: close once stopping (drain) or once
                // the connection has idled past the full read timeout.
                if stop.load(Ordering::SeqCst)
                    || idle_since.elapsed() >= config.read_timeout
                {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;

    fn echo_server(config: ServerConfig) -> HttpServer {
        HttpServer::bind(
            "127.0.0.1:0",
            config,
            Arc::new(|req: &Request| {
                match (req.method.as_str(), req.path()) {
                    ("GET", "/healthz") => Response::text(200, "ok"),
                    ("POST", "/echo") => Response::json(200, req.body.clone()),
                    _ => Response::text(404, "not found"),
                }
            }),
        )
        .expect("bind")
    }

    #[test]
    fn serves_get_and_post_over_keep_alive() {
        let server = echo_server(ServerConfig::default());
        let mut client = HttpClient::connect(server.local_addr()).unwrap();
        let resp = client.get("/healthz").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"ok");
        // Same connection, second request: keep-alive works.
        let resp = client.post("/echo", b"{\"x\":1}").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"{\"x\":1}");
        let resp = client.get("/nope").unwrap();
        assert_eq!(resp.status, 404);
        assert_eq!(server.stats().requests, 3);
        server.shutdown();
    }

    #[test]
    fn malformed_request_gets_400_and_close() {
        let server = echo_server(ServerConfig::default());
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"NOT A REQUEST\r\n\r\n").unwrap();
        let mut out = Vec::new();
        stream.read_to_end(&mut out).unwrap(); // server closes after the error
        let text = String::from_utf8_lossy(&out);
        assert!(text.starts_with("HTTP/1.1 400"), "got: {text}");
        assert!(server.stats().parse_errors >= 1);
        server.shutdown();
    }

    #[test]
    fn oversized_body_gets_413() {
        let mut config = ServerConfig::default();
        config.limits.max_body_bytes = 8;
        let server = echo_server(config);
        let mut client = HttpClient::connect(server.local_addr()).unwrap();
        let resp = client.post("/echo", &[b'x'; 64]).unwrap();
        assert_eq!(resp.status, 413);
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_all_served() {
        let server = Arc::new(echo_server(ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        }));
        let mut handles = Vec::new();
        for t in 0..8 {
            let addr = server.local_addr();
            handles.push(std::thread::spawn(move || {
                let mut client = HttpClient::connect(addr).unwrap();
                for i in 0..5 {
                    let body = format!("{{\"t\":{t},\"i\":{i}}}");
                    let resp = client.post("/echo", body.as_bytes()).unwrap();
                    assert_eq!(resp.status, 200);
                    assert_eq!(resp.body, body.as_bytes());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.stats().requests, 40);
        server.shutdown();
    }

    #[test]
    fn small_read_tick_drains_idle_connections_promptly() {
        let server = echo_server(ServerConfig {
            read_tick: Duration::from_millis(2),
            ..ServerConfig::default()
        });
        let mut client = HttpClient::connect(server.local_addr()).unwrap();
        assert_eq!(client.get("/healthz").unwrap().status, 200);
        // The connection is idle keep-alive; with a 2ms tick the worker
        // notices the stop flag long before the 100ms default would.
        let t = std::time::Instant::now();
        server.shutdown();
        assert!(t.elapsed() < Duration::from_millis(500), "drain lagged: {:?}", t.elapsed());
    }

    #[test]
    fn graceful_shutdown_is_idempotent_and_joins() {
        let server = echo_server(ServerConfig::default());
        let addr = server.local_addr();
        let mut client = HttpClient::connect(addr).unwrap();
        assert_eq!(client.get("/healthz").unwrap().status, 200);
        server.shutdown();
        server.shutdown();
        // After drain, new connections are refused (listener closed).
        assert!(
            HttpClient::connect(addr).is_err()
                || HttpClient::connect(addr).unwrap().get("/healthz").is_err()
        );
    }
}
