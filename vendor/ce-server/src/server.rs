//! Event-driven HTTP/1.1 server: readiness-loop connection multiplexing,
//! pooled per-connection buffers, fixed worker pool, keep-alive, graceful
//! drain.
//!
//! # Architecture (see DESIGN.md §12)
//!
//! Three thread roles cooperate:
//!
//! - The **acceptor** runs a nonblocking `accept` loop (readiness-waited on
//!   the listener fd where `poll(2)` is available). New connections are
//!   made nonblocking, given pooled scratch buffers, and handed straight to
//!   the dispatch queue — the first worker read usually finds the request
//!   bytes already behind the SYN.
//! - One or more **pollers** each own a set of parked idle keep-alive
//!   connections and multiplex them through a single `poll(2)` call (plus a
//!   self-wake socketpair for registrations and shutdown). Connections that
//!   turn readable (or hang up) move to the dispatch queue; connections
//!   that idle past `read_timeout` are closed at their deadline — no ticks.
//! - **Workers** pop ready connections, drain every buffered request
//!   through the handler (serializing all responses into one pooled output
//!   buffer and writing them in a single syscall), read until `WouldBlock`,
//!   then park the connection back at its home poller.
//!
//! On targets without `poll(2)` — or with `event_driven` off — the same
//! worker code runs in the legacy tick mode: each worker owns one blocking
//! connection and re-reads on a short timeout, trading idle CPU wakeups for
//! portability.
//!
//! Admission control happens at the edge: in event mode a connection that
//! would exceed `max_conns` open connections — and in tick mode one that
//! would overflow the bounded dispatch queue — gets an immediate raw `503`
//! with `Retry-After` and is closed. (Request-level shedding — the
//! micro-batcher's `QueueFull` → 503 — lives above this crate, in the
//! handler.) [`HttpServer::shutdown`] drains gracefully: the acceptor
//! stops, pollers close their parked (idle, between-requests) connections,
//! workers finish queued + in-flight requests with `Connection: close`, and
//! the call blocks until every thread has joined.
//!
//! # The zero-allocation hot path
//!
//! A pooled connection's steady-state request cycle — read, parse, respond
//! — performs no heap allocation in this crate: socket bytes land directly
//! in the parser's reusable buffer ([`RequestParser::fill_from`]), requests
//! are borrowed views into that buffer, and responses serialize into the
//! connection's reusable output buffer. [`ServerStats::buffer_allocs`]
//! counts the remaining growth events (pool warm-up, oversized requests);
//! tests assert it goes flat under steady load.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::http::{ParserLimits, Request, RequestParser, Response};
use crate::poll;

/// Tuning knobs for [`HttpServer`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads handling ready connections.
    pub workers: usize,
    /// Tick mode only: bounded queue of accepted-but-unclaimed connections;
    /// overflow is answered with a raw 503 and closed. (Event mode bounds
    /// *open* connections via `max_conns` instead — the dispatch queue only
    /// ever holds connections that are already admitted.)
    pub conn_queue: usize,
    /// Parser size limits applied per connection.
    pub limits: ParserLimits,
    /// Requests served per connection before the server forces
    /// `Connection: close` (bounds per-connection resource lifetime).
    pub keep_alive_max_requests: usize,
    /// Idle deadline: a keep-alive connection with no request activity for
    /// this long is closed (at the deadline in event mode, at the next tick
    /// in tick mode). Also the stall budget for blocked response writes.
    pub read_timeout: Duration,
    /// Tick mode only: how often a blocked worker wakes to poll the stop
    /// flag. Bounds how long a drain can lag behind the stop signal there;
    /// event mode is deadline-driven and ignores it.
    pub read_tick: Duration,
    /// Use the readiness loop where `poll(2)` is available; `false` forces
    /// the portable tick fallback everywhere.
    pub event_driven: bool,
    /// Poller threads multiplexing parked connections (event mode).
    pub pollers: usize,
    /// Event mode: maximum simultaneously open connections; beyond this,
    /// new connections are shed with a raw 503.
    pub max_conns: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            conn_queue: 64,
            limits: ParserLimits::default(),
            keep_alive_max_requests: 1024,
            read_timeout: Duration::from_secs(5),
            read_tick: Duration::from_millis(100),
            event_driven: true,
            pollers: 1,
            max_conns: 4096,
        }
    }
}

/// Request handler: borrow the request, produce a response. Implemented
/// for any `Fn(&Request) -> Response`.
pub trait Handler: Send + Sync + 'static {
    /// Handles one parsed request.
    fn handle(&self, request: &Request<'_>) -> Response;
}

impl<F> Handler for F
where
    F: Fn(&Request<'_>) -> Response + Send + Sync + 'static,
{
    fn handle(&self, request: &Request<'_>) -> Response {
        self(request)
    }
}

/// Point-in-time counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Connections accepted and admitted.
    pub accepted: u64,
    /// Connections refused with a raw 503 (connection-level admission).
    pub conn_shed: u64,
    /// Requests fully served (any status).
    pub requests: u64,
    /// Connections dropped on a parse error (after the error response).
    pub parse_errors: u64,
    /// Connections currently open (admitted, not yet closed).
    pub open: u64,
    /// Buffer growth events on pooled connection scratch (parser buffer,
    /// span table, output buffer). Flat in steady state — the
    /// zero-allocation guarantee, measured.
    pub buffer_allocs: u64,
    /// Times a poller woke from `poll(2)` (event mode).
    pub poller_wakeups: u64,
    /// Connections a poller handed to the worker pool (event mode).
    pub poller_dispatches: u64,
    /// Connections currently parked idle at the pollers (event mode).
    pub parked: u64,
    /// Ready connections currently waiting in the dispatch queue for a
    /// worker — the instantaneous worker backlog.
    pub dispatch_depth: u64,
}

struct Counters {
    accepted: AtomicU64,
    conn_shed: AtomicU64,
    requests: AtomicU64,
    parse_errors: AtomicU64,
    open: AtomicU64,
    buffer_allocs: AtomicU64,
    poller_wakeups: AtomicU64,
    poller_dispatches: AtomicU64,
    parked: AtomicU64,
}

impl Counters {
    fn new() -> Counters {
        Counters {
            accepted: AtomicU64::new(0),
            conn_shed: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            parse_errors: AtomicU64::new(0),
            open: AtomicU64::new(0),
            buffer_allocs: AtomicU64::new(0),
            poller_wakeups: AtomicU64::new(0),
            poller_dispatches: AtomicU64::new(0),
            parked: AtomicU64::new(0),
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Free-list of warmed per-connection scratch (parser + output buffer),
/// shared by every connection so short-lived connections still reuse the
/// capacity earlier ones grew.
struct ScratchPool {
    free: Mutex<Vec<(RequestParser, Vec<u8>)>>,
    cap: usize,
    limits: ParserLimits,
}

impl ScratchPool {
    fn checkout(&self) -> (RequestParser, Vec<u8>) {
        if let Some((mut parser, mut out)) = lock(&self.free).pop() {
            parser.reset();
            out.clear();
            (parser, out)
        } else {
            (RequestParser::new(self.limits), Vec::new())
        }
    }

    fn release(&self, parser: RequestParser, out: Vec<u8>) {
        let mut free = lock(&self.free);
        if free.len() < self.cap {
            free.push((parser, out));
        }
    }
}

/// Everything a connection needs to give back on close.
struct ConnShared {
    pool: ScratchPool,
    counters: Arc<Counters>,
}

/// One live connection with its pooled scratch. Dropping it closes the
/// socket, returns the buffers to the pool, and decrements the open count —
/// so every exit path (served-to-close, parse error, idle expiry, drain)
/// cleans up identically.
struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    out: Vec<u8>,
    /// Last observed output-buffer capacity, for allocation accounting.
    out_cap: usize,
    /// Parser allocation events already accounted.
    alloc_mark: u64,
    /// Requests served on this connection.
    served: usize,
    /// Last request-activity time: reset on socket reads *and* whenever a
    /// request is served, so a client patiently waiting out slow responses
    /// to already-buffered pipelined requests is never idle-closed
    /// mid-conversation.
    last_activity: Instant,
    /// Poller index this connection parks at (event mode).
    home: usize,
    /// Poller latency attributable to the *next* request on this connection
    /// (trace stage `park`): time from the `poll(2)` wake that found it
    /// readable until the poller pushed it to dispatch. Deliberately
    /// excludes the idle wait before the request's bytes arrived — that is
    /// the client thinking, not the server queueing.
    park_ns: u64,
    /// When the connection entered the dispatch queue; consumed into the
    /// trace stage `dispatch` by the first request a worker serves.
    queued_at: Option<Instant>,
    shared: Arc<ConnShared>,
}

impl Conn {
    fn new(stream: TcpStream, home: usize, shared: Arc<ConnShared>) -> Conn {
        let (parser, out) = shared.pool.checkout();
        shared.counters.open.fetch_add(1, Ordering::Relaxed);
        let out_cap = out.capacity();
        let alloc_mark = parser.alloc_events();
        Conn {
            stream,
            parser,
            out,
            out_cap,
            alloc_mark,
            served: 0,
            last_activity: Instant::now(),
            home,
            park_ns: 0,
            queued_at: None,
            shared,
        }
    }

    /// Folds scratch growth since the last call into the shared counter.
    fn account_allocs(&mut self) {
        let mut delta = self.parser.alloc_events() - self.alloc_mark;
        self.alloc_mark = self.parser.alloc_events();
        if self.out.capacity() != self.out_cap {
            delta += 1;
            self.out_cap = self.out.capacity();
        }
        if delta > 0 {
            self.shared.counters.buffer_allocs.fetch_add(delta, Ordering::Relaxed);
        }
    }
}

impl Drop for Conn {
    fn drop(&mut self) {
        self.shared.counters.open.fetch_sub(1, Ordering::Relaxed);
        let parser =
            std::mem::replace(&mut self.parser, RequestParser::new(ParserLimits::default()));
        let out = std::mem::take(&mut self.out);
        self.shared.pool.release(parser, out);
    }
}

/// Ready-connection queue between pollers/acceptor and workers.
struct DispatchQueue {
    ready: Mutex<VecDeque<Conn>>,
    available: Condvar,
}

impl DispatchQueue {
    fn push(&self, mut conn: Conn) {
        conn.queued_at = Some(Instant::now());
        lock(&self.ready).push_back(conn);
        self.available.notify_one();
    }
}

/// Registration side of one poller thread: parked-connection inbox plus a
/// self-wake socketpair so registrations and shutdown interrupt `poll(2)`
/// immediately.
#[cfg(unix)]
struct Poller {
    inbox: Mutex<Vec<Conn>>,
    wake_tx: Mutex<std::os::unix::net::UnixStream>,
}

#[cfg(unix)]
impl Poller {
    fn park(&self, conn: Conn) {
        lock(&self.inbox).push(conn);
        self.wake();
    }

    fn wake(&self) {
        // Nonblocking: a full wake pipe already guarantees a pending wakeup.
        let _ = (&*lock(&self.wake_tx)).write(&[1u8]);
    }
}

/// What a processing round decided about the connection's future.
enum ConnFate {
    /// Keep-alive, no more buffered bytes: park for readiness.
    Park,
    /// Close (served-to-close, EOF, error, or stall).
    Close,
}

struct WorkerCtx {
    config: ServerConfig,
    stop: Arc<AtomicBool>,
    dispatch: Arc<DispatchQueue>,
    counters: Arc<Counters>,
    handler: Arc<dyn Handler>,
    /// Park targets; empty in tick mode.
    #[cfg(unix)]
    pollers: Vec<Arc<Poller>>,
}

/// A running server; see module docs.
pub struct HttpServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    dispatch: Arc<DispatchQueue>,
    counters: Arc<Counters>,
    event_driven: bool,
    #[cfg(unix)]
    pollers: Vec<Arc<Poller>>,
    acceptor: Mutex<Option<JoinHandle<()>>>,
    poller_threads: Mutex<Vec<JoinHandle<()>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl HttpServer {
    /// Binds `addr` (use port 0 for an ephemeral port — read it back via
    /// [`HttpServer::local_addr`]) and starts the acceptor, pollers (where
    /// supported), and worker pool.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        config: ServerConfig,
        handler: Arc<dyn Handler>,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        // Nonblocking so the acceptor can wait for readiness (or tick) and
        // still notice the stop flag, instead of parking in the kernel.
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let event = config.event_driven && poll::SUPPORTED && config.pollers > 0;
        let stop = Arc::new(AtomicBool::new(false));
        let dispatch = Arc::new(DispatchQueue {
            ready: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        });
        let counters = Arc::new(Counters::new());
        let shared = Arc::new(ConnShared {
            pool: ScratchPool {
                free: Mutex::new(Vec::new()),
                cap: config.max_conns.clamp(64, 1024),
                limits: config.limits,
            },
            counters: Arc::clone(&counters),
        });

        #[cfg(unix)]
        let mut pollers: Vec<Arc<Poller>> = Vec::new();
        let mut poller_threads: Vec<JoinHandle<()>> = Vec::new();
        #[cfg(unix)]
        if event {
            for i in 0..config.pollers {
                let (wake_tx, wake_rx) = std::os::unix::net::UnixStream::pair()?;
                wake_tx.set_nonblocking(true)?;
                wake_rx.set_nonblocking(true)?;
                let poller = Arc::new(Poller {
                    inbox: Mutex::new(Vec::new()),
                    wake_tx: Mutex::new(wake_tx),
                });
                pollers.push(Arc::clone(&poller));
                let stop = Arc::clone(&stop);
                let dispatch = Arc::clone(&dispatch);
                let counters = Arc::clone(&counters);
                let read_timeout = config.read_timeout;
                poller_threads.push(
                    std::thread::Builder::new()
                        .name(format!("ce-server-poll-{i}"))
                        .spawn(move || {
                            poller_loop(poller, wake_rx, stop, dispatch, counters, read_timeout)
                        })?,
                );
            }
        }

        let acceptor = {
            let stop = Arc::clone(&stop);
            let dispatch = Arc::clone(&dispatch);
            let counters = Arc::clone(&counters);
            let shared = Arc::clone(&shared);
            let poller_count = if event { config.pollers } else { 0 };
            std::thread::Builder::new().name("ce-server-accept".into()).spawn(move || {
                accept_loop(listener, config, poller_count, stop, dispatch, counters, shared)
            })?
        };

        let ctx = Arc::new(WorkerCtx {
            config,
            stop: Arc::clone(&stop),
            dispatch: Arc::clone(&dispatch),
            counters: Arc::clone(&counters),
            handler,
            #[cfg(unix)]
            pollers: if event { pollers.clone() } else { Vec::new() },
        });
        let mut workers = Vec::with_capacity(config.workers.max(1));
        for i in 0..config.workers.max(1) {
            let ctx = Arc::clone(&ctx);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("ce-server-worker-{i}"))
                    .spawn(move || worker_loop(&ctx))?,
            );
        }

        Ok(HttpServer {
            local_addr,
            stop,
            dispatch,
            counters,
            event_driven: event,
            #[cfg(unix)]
            pollers,
            acceptor: Mutex::new(Some(acceptor)),
            poller_threads: Mutex::new(poller_threads),
            workers: Mutex::new(workers),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Whether the readiness loop is active (`false` = tick fallback).
    pub fn event_driven(&self) -> bool {
        self.event_driven
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> ServerStats {
        read_stats(&self.counters, &self.dispatch)
    }

    /// A cloneable handle that reads [`ServerStats`] without borrowing the
    /// server — so a handler closure (built before `bind` returns) can
    /// export server counters from inside its own `/metrics` endpoint.
    pub fn stats_probe(&self) -> ServerStatsProbe {
        ServerStatsProbe {
            counters: Arc::clone(&self.counters),
            dispatch: Arc::clone(&self.dispatch),
        }
    }

    /// Graceful drain: stop accepting, close parked idle connections at the
    /// pollers, finish queued + in-flight requests (responses carry
    /// `Connection: close`), join all threads. Idempotent; blocks until the
    /// drain completes.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        #[cfg(unix)]
        for poller in &self.pollers {
            poller.wake();
        }
        {
            // Hold the queue lock while notifying so no worker can slip
            // between its stop check and its wait.
            let _guard = lock(&self.dispatch.ready);
            self.dispatch.available.notify_all();
        }
        if let Some(handle) = lock(&self.acceptor).take() {
            let _ = handle.join();
        }
        let poller_threads: Vec<JoinHandle<()>> = lock(&self.poller_threads).drain(..).collect();
        for handle in poller_threads {
            let _ = handle.join();
        }
        let workers: Vec<JoinHandle<()>> = lock(&self.workers).drain(..).collect();
        for handle in workers {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// See [`HttpServer::stats_probe`].
#[derive(Clone)]
pub struct ServerStatsProbe {
    counters: Arc<Counters>,
    dispatch: Arc<DispatchQueue>,
}

impl ServerStatsProbe {
    /// Point-in-time counters, identical to [`HttpServer::stats`].
    pub fn stats(&self) -> ServerStats {
        read_stats(&self.counters, &self.dispatch)
    }
}

fn read_stats(counters: &Counters, dispatch: &DispatchQueue) -> ServerStats {
    ServerStats {
        accepted: counters.accepted.load(Ordering::Relaxed),
        conn_shed: counters.conn_shed.load(Ordering::Relaxed),
        requests: counters.requests.load(Ordering::Relaxed),
        parse_errors: counters.parse_errors.load(Ordering::Relaxed),
        open: counters.open.load(Ordering::Relaxed),
        buffer_allocs: counters.buffer_allocs.load(Ordering::Relaxed),
        poller_wakeups: counters.poller_wakeups.load(Ordering::Relaxed),
        poller_dispatches: counters.poller_dispatches.load(Ordering::Relaxed),
        parked: counters.parked.load(Ordering::Relaxed),
        dispatch_depth: lock(&dispatch.ready).len() as u64,
    }
}

fn accept_loop(
    listener: TcpListener,
    config: ServerConfig,
    poller_count: usize,
    stop: Arc<AtomicBool>,
    dispatch: Arc<DispatchQueue>,
    counters: Arc<Counters>,
    shared: Arc<ConnShared>,
) {
    let event = poller_count > 0;
    let mut next_home = 0usize;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if event {
                    if counters.open.load(Ordering::Relaxed) >= config.max_conns as u64 {
                        counters.conn_shed.fetch_add(1, Ordering::Relaxed);
                        shed_connection(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let home = next_home;
                    next_home = (next_home + 1) % poller_count;
                    counters.accepted.fetch_add(1, Ordering::Relaxed);
                    // Straight to a worker: the request bytes are usually
                    // right behind the SYN, and a nonblocking first read is
                    // cheap if they are not (the worker parks it).
                    dispatch.push(Conn::new(stream, home, Arc::clone(&shared)));
                } else {
                    let mut ready = lock(&dispatch.ready);
                    if ready.len() >= config.conn_queue {
                        drop(ready);
                        counters.conn_shed.fetch_add(1, Ordering::Relaxed);
                        shed_connection(stream);
                        continue;
                    }
                    counters.accepted.fetch_add(1, Ordering::Relaxed);
                    ready.push_back(Conn::new(stream, 0, Arc::clone(&shared)));
                    drop(ready);
                    dispatch.available.notify_one();
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                accept_wait(&listener, &config, event);
            }
            Err(_) => {
                // Transient accept errors (ECONNABORTED etc.): back off
                // briefly and keep serving.
                accept_wait(&listener, &config, event);
            }
        }
    }
}

/// Waits for the listener to (probably) have a connection: readiness-based
/// in event mode, a capped sleep otherwise. Bounded so the stop flag is
/// re-checked promptly either way.
fn accept_wait(listener: &TcpListener, config: &ServerConfig, event: bool) {
    let idle = accept_idle(config);
    #[cfg(unix)]
    if event {
        use std::os::fd::AsRawFd;
        let mut fds = [poll::PollFd::new(listener.as_raw_fd(), poll::POLLIN)];
        if poll::wait(&mut fds, idle).is_ok() {
            return;
        }
    }
    let _ = (listener, event);
    std::thread::sleep(idle);
}

/// Idle accept-poll interval: the configured read tick, capped at 10ms so a
/// long tick never makes *accepting* sluggish.
fn accept_idle(config: &ServerConfig) -> Duration {
    config.read_tick.max(Duration::from_millis(1)).min(Duration::from_millis(10))
}

/// Answers an over-quota connection with a raw 503 and closes it. Best
/// effort — the peer may already be gone.
fn shed_connection(mut stream: TcpStream) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = stream.write_all(
        Response::new(503)
            .header("Retry-After", "1")
            .serialize(false)
            .as_slice(),
    );
    let _ = stream.flush();
}

/// The readiness loop: multiplexes parked connections through one `poll(2)`
/// set, expiring idle ones at their deadline and dispatching readable ones
/// to the workers.
#[cfg(unix)]
fn poller_loop(
    poller: Arc<Poller>,
    wake_rx: std::os::unix::net::UnixStream,
    stop: Arc<AtomicBool>,
    dispatch: Arc<DispatchQueue>,
    counters: Arc<Counters>,
    read_timeout: Duration,
) {
    use std::os::fd::AsRawFd;
    let tm_wakeups = ce_telemetry::counter("server.poller_wakeups");
    let tm_dispatches = ce_telemetry::counter("server.poller_dispatches");
    let mut parked: Vec<Conn> = Vec::new();
    let mut fds: Vec<poll::PollFd> = Vec::new();
    loop {
        {
            let mut inbox = lock(&poller.inbox);
            if !inbox.is_empty() {
                counters.parked.fetch_add(inbox.len() as u64, Ordering::Relaxed);
                parked.append(&mut inbox);
            }
        }
        if stop.load(Ordering::SeqCst) {
            // Drain: parked connections are idle *between* requests, so
            // closing them here loses nothing; in-flight ones finish at the
            // workers with `Connection: close`.
            counters.parked.fetch_sub(parked.len() as u64, Ordering::Relaxed);
            parked.clear();
            lock(&poller.inbox).clear();
            return;
        }

        // Expire idle connections and find the nearest remaining deadline.
        let now = Instant::now();
        let mut next_deadline = read_timeout;
        let mut i = 0;
        while i < parked.len() {
            let idle = now.duration_since(parked[i].last_activity);
            if idle >= read_timeout {
                counters.parked.fetch_sub(1, Ordering::Relaxed);
                drop(parked.swap_remove(i));
            } else {
                next_deadline = next_deadline.min(read_timeout - idle);
                i += 1;
            }
        }

        fds.clear();
        fds.push(poll::PollFd::new(wake_rx.as_raw_fd(), poll::POLLIN));
        for conn in &parked {
            fds.push(poll::PollFd::new(conn.stream.as_raw_fd(), poll::POLLIN));
        }
        // Cap the sleep so a missed wake can never stall the loop for long.
        let timeout = next_deadline.min(Duration::from_secs(1));
        if poll::wait(&mut fds, timeout).is_err() {
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        counters.poller_wakeups.fetch_add(1, Ordering::Relaxed);
        tm_wakeups.inc();
        let woke = Instant::now();

        if fds[0].ready() {
            let mut scratch = [0u8; 64];
            while matches!((&wake_rx).read(&mut scratch), Ok(n) if n > 0) {}
        }
        let mut dispatched = 0u64;
        for idx in (0..parked.len()).rev() {
            if fds[idx + 1].ready() {
                let mut conn = parked.swap_remove(idx);
                // Stage `park`: poller latency between the poll(2) wake that
                // found this connection readable and its dispatch (see the
                // field docs for why the idle wait itself is excluded).
                conn.park_ns = woke.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                dispatch.push(conn);
                dispatched += 1;
            }
        }
        if dispatched > 0 {
            counters.parked.fetch_sub(dispatched, Ordering::Relaxed);
            counters.poller_dispatches.fetch_add(dispatched, Ordering::Relaxed);
            tm_dispatches.add(dispatched);
        }
    }
}

fn worker_loop(ctx: &WorkerCtx) {
    loop {
        let conn = {
            let mut ready = lock(&ctx.dispatch.ready);
            loop {
                if let Some(conn) = ready.pop_front() {
                    break Some(conn);
                }
                // Drain semantics: exit only once stopped AND the queue is
                // empty, so dispatched connections are always served.
                if ctx.stop.load(Ordering::SeqCst) {
                    break None;
                }
                ready = ctx.dispatch.available.wait(ready).unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some(mut conn) = conn else { return };
        #[cfg(unix)]
        if !ctx.pollers.is_empty() {
            loop {
                let fate = drive(&mut conn, ctx);
                conn.account_allocs();
                if !matches!(fate, ConnFate::Park) || ctx.stop.load(Ordering::SeqCst) {
                    break;
                }
                // Hot-connection linger: when every open connection can
                // have a dedicated worker and no dispatched work is
                // waiting, a request-response peer's next request is
                // usually one RTT away — wait for it right here and skip
                // the park → poller wakeup → re-dispatch round-trip (two
                // thread handoffs per request). The wait sleeps in
                // poll(2), so it costs no CPU, and it is skipped the
                // moment connections outnumber workers or the dispatch
                // queue has work for this thread.
                if linger_for_next_request(&conn, ctx) {
                    continue;
                }
                let home = conn.home;
                ctx.pollers[home].park(conn);
                break;
            }
            continue;
        }
        serve_connection_tick(conn, ctx);
    }
}

/// See the call site: `true` means the connection became readable within the
/// linger window and the worker should drive it again instead of parking.
#[cfg(unix)]
fn linger_for_next_request(conn: &Conn, ctx: &WorkerCtx) -> bool {
    use std::os::fd::AsRawFd;
    let crowded = ctx.counters.open.load(Ordering::Relaxed) > ctx.config.workers.max(1) as u64;
    if crowded || !lock(&ctx.dispatch.ready).is_empty() {
        return false;
    }
    let mut fds = [poll::PollFd::new(conn.stream.as_raw_fd(), poll::POLLIN)];
    matches!(poll::wait(&mut fds, LINGER), Ok(n) if n > 0 && fds[0].ready())
}

/// How long a worker waits on a hot connection before handing it to the
/// poller. One scheduler tick of poll(2) granularity: long enough for a
/// loopback/LAN peer to send its next request, short enough that a newly
/// idle connection reaches the poller (and the idle clock) promptly.
#[cfg(unix)]
const LINGER: Duration = Duration::from_millis(1);

/// Tick fallback: the worker owns the (blocking) connection for its whole
/// life, re-reading on a short timeout so stop/idle are noticed within a
/// tick. Same request engine as event mode — only the waiting differs.
fn serve_connection_tick(mut conn: Conn, ctx: &WorkerCtx) {
    let config = &ctx.config;
    let tick = config
        .read_tick
        .max(Duration::from_millis(1))
        .min(config.read_timeout.max(Duration::from_millis(1)));
    let _ = conn.stream.set_read_timeout(Some(tick));
    let _ = conn.stream.set_write_timeout(Some(config.read_timeout));
    let _ = conn.stream.set_nodelay(true);
    loop {
        let fate = drive(&mut conn, ctx);
        conn.account_allocs();
        match fate {
            ConnFate::Close => return,
            ConnFate::Park => {
                // No bytes this tick: close once stopping (drain) or once
                // the connection has idled past the full read timeout.
                if ctx.stop.load(Ordering::SeqCst)
                    || conn.last_activity.elapsed() >= config.read_timeout
                {
                    return;
                }
            }
        }
    }
}

/// One processing round: serve every buffered request (responses batched
/// into the pooled output buffer, flushed in as few writes as possible),
/// then read until the socket has nothing more.
fn drive(conn: &mut Conn, ctx: &WorkerCtx) -> ConnFate {
    let config = &ctx.config;
    loop {
        // Drain anything already buffered (pipelined requests) before
        // touching the socket again.
        loop {
            match conn.parser.next_request() {
                Ok(Some(request)) => {
                    // Stage the pre-handler waits (poller park, dispatch
                    // queue) for the handler's sampling decision; both are
                    // one-shot — pipelined followers on this wake see zero.
                    let t_handle = Instant::now();
                    ce_telemetry::trace::clear_pending();
                    let park_ns = std::mem::take(&mut conn.park_ns);
                    if park_ns > 0 {
                        ce_telemetry::trace::pending_stage("park", park_ns);
                    }
                    let dispatch_ns = conn
                        .queued_at
                        .take()
                        .map(|at| at.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64)
                        .unwrap_or(0);
                    if dispatch_ns > 0 {
                        ce_telemetry::trace::pending_stage("dispatch", dispatch_ns);
                    }
                    let response = ctx.handler.handle(&request);
                    conn.served += 1;
                    let keep = request.keep_alive()
                        && conn.served < config.keep_alive_max_requests
                        && !ctx.stop.load(Ordering::SeqCst);
                    ctx.counters.requests.fetch_add(1, Ordering::Relaxed);
                    response.serialize_into(keep, &mut conn.out);
                    // Serving counts as activity: a client draining our
                    // responses must not be idle-closed mid-conversation.
                    conn.last_activity = Instant::now();
                    // A sampled request (the handler started a trace) is
                    // flushed inline so its `write` stage is real and the
                    // record can be published with the full server-side
                    // total; everything else keeps the batched flush.
                    let traced = ce_telemetry::trace::active_id().is_some();
                    if traced {
                        let t_write = Instant::now();
                        let ok = flush_out(conn, config);
                        ce_telemetry::trace::stage(
                            "write",
                            t_write.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
                        );
                        let total = park_ns
                            .saturating_add(dispatch_ns)
                            .saturating_add(
                                t_handle.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
                            );
                        ce_telemetry::trace::finish(Some(total));
                        if !ok || !keep {
                            return ConnFate::Close;
                        }
                        continue;
                    }
                    if !keep {
                        let _ = flush_out(conn, config);
                        return ConnFate::Close;
                    }
                    if conn.out.len() >= 64 * 1024 && !flush_out(conn, config) {
                        return ConnFate::Close;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    ctx.counters.parse_errors.fetch_add(1, Ordering::Relaxed);
                    Response::new(e.status()).serialize_into(false, &mut conn.out);
                    let _ = flush_out(conn, config);
                    return ConnFate::Close;
                }
            }
        }
        if !conn.out.is_empty() && !flush_out(conn, config) {
            return ConnFate::Close;
        }
        match conn.parser.fill_from(&mut conn.stream) {
            Ok(0) => return ConnFate::Close, // peer closed
            Ok(_) => conn.last_activity = Instant::now(),
            Err(e)
                if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
            {
                return ConnFate::Park;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return ConnFate::Close,
        }
    }
}

/// Writes the whole output buffer, riding out `WouldBlock` via writability
/// waits bounded by the stall budget. `false` = connection is unusable.
fn flush_out(conn: &mut Conn, config: &ServerConfig) -> bool {
    let mut off = 0;
    while off < conn.out.len() {
        match conn.stream.write(&conn.out[off..]) {
            Ok(0) => return false,
            Ok(n) => off += n,
            Err(e)
                if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
            {
                #[cfg(unix)]
                {
                    use std::os::fd::AsRawFd;
                    match poll::wait_writable(conn.stream.as_raw_fd(), config.read_timeout) {
                        Ok(true) => continue,
                        _ => return false,
                    }
                }
                #[cfg(not(unix))]
                return false;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    conn.out.clear();
    let _ = config;
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;

    fn echo_server(config: ServerConfig) -> HttpServer {
        HttpServer::bind(
            "127.0.0.1:0",
            config,
            Arc::new(|req: &Request| {
                match (req.method, req.path()) {
                    ("GET", "/healthz") => Response::text(200, "ok"),
                    ("POST", "/echo") => Response::json(200, req.body),
                    _ => Response::text(404, "not found"),
                }
            }),
        )
        .expect("bind")
    }

    fn tick_config() -> ServerConfig {
        ServerConfig { event_driven: false, ..ServerConfig::default() }
    }

    /// Manual latency probe (`cargo test -p ce-server --release -- --ignored
    /// --nocapture raw_round_trip`): isolates the HTTP-stack cost of one
    /// keep-alive round-trip from any handler/application work.
    #[test]
    #[ignore]
    fn raw_round_trip_latency_probe() {
        let server =
            echo_server(ServerConfig { keep_alive_max_requests: usize::MAX, ..Default::default() });
        let mut client = HttpClient::connect(server.local_addr()).unwrap();
        let body = vec![b'x'; 512];
        for _ in 0..500 {
            client.post("/echo", &body).unwrap();
        }
        let n = 5000u32;
        let t = Instant::now();
        for _ in 0..n {
            client.post("/echo", &body).unwrap();
        }
        let per = t.elapsed() / n;
        println!("raw HTTP round-trip: {per:?} ({n} reqs, 512B body)");
        server.shutdown();
    }

    #[test]
    fn serves_get_and_post_over_keep_alive() {
        let server = echo_server(ServerConfig::default());
        assert_eq!(server.event_driven(), poll::SUPPORTED);
        let mut client = HttpClient::connect(server.local_addr()).unwrap();
        let resp = client.get("/healthz").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"ok");
        // Same connection, second request: keep-alive works.
        let resp = client.post("/echo", b"{\"x\":1}").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"{\"x\":1}");
        let resp = client.get("/nope").unwrap();
        assert_eq!(resp.status, 404);
        assert_eq!(server.stats().requests, 3);
        server.shutdown();
    }

    #[test]
    fn large_bodies_round_trip_across_fill_chunks() {
        // A body far larger than one FILL_CHUNK read: the request spans many
        // readiness cycles and the response spans multiple socket writes.
        let server = echo_server(ServerConfig::default());
        let mut client = HttpClient::connect(server.local_addr()).unwrap();
        let body: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        for round in 0..2 {
            let resp = client.post("/echo", &body).unwrap();
            assert_eq!(resp.status, 200, "round {round}");
            assert_eq!(resp.body, body, "round {round}");
        }
        server.shutdown();
    }

    #[test]
    fn tick_fallback_serves_identically() {
        let server = echo_server(tick_config());
        assert!(!server.event_driven());
        let mut client = HttpClient::connect(server.local_addr()).unwrap();
        for i in 0..3 {
            let body = format!("{{\"i\":{i}}}");
            let resp = client.post("/echo", body.as_bytes()).unwrap();
            assert_eq!(resp.status, 200);
            assert_eq!(resp.body, body.as_bytes());
        }
        assert_eq!(server.stats().requests, 3);
        server.shutdown();
    }

    #[test]
    fn malformed_request_gets_400_and_close() {
        let server = echo_server(ServerConfig::default());
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"NOT A REQUEST\r\n\r\n").unwrap();
        let mut out = Vec::new();
        stream.read_to_end(&mut out).unwrap(); // server closes after the error
        let text = String::from_utf8_lossy(&out);
        assert!(text.starts_with("HTTP/1.1 400"), "got: {text}");
        assert!(server.stats().parse_errors >= 1);
        server.shutdown();
    }

    #[test]
    fn oversized_body_gets_413() {
        let mut config = ServerConfig::default();
        config.limits.max_body_bytes = 8;
        let server = echo_server(config);
        let mut client = HttpClient::connect(server.local_addr()).unwrap();
        let resp = client.post("/echo", &[b'x'; 64]).unwrap();
        assert_eq!(resp.status, 413);
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_all_served() {
        let server = Arc::new(echo_server(ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        }));
        let mut handles = Vec::new();
        for t in 0..8 {
            let addr = server.local_addr();
            handles.push(std::thread::spawn(move || {
                let mut client = HttpClient::connect(addr).unwrap();
                for i in 0..5 {
                    let body = format!("{{\"t\":{t},\"i\":{i}}}");
                    let resp = client.post("/echo", body.as_bytes()).unwrap();
                    assert_eq!(resp.status, 200);
                    assert_eq!(resp.body, body.as_bytes());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.stats().requests, 40);
        server.shutdown();
    }

    #[test]
    fn drain_with_idle_parked_connections_is_prompt() {
        let server = echo_server(ServerConfig::default());
        let mut client = HttpClient::connect(server.local_addr()).unwrap();
        assert_eq!(client.get("/healthz").unwrap().status, 200);
        // The connection is idle keep-alive (parked in the poller in event
        // mode); the drain must not wait out the 5s read timeout.
        let t = Instant::now();
        server.shutdown();
        assert!(t.elapsed() < Duration::from_millis(500), "drain lagged: {:?}", t.elapsed());
    }

    #[test]
    fn small_read_tick_drains_idle_connections_promptly() {
        let server = echo_server(ServerConfig {
            read_tick: Duration::from_millis(2),
            ..tick_config()
        });
        let mut client = HttpClient::connect(server.local_addr()).unwrap();
        assert_eq!(client.get("/healthz").unwrap().status, 200);
        // The connection is idle keep-alive; with a 2ms tick the worker
        // notices the stop flag long before the 100ms default would.
        let t = Instant::now();
        server.shutdown();
        assert!(t.elapsed() < Duration::from_millis(500), "drain lagged: {:?}", t.elapsed());
    }

    #[test]
    fn idle_clock_resets_when_requests_are_served() {
        // Regression: a keep-alive client that keeps a request/response
        // conversation going, with per-exchange gaps just under the idle
        // timeout, must never be idle-closed — serving is activity too.
        let server = echo_server(ServerConfig {
            read_timeout: Duration::from_millis(150),
            read_tick: Duration::from_millis(5),
            ..ServerConfig::default()
        });
        let mut client = HttpClient::connect(server.local_addr()).unwrap();
        for _ in 0..4 {
            std::thread::sleep(Duration::from_millis(100)); // under the idle deadline
            let resp = client.get("/healthz").expect("connection stayed open");
            assert_eq!(resp.status, 200);
        }
        // And past the deadline the server *does* close it.
        std::thread::sleep(Duration::from_millis(400));
        let gone = client.get("/healthz").is_err();
        assert!(gone, "idle connection should have been reaped");
        server.shutdown();
    }

    #[test]
    fn pooled_connections_serve_without_allocating() {
        let server = echo_server(ServerConfig::default());
        let mut client = HttpClient::connect(server.local_addr()).unwrap();
        let body = vec![b'q'; 512];
        // Warm-up: grow every pooled buffer to its high-water mark.
        for _ in 0..20 {
            assert_eq!(client.post("/echo", &body).unwrap().status, 200);
        }
        let warmed = server.stats().buffer_allocs;
        for _ in 0..200 {
            assert_eq!(client.post("/echo", &body).unwrap().status, 200);
        }
        let after = server.stats().buffer_allocs;
        assert_eq!(
            after, warmed,
            "steady-state keep-alive serving must not grow any buffer"
        );
        server.shutdown();
    }

    #[test]
    fn graceful_shutdown_is_idempotent_and_joins() {
        let server = echo_server(ServerConfig::default());
        let addr = server.local_addr();
        let mut client = HttpClient::connect(addr).unwrap();
        assert_eq!(client.get("/healthz").unwrap().status, 200);
        server.shutdown();
        server.shutdown();
        // After drain, new connections are refused (listener closed).
        assert!(
            HttpClient::connect(addr).is_err()
                || HttpClient::connect(addr).unwrap().get("/healthz").is_err()
        );
    }
}
