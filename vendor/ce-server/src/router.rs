//! The consistent-hash request router: signature → ring candidates →
//! forward with health-checked failover, bounded by a retry budget and a
//! wall-clock deadline.
//!
//! [`Router`] is a forwarding *engine*, not a server — the serving layer
//! above (e.g. `cardest::router`) owns the listening `HttpServer`, decides
//! which paths are proxied, and computes each request's signature. Per
//! forward:
//!
//! 1. The [`Fleet`] yields the signature's live candidates in ring order.
//! 2. Each candidate leg reuses a pooled keep-alive connection when one
//!    exists (a fresh connect otherwise), with the leg's read timeout
//!    clamped to the remaining deadline. A pooled stream that fails is
//!    silently retried once on a fresh connection — shards idle out
//!    keep-alive streams, and a stale pool entry says nothing about shard
//!    health — so only the fresh stream's verdict condemns the leg.
//! 3. A leg fails over on an I/O error (connect refusal, reset, timeout,
//!    framing loss) — which also feeds the fleet's hysteresis as a failure
//!    observation — or on a shed `503` carrying `Retry-After`, which does
//!    *not*: an overloaded shard is alive, and ejecting it for shedding
//!    would amplify the overload onto its neighbours.
//! 4. Failover stops at the retry budget or the deadline, whichever comes
//!    first; exhaustion answers `502` (every leg died) or `503` +
//!    `Retry-After` (the last leg shed), `504` on deadline, and `503` when
//!    the ring is empty.
//!
//! A forwarded response is passed through body-byte-identical: the router
//! copies status and entity headers and re-frames `Content-Length` /
//! `Connection` itself, so an interval served through the router is
//! bit-for-bit what the shard produced (the `cluster` experiment audits
//! this).

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::client::{ClientConfig, ClientResponse, HttpClient};
use crate::health::Fleet;
use crate::http::{Request, Response};

/// Tuning for [`Router`].
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Extra legs allowed after the first (0 = no failover).
    pub retry_budget: usize,
    /// Whole-request wall-clock budget across every leg.
    pub deadline: Duration,
    /// TCP connect timeout per leg.
    pub connect_timeout: Duration,
    /// Read timeout per leg (further clamped to the remaining deadline).
    pub read_timeout: Duration,
    /// Pooled keep-alive connections kept per shard.
    pub pool_per_shard: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            retry_budget: 2,
            deadline: Duration::from_secs(2),
            connect_timeout: Duration::from_millis(250),
            read_timeout: Duration::from_secs(1),
            pool_per_shard: 8,
        }
    }
}

/// Counters over the router's forwarding history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Forward calls (client requests routed).
    pub requests: u64,
    /// Requests answered by their primary (first candidate).
    pub served_primary: u64,
    /// Requests answered by a non-primary candidate.
    pub served_failover: u64,
    /// Individual legs that failed with an I/O error.
    pub leg_errors: u64,
    /// Pooled streams found dead on reuse (shard idled them out) and
    /// silently replaced by a fresh connection — not leg failures.
    pub pool_stale: u64,
    /// Individual legs answered with a shed `503` + `Retry-After`.
    pub leg_sheds: u64,
    /// Requests that exhausted every candidate / the retry budget.
    pub exhausted: u64,
    /// Requests that ran out of deadline mid-failover.
    pub deadline_exceeded: u64,
    /// Requests refused because no shard was live.
    pub no_live_shards: u64,
}

struct Counters {
    requests: AtomicU64,
    served_primary: AtomicU64,
    served_failover: AtomicU64,
    leg_errors: AtomicU64,
    pool_stale: AtomicU64,
    leg_sheds: AtomicU64,
    exhausted: AtomicU64,
    deadline_exceeded: AtomicU64,
    no_live_shards: AtomicU64,
}

/// The forwarding engine; see module docs.
pub struct Router {
    fleet: Fleet,
    config: RouterConfig,
    /// Idle keep-alive connections per shard *name* (not address: a shard
    /// restarted on a new port must not inherit stale streams — the pool is
    /// keyed so its entries die with the report of the first failed leg).
    pools: Mutex<HashMap<String, Vec<(SocketAddr, HttpClient)>>>,
    counters: Counters,
}

/// One leg's outcome, internal to the failover walk.
enum Leg {
    /// A forwardable response (shed 503s are *not* this).
    Served(ClientResponse),
    /// The shard shed with `503` + `Retry-After`: alive, overloaded.
    Shed(ClientResponse),
    /// The leg died (connect/read/write error, framing loss).
    Dead,
}

impl Router {
    /// Builds a router over `fleet`.
    pub fn new(fleet: Fleet, config: RouterConfig) -> Router {
        Router {
            fleet,
            config,
            pools: Mutex::new(HashMap::new()),
            counters: Counters {
                requests: AtomicU64::new(0),
                served_primary: AtomicU64::new(0),
                served_failover: AtomicU64::new(0),
                leg_errors: AtomicU64::new(0),
                pool_stale: AtomicU64::new(0),
                leg_sheds: AtomicU64::new(0),
                exhausted: AtomicU64::new(0),
                deadline_exceeded: AtomicU64::new(0),
                no_live_shards: AtomicU64::new(0),
            },
        }
    }

    /// The fleet this router routes over (shared with the health checker).
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// Forwarding counters.
    pub fn stats(&self) -> RouterStats {
        RouterStats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            served_primary: self.counters.served_primary.load(Ordering::Relaxed),
            served_failover: self.counters.served_failover.load(Ordering::Relaxed),
            leg_errors: self.counters.leg_errors.load(Ordering::Relaxed),
            pool_stale: self.counters.pool_stale.load(Ordering::Relaxed),
            leg_sheds: self.counters.leg_sheds.load(Ordering::Relaxed),
            exhausted: self.counters.exhausted.load(Ordering::Relaxed),
            deadline_exceeded: self.counters.deadline_exceeded.load(Ordering::Relaxed),
            no_live_shards: self.counters.no_live_shards.load(Ordering::Relaxed),
        }
    }

    /// Routes one request by `signature` through the fleet; always returns
    /// *some* response (routing failures map to 502/503/504 as per the
    /// module docs).
    pub fn forward(&self, request: &Request, signature: u64) -> Response {
        self.forward_with_header(request, signature, None)
    }

    /// Same as [`Router::forward`], but appends `extra` as a request header
    /// on every outgoing leg when the original request does not already
    /// carry it — how the cluster router propagates a minted trace ID to
    /// the shard that serves the request.
    pub fn forward_with_header(
        &self,
        request: &Request,
        signature: u64,
        extra: Option<(&str, &str)>,
    ) -> Response {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let deadline = Instant::now() + self.config.deadline;
        let candidates = self.fleet.candidates(signature);
        if candidates.is_empty() {
            self.counters.no_live_shards.fetch_add(1, Ordering::Relaxed);
            return Response::json(503, "{\"error\":\"no live shards\"}")
                .header("Retry-After", "1");
        }
        let legs_allowed = self.config.retry_budget.saturating_add(1);
        let mut last_shed: Option<ClientResponse> = None;
        for (attempt, (name, addr)) in candidates.iter().take(legs_allowed).enumerate() {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                self.counters.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                return Response::json(504, "{\"error\":\"routing deadline exceeded\"}");
            }
            match self.try_leg(request, extra, name, *addr, remaining) {
                Leg::Served(resp) => {
                    if attempt == 0 {
                        self.counters.served_primary.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.counters.served_failover.fetch_add(1, Ordering::Relaxed);
                    }
                    // A served leg is a success observation for hysteresis.
                    self.fleet.report(name, true, false);
                    return passthrough(&resp);
                }
                Leg::Shed(resp) => {
                    // Alive but overloaded: fail over, but do not count
                    // against the shard's health.
                    self.counters.leg_sheds.fetch_add(1, Ordering::Relaxed);
                    last_shed = Some(resp);
                }
                Leg::Dead => {
                    self.counters.leg_errors.fetch_add(1, Ordering::Relaxed);
                    ce_telemetry::trace::event("leg_dead", name);
                    self.fleet.report(name, false, false);
                }
            }
        }
        self.counters.exhausted.fetch_add(1, Ordering::Relaxed);
        ce_telemetry::trace::anomaly("route_exhausted", "all candidate legs failed or shed");
        match last_shed {
            // Every reachable candidate shed: surface the shed (with its
            // Retry-After) rather than inventing a gateway error.
            Some(resp) => passthrough(&resp),
            None => Response::json(502, "{\"error\":\"all candidate shards failed\"}"),
        }
    }

    /// One leg: pooled-or-fresh connection, send, classify.
    ///
    /// A pooled stream may have been closed by the shard while idle (the
    /// server's keep-alive `read_timeout`), so its failure says nothing
    /// about shard health: the leg gets one silent fresh-connection retry,
    /// and only the fresh stream's verdict condemns the leg. Without this,
    /// a low-traffic fleet answers spurious `502`s — every pooled leg gone
    /// stale burns retry budget *and* a health strike against a healthy
    /// shard.
    fn try_leg(
        &self,
        request: &Request,
        extra: Option<(&str, &str)>,
        name: &str,
        addr: SocketAddr,
        remaining: Duration,
    ) -> Leg {
        let read_timeout = self.config.read_timeout.min(remaining);
        if let Some(client) = self.checkout(name, addr) {
            match self.send_leg(client, request, extra, name, addr, read_timeout) {
                Some(leg) => return leg,
                None => {
                    self.counters.pool_stale.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let config = ClientConfig {
            connect_timeout: self.config.connect_timeout.min(remaining),
            read_timeout,
            write_timeout: read_timeout,
        };
        match HttpClient::connect_with(addr, config) {
            Ok(client) => self
                .send_leg(client, request, extra, name, addr, read_timeout)
                .unwrap_or(Leg::Dead),
            Err(_) => Leg::Dead,
        }
    }

    /// Sends the request on one concrete stream. `None` means the stream
    /// died (I/O error, framing loss) — the caller decides whether that
    /// condemns the leg or just the stream.
    fn send_leg(
        &self,
        mut client: HttpClient,
        request: &Request,
        extra: Option<(&str, &str)>,
        name: &str,
        addr: SocketAddr,
        read_timeout: Duration,
    ) -> Option<Leg> {
        if client.set_read_timeout(read_timeout).is_err() {
            return None;
        }
        // Hop-by-hop / framing headers are re-emitted by the client leg
        // itself; everything else passes through as a borrowed iterator —
        // no per-leg header allocation.
        let headers = request.headers.iter().filter(|(k, _)| {
            !k.eq_ignore_ascii_case("content-length")
                && !k.eq_ignore_ascii_case("connection")
                && !k.eq_ignore_ascii_case("host")
        });
        // The injected header only fills a gap — a client-supplied value
        // keeps precedence so end-to-end IDs survive the hop untouched.
        let extra = extra.filter(|(k, _)| request.headers.get(k).is_none());
        let headers = headers.chain(extra);
        match client.request(request.method, request.target, headers, request.body) {
            Ok(resp) => {
                let shed = resp.status == 503 && resp.retry_after().is_some();
                // Keep the stream for the next leg to this shard. A shed
                // response is still a well-framed keep-alive exchange.
                self.checkin(name, addr, client);
                if shed {
                    Some(Leg::Shed(resp))
                } else {
                    Some(Leg::Served(resp))
                }
            }
            Err(_) => None, // the stream is in an unknown state: drop it
        }
    }

    /// Pops an idle pooled connection for `name`, discarding entries dialed
    /// to a stale address.
    fn checkout(&self, name: &str, addr: SocketAddr) -> Option<HttpClient> {
        let mut pools = self.pools.lock().unwrap_or_else(|e| e.into_inner());
        let pool = pools.get_mut(name)?;
        while let Some((dialed, client)) = pool.pop() {
            if dialed == addr {
                return Some(client);
            }
            // Stale address (shard restarted elsewhere): drop the stream.
        }
        None
    }

    /// Returns an idle connection to the pool, bounded per shard.
    fn checkin(&self, name: &str, addr: SocketAddr, client: HttpClient) {
        let mut pools = self.pools.lock().unwrap_or_else(|e| e.into_inner());
        let pool = pools.entry(name.to_string()).or_default();
        if pool.len() < self.config.pool_per_shard {
            pool.push((addr, client));
        }
    }
}

/// Re-frames a shard response for the router's own client: status and
/// entity headers pass through, the body is byte-identical; framing headers
/// are re-emitted by the server layer.
fn passthrough(resp: &ClientResponse) -> Response {
    let mut out = Response::new(resp.status);
    for (name, value) in &resp.headers {
        if name == "content-length" || name == "connection" {
            continue;
        }
        out = out.header(name, value);
    }
    out.body(resp.body.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::HealthConfig;
    use crate::http::Headers;
    use crate::server::{HttpServer, ServerConfig};
    use std::sync::Arc;

    fn shard(tag: &'static str) -> HttpServer {
        HttpServer::bind(
            "127.0.0.1:0",
            ServerConfig { read_tick: Duration::from_millis(5), ..ServerConfig::default() },
            Arc::new(move |req: &Request| match (req.method, req.path()) {
                ("GET", "/readyz") => Response::text(200, "ready"),
                ("POST", "/echo") => {
                    let mut body = req.body.to_vec();
                    body.extend_from_slice(tag.as_bytes());
                    Response::json(200, body)
                }
                ("POST", "/shed") => {
                    Response::json(503, "{\"error\":\"busy\"}").header("Retry-After", "1")
                }
                _ => Response::text(404, "nope"),
            }),
        )
        .expect("bind shard")
    }

    fn post<'a>(target: &'a str, body: &'a [u8]) -> Request<'a> {
        Request {
            method: "POST",
            target,
            http11: true,
            headers: Headers::from_pairs(&[("content-type", "application/json")]),
            body,
        }
    }

    fn fleet_of(shards: &[(&str, SocketAddr)], fail_threshold: u32) -> Fleet {
        let pairs: Vec<(String, SocketAddr)> =
            shards.iter().map(|(n, a)| (n.to_string(), *a)).collect();
        Fleet::new(
            &pairs,
            32,
            HealthConfig { fail_threshold, ..HealthConfig::default() },
        )
    }

    #[test]
    fn forwards_to_a_live_shard_and_passes_the_body_through() {
        let a = shard("+A");
        let fleet = fleet_of(&[("a", a.local_addr())], 3);
        let router = Router::new(fleet, RouterConfig::default());
        let resp = router.forward(&post("/echo", b"xyz"), 1);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"xyz+A");
        assert_eq!(router.stats().served_primary, 1);
        // Keep-alive reuse: a second forward pulls the pooled stream.
        let resp = router.forward(&post("/echo", b"q"), 1);
        assert_eq!(resp.body, b"q+A");
        assert_eq!(a.stats().accepted, 1, "one connection, two requests");
    }

    #[test]
    fn fails_over_to_the_next_ring_position_when_a_shard_is_dead() {
        let a = shard("+A");
        let b = shard("+B");
        let dead: SocketAddr = {
            // Bind-then-drop: the port is very likely refused right after.
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let fleet = fleet_of(
            &[("a", a.local_addr()), ("b", b.local_addr()), ("dead", dead)],
            3,
        );
        let router = Router::new(fleet, RouterConfig::default());
        // Route every signature; the ones owned by `dead` must fail over.
        let mut failovers = 0;
        for sig in 0..64u64 {
            let resp = router.forward(&post("/echo", b"x"), sig.wrapping_mul(0x9e3779b97f4a7c15));
            assert_eq!(resp.status, 200, "every request must be served");
            if resp.body.ends_with(b"+A") || resp.body.ends_with(b"+B") {
                // served somewhere real
            } else {
                panic!("unexpected body {:?}", resp.body);
            }
        }
        let stats = router.stats();
        failovers += stats.served_failover;
        assert!(failovers > 0, "some keys must be owned by the dead shard");
        assert_eq!(stats.requests, 64);
        assert_eq!(stats.served_primary + stats.served_failover, 64);
        assert!(stats.leg_errors > 0);
        // Repeated leg errors ejected the dead shard via router reports.
        assert!(!router.fleet().is_live("dead"), "dead shard should be ejected");
    }

    #[test]
    fn shed_503_fails_over_without_hurting_health() {
        let a = shard("+A");
        let b = shard("+B");
        let fleet = fleet_of(&[("a", a.local_addr()), ("b", b.local_addr())], 1);
        let router = Router::new(fleet, RouterConfig::default());
        // /shed always sheds on either shard; the router retries the other
        // and ultimately passes the shed through (both shed).
        let resp = router.forward(&post("/shed", b""), 99);
        assert_eq!(resp.status, 503);
        assert!(resp.headers.iter().any(|(k, _)| k == "retry-after"));
        let stats = router.stats();
        assert_eq!(stats.leg_sheds, 2, "both candidates shed");
        assert_eq!(stats.leg_errors, 0);
        assert!(router.fleet().is_live("a") && router.fleet().is_live("b"),
            "sheds must not eject (fail_threshold is 1 here)");
    }

    #[test]
    fn stale_pooled_connection_is_replaced_not_condemned() {
        // A shard that idles out keep-alive streams quickly: the pooled
        // connection from the first forward is dead by the second, which
        // must be served on a silent fresh connection — zero leg errors,
        // zero health strikes, no failover.
        let a = HttpServer::bind(
            "127.0.0.1:0",
            ServerConfig {
                read_timeout: Duration::from_millis(50),
                read_tick: Duration::from_millis(5),
                ..ServerConfig::default()
            },
            Arc::new(move |req: &Request| match (req.method, req.path()) {
                ("POST", "/echo") => Response::json(200, req.body),
                _ => Response::text(404, "nope"),
            }),
        )
        .expect("bind shard");
        let fleet = fleet_of(&[("a", a.local_addr())], 1);
        let router = Router::new(fleet, RouterConfig::default());
        assert_eq!(router.forward(&post("/echo", b"one"), 1).status, 200);
        std::thread::sleep(Duration::from_millis(300)); // shard idles the stream out
        let resp = router.forward(&post("/echo", b"two"), 1);
        assert_eq!(resp.status, 200, "stale pooled stream must not fail the request");
        assert_eq!(resp.body, b"two");
        let stats = router.stats();
        assert_eq!(stats.pool_stale, 1, "the dead pooled stream is accounted");
        assert_eq!(stats.leg_errors, 0, "a stale pool entry is not a leg error");
        assert_eq!(stats.served_primary, 2, "no failover happened");
        assert!(
            router.fleet().is_live("a"),
            "fail_threshold 1: a health strike would have ejected the shard"
        );
    }

    #[test]
    fn empty_ring_answers_503_and_budget_bounds_legs() {
        let fleet = fleet_of(&[("a", "127.0.0.1:1".parse().unwrap())], 1);
        fleet.report("a", false, true); // threshold 1: ejected
        let router = Router::new(fleet, RouterConfig::default());
        let resp = router.forward(&post("/echo", b"x"), 5);
        assert_eq!(resp.status, 503);
        assert_eq!(router.stats().no_live_shards, 1);
    }

    #[test]
    fn all_dead_candidates_answer_502_within_budget() {
        // Three unreachable shards, budget 1 → at most 2 legs tried.
        let dead = |_: usize| -> SocketAddr {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let fleet = fleet_of(&[("x", dead(0)), ("y", dead(1)), ("z", dead(2))], 10);
        let router = Router::new(
            fleet,
            RouterConfig { retry_budget: 1, ..RouterConfig::default() },
        );
        let resp = router.forward(&post("/echo", b"x"), 7);
        assert_eq!(resp.status, 502);
        let stats = router.stats();
        assert_eq!(stats.exhausted, 1);
        assert_eq!(stats.leg_errors, 2, "budget 1 means two legs max");
    }
}
