//! The consistent-hash request router: signature → ring candidates →
//! forward with health-checked failover, bounded by a retry budget and a
//! wall-clock deadline.
//!
//! [`Router`] is a forwarding *engine*, not a server — the serving layer
//! above (e.g. `cardest::router`) owns the listening `HttpServer`, decides
//! which paths are proxied, and computes each request's signature. Per
//! forward:
//!
//! 1. The [`Fleet`] yields the signature's live candidates in ring order.
//!    With `replicas > 1` the first R candidates are the key's *replica
//!    set*: the primary serves, the rest are warm backups (see
//!    [`Router::replicate`]).
//! 2. Each candidate leg reuses a pooled keep-alive connection when one
//!    exists (a fresh connect otherwise), with the leg's read timeout
//!    clamped to the remaining deadline. A pooled stream that fails is
//!    silently retried once on a fresh connection — shards idle out
//!    keep-alive streams, and a stale pool entry says nothing about shard
//!    health — so only the fresh stream's verdict condemns the leg.
//! 3. A leg fails over on an I/O error (connect refusal, reset, timeout,
//!    framing loss) — which also feeds the fleet's hysteresis as a failure
//!    observation — or on a shed `503` carrying `Retry-After`, which does
//!    *not*: an overloaded shard is alive, and ejecting it for shedding
//!    would amplify the overload onto its neighbours.
//! 4. Failover stops at the retry budget or the deadline, whichever comes
//!    first; exhaustion answers `502` (every leg died) or `503` +
//!    `Retry-After` (the last leg shed), `504` on deadline, and `503` when
//!    the ring is empty.
//!
//! # Hedging
//!
//! With a [`HedgePolicy`] other than `Off`, a request that the primary has
//! not answered within the hedge delay gets a *second, concurrent* leg at
//! the first backup — first response wins. This trades a bounded amount of
//! duplicate work for the tail: a primary stalled by GC, a queue spike, or
//! an injected network delay no longer drags the request to its read
//! timeout when a warm backup can answer in microseconds. Accounting is
//! deterministic at decision time: `hedges_fired` counts races started,
//! and exactly one of `hedge_wins` (the backup answered first) or
//! `hedge_cancelled` (the primary answered first after all) follows per
//! race that produces a response. A primary that *fails fast* (dead or
//! shed before the hedge delay) falls over sequentially — that is ordinary
//! failover, not a hedge. The losing leg is never aborted mid-flight
//! (HTTP/1.1 has no cancel); it finishes on its own detached thread,
//! reports its health observation, and parks its connection back in the
//! pool — so a hedge costs one duplicated request, not a poisoned stream.
//!
//! `HedgePolicy::Adaptive` derives the delay from the rolling p99 of the
//! last 256 served legs (clamped to `[1ms, read_timeout]`), so the hedge
//! threshold tracks the fleet's actual tail rather than a guess; until 32
//! samples exist no hedge fires.
//!
//! # Truth fan-out
//!
//! [`Router::replicate`] re-posts an observation body to every replica of
//! its key except the shard that already served it, so each backup's
//! prequential calibration state tracks the live stream and a promoted
//! backup serves from *warm* calibration. Propagation is best-effort with
//! a per-replica retry budget; replicas that miss an observation are
//! accounted per shard in [`Router::truth_lag`]. Shards deduplicate
//! replayed observations by the `x-ce-truth-id` header, so the fan-out
//! (and a hedge duplicate) is idempotent — see `DESIGN.md` §14 for why
//! best-effort is safe for prequential calibration.
//!
//! A forwarded response is passed through body-byte-identical: the router
//! copies status and entity headers and re-frames `Content-Length` /
//! `Connection` itself, so an interval served through the router is
//! bit-for-bit what the shard produced (the `cluster` experiment audits
//! this).

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use crate::client::{ClientConfig, ClientResponse, HttpClient};
use crate::health::Fleet;
use crate::http::{Headers, Request, Response};

/// When (if ever) the router races a second leg against a slow primary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HedgePolicy {
    /// Never hedge (single-leg failover only) — the PR 6 behavior.
    Off,
    /// Hedge when the primary has not answered within the given delay.
    Fixed(Duration),
    /// Hedge at the rolling p99 of served-leg latency (256-sample window,
    /// clamped to `[1ms, read_timeout]`); inactive below 32 samples.
    Adaptive,
}

/// Tuning for [`Router`].
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Extra legs allowed after the first (0 = no failover).
    pub retry_budget: usize,
    /// Whole-request wall-clock budget across every leg.
    pub deadline: Duration,
    /// TCP connect timeout per leg.
    pub connect_timeout: Duration,
    /// Read timeout per leg (further clamped to the remaining deadline).
    pub read_timeout: Duration,
    /// Pooled keep-alive connections kept per shard.
    pub pool_per_shard: usize,
    /// Replicas per key (1 = single owner, no fan-out — PR 6 semantics).
    pub replicas: usize,
    /// Tail-latency hedging policy for forwarded requests.
    pub hedge: HedgePolicy,
    /// Extra attempts per replica when fanning out a truth post.
    pub truth_retry_budget: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            retry_budget: 2,
            deadline: Duration::from_secs(2),
            connect_timeout: Duration::from_millis(250),
            read_timeout: Duration::from_secs(1),
            pool_per_shard: 8,
            replicas: 1,
            hedge: HedgePolicy::Off,
            truth_retry_budget: 1,
        }
    }
}

/// Counters over the router's forwarding history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Forward calls (client requests routed).
    pub requests: u64,
    /// Requests answered by their primary (first candidate).
    pub served_primary: u64,
    /// Requests answered by a non-primary candidate.
    pub served_failover: u64,
    /// Individual legs that failed with an I/O error.
    pub leg_errors: u64,
    /// Pooled streams found dead on reuse (shard idled them out) and
    /// silently replaced by a fresh connection — not leg failures.
    pub pool_stale: u64,
    /// Individual legs answered with a shed `503` + `Retry-After`.
    pub leg_sheds: u64,
    /// Requests that exhausted every candidate / the retry budget.
    pub exhausted: u64,
    /// Requests that ran out of deadline mid-failover.
    pub deadline_exceeded: u64,
    /// Requests refused because no shard was live.
    pub no_live_shards: u64,
    /// Hedge races started (primary outlived the hedge delay).
    pub hedges_fired: u64,
    /// Races the hedge leg won (backup answered first).
    pub hedge_wins: u64,
    /// Races the primary won after the hedge fired (duplicate discarded).
    pub hedge_cancelled: u64,
    /// Truth posts fanned out to at least one replica.
    pub truth_fanouts: u64,
    /// Individual replica truth posts acknowledged with `200`.
    pub truth_replicated: u64,
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    served_primary: AtomicU64,
    served_failover: AtomicU64,
    leg_errors: AtomicU64,
    pool_stale: AtomicU64,
    leg_sheds: AtomicU64,
    exhausted: AtomicU64,
    deadline_exceeded: AtomicU64,
    no_live_shards: AtomicU64,
    hedges_fired: AtomicU64,
    hedge_wins: AtomicU64,
    hedge_cancelled: AtomicU64,
    truth_fanouts: AtomicU64,
    truth_replicated: AtomicU64,
}

/// What a forward did beyond the response itself — which shard answered
/// (the serving layer needs it to skip that shard in the truth fan-out)
/// and whether a hedge race was started.
#[derive(Debug, Clone, Default)]
pub struct ForwardOutcome {
    /// Name of the shard whose response was returned, if any leg served.
    pub served_by: Option<String>,
    /// Whether the hedge leg was launched for this request.
    pub hedge_fired: bool,
}

/// One leg's outcome, internal to the failover walk.
enum Leg {
    /// A forwardable response (shed 503s are *not* this).
    Served(ClientResponse),
    /// The shard shed with `503` + `Retry-After`: alive, overloaded.
    Shed(ClientResponse),
    /// The leg died (connect/read/write error, framing loss).
    Dead,
}

/// Rolling window of served-leg latencies feeding the adaptive hedge
/// delay. Fixed 256 slots; `p99` sorts a copy (the window is tiny and the
/// lock is held only for the copy).
struct LatencyWindow {
    slots: [u64; 256],
    len: usize,
    next: usize,
}

impl LatencyWindow {
    const MIN_SAMPLES: usize = 32;

    fn new() -> LatencyWindow {
        LatencyWindow { slots: [0; 256], len: 0, next: 0 }
    }

    fn record(&mut self, micros: u64) {
        self.slots[self.next] = micros;
        self.next = (self.next + 1) % self.slots.len();
        self.len = (self.len + 1).min(self.slots.len());
    }

    /// p99 of the window, `None` until enough samples exist to make the
    /// tail estimate meaningful.
    fn p99_micros(&self) -> Option<u64> {
        if self.len < Self::MIN_SAMPLES {
            return None;
        }
        let mut sorted = self.slots[..self.len].to_vec();
        sorted.sort_unstable();
        let idx = (self.len * 99 / 100).min(self.len - 1);
        Some(sorted[idx])
    }
}

/// The shareable half of the router: everything a leg needs to run to
/// completion — fleet (for health reports), config, connection pools, and
/// counters. Hedge legs clone this into their detached threads so a losing
/// leg can still park its connection and file its health observation after
/// the request has been answered.
#[derive(Clone)]
struct LegRunner {
    fleet: Fleet,
    config: RouterConfig,
    /// Idle keep-alive connections per shard *name* (not address: a shard
    /// restarted on a new port must not inherit stale streams — the pool is
    /// keyed so its entries die with the report of the first failed leg).
    pools: Arc<Mutex<PoolMap>>,
    counters: Arc<Counters>,
}

/// Idle connections per shard name; each entry remembers the address it was
/// opened against so a restart on a new port invalidates it.
type PoolMap = HashMap<String, Vec<(SocketAddr, HttpClient)>>;

impl LegRunner {
    /// Runs one complete leg: connect/send/classify *and* the bookkeeping
    /// that goes with the verdict (health report, leg counters, trace
    /// events). Keeping the bookkeeping here means a hedge leg finishing
    /// after its request was answered still feeds hysteresis correctly.
    fn run_leg(
        &self,
        request: &Request,
        extras: &[(&str, &str)],
        name: &str,
        addr: SocketAddr,
        remaining: Duration,
    ) -> Leg {
        match self.try_leg(request, extras, name, addr, remaining) {
            Leg::Served(resp) => {
                // A served leg is a success observation for hysteresis.
                self.fleet.report(name, true, false);
                Leg::Served(resp)
            }
            Leg::Shed(resp) => {
                // Alive but overloaded: fail over, but do not count
                // against the shard's health.
                self.counters.leg_sheds.fetch_add(1, Ordering::Relaxed);
                Leg::Shed(resp)
            }
            Leg::Dead => {
                self.counters.leg_errors.fetch_add(1, Ordering::Relaxed);
                ce_telemetry::trace::event("leg_dead", name);
                self.fleet.report(name, false, false);
                Leg::Dead
            }
        }
    }

    /// One leg: pooled-or-fresh connection, send, classify.
    ///
    /// A pooled stream may have been closed by the shard while idle (the
    /// server's keep-alive `read_timeout`), so its failure says nothing
    /// about shard health: the leg gets one silent fresh-connection retry,
    /// and only the fresh stream's verdict condemns the leg. Without this,
    /// a low-traffic fleet answers spurious `502`s — every pooled leg gone
    /// stale burns retry budget *and* a health strike against a healthy
    /// shard.
    fn try_leg(
        &self,
        request: &Request,
        extras: &[(&str, &str)],
        name: &str,
        addr: SocketAddr,
        remaining: Duration,
    ) -> Leg {
        let read_timeout = self.config.read_timeout.min(remaining);
        if let Some(client) = self.checkout(name, addr) {
            match self.send_leg(client, request, extras, name, addr, read_timeout) {
                Some(leg) => return leg,
                None => {
                    self.counters.pool_stale.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let config = ClientConfig {
            connect_timeout: self.config.connect_timeout.min(remaining),
            read_timeout,
            write_timeout: read_timeout,
        };
        match HttpClient::connect_with(addr, config) {
            Ok(client) => self
                .send_leg(client, request, extras, name, addr, read_timeout)
                .unwrap_or(Leg::Dead),
            Err(_) => Leg::Dead,
        }
    }

    /// Sends the request on one concrete stream. `None` means the stream
    /// died (I/O error, framing loss) — the caller decides whether that
    /// condemns the leg or just the stream.
    fn send_leg(
        &self,
        mut client: HttpClient,
        request: &Request,
        extras: &[(&str, &str)],
        name: &str,
        addr: SocketAddr,
        read_timeout: Duration,
    ) -> Option<Leg> {
        if client.set_read_timeout(read_timeout).is_err() {
            return None;
        }
        // Hop-by-hop / framing headers are re-emitted by the client leg
        // itself; everything else passes through as a borrowed iterator —
        // no per-leg header allocation.
        let headers = request.headers.iter().filter(|(k, _)| {
            !k.eq_ignore_ascii_case("content-length")
                && !k.eq_ignore_ascii_case("connection")
                && !k.eq_ignore_ascii_case("host")
        });
        // Injected headers only fill gaps — a client-supplied value keeps
        // precedence so end-to-end IDs survive the hop untouched.
        let extras = extras
            .iter()
            .filter(|(k, _)| request.headers.get(k).is_none())
            .map(|&(k, v)| (k, v));
        let headers = headers.chain(extras);
        match client.request(request.method, request.target, headers, request.body) {
            Ok(resp) => {
                let shed = resp.status == 503 && resp.retry_after().is_some();
                // Keep the stream for the next leg to this shard. A shed
                // response is still a well-framed keep-alive exchange.
                self.checkin(name, addr, client);
                if shed {
                    Some(Leg::Shed(resp))
                } else {
                    Some(Leg::Served(resp))
                }
            }
            Err(_) => None, // the stream is in an unknown state: drop it
        }
    }

    /// Pops an idle pooled connection for `name`, discarding entries dialed
    /// to a stale address.
    fn checkout(&self, name: &str, addr: SocketAddr) -> Option<HttpClient> {
        let mut pools = self.pools.lock().unwrap_or_else(|e| e.into_inner());
        let pool = pools.get_mut(name)?;
        while let Some((dialed, client)) = pool.pop() {
            if dialed == addr {
                return Some(client);
            }
            // Stale address (shard restarted elsewhere): drop the stream.
        }
        None
    }

    /// Returns an idle connection to the pool, bounded per shard.
    fn checkin(&self, name: &str, addr: SocketAddr, client: HttpClient) {
        let mut pools = self.pools.lock().unwrap_or_else(|e| e.into_inner());
        let pool = pools.entry(name.to_string()).or_default();
        if pool.len() < self.config.pool_per_shard {
            pool.push((addr, client));
        }
    }
}

/// The forwarding engine; see module docs.
pub struct Router {
    runner: LegRunner,
    latency: Mutex<LatencyWindow>,
    truth_lag: Mutex<HashMap<String, u64>>,
}

impl Router {
    /// Builds a router over `fleet`.
    pub fn new(fleet: Fleet, config: RouterConfig) -> Router {
        Router {
            runner: LegRunner {
                fleet,
                config,
                pools: Arc::new(Mutex::new(HashMap::new())),
                counters: Arc::new(Counters::default()),
            },
            latency: Mutex::new(LatencyWindow::new()),
            truth_lag: Mutex::new(HashMap::new()),
        }
    }

    /// The fleet this router routes over (shared with the health checker).
    pub fn fleet(&self) -> &Fleet {
        &self.runner.fleet
    }

    /// The configuration this router was built with.
    pub fn config(&self) -> &RouterConfig {
        &self.runner.config
    }

    /// Forwarding counters.
    pub fn stats(&self) -> RouterStats {
        let c = &self.runner.counters;
        RouterStats {
            requests: c.requests.load(Ordering::Relaxed),
            served_primary: c.served_primary.load(Ordering::Relaxed),
            served_failover: c.served_failover.load(Ordering::Relaxed),
            leg_errors: c.leg_errors.load(Ordering::Relaxed),
            pool_stale: c.pool_stale.load(Ordering::Relaxed),
            leg_sheds: c.leg_sheds.load(Ordering::Relaxed),
            exhausted: c.exhausted.load(Ordering::Relaxed),
            deadline_exceeded: c.deadline_exceeded.load(Ordering::Relaxed),
            no_live_shards: c.no_live_shards.load(Ordering::Relaxed),
            hedges_fired: c.hedges_fired.load(Ordering::Relaxed),
            hedge_wins: c.hedge_wins.load(Ordering::Relaxed),
            hedge_cancelled: c.hedge_cancelled.load(Ordering::Relaxed),
            truth_fanouts: c.truth_fanouts.load(Ordering::Relaxed),
            truth_replicated: c.truth_replicated.load(Ordering::Relaxed),
        }
    }

    /// Observations each backup has missed (best-effort fan-out failures),
    /// sorted by shard name. An operator watching these sees exactly how
    /// stale each backup's calibration can be.
    pub fn truth_lag(&self) -> Vec<(String, u64)> {
        let lag = self.truth_lag.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<(String, u64)> = lag.iter().map(|(k, v)| (k.clone(), *v)).collect();
        out.sort_unstable();
        out
    }

    /// Routes one request by `signature` through the fleet; always returns
    /// *some* response (routing failures map to 502/503/504 as per the
    /// module docs).
    pub fn forward(&self, request: &Request, signature: u64) -> Response {
        self.forward_opts(request, signature, &[], true).0
    }

    /// Same as [`Router::forward`], but appends `extra` as a request header
    /// on every outgoing leg when the original request does not already
    /// carry it — how the cluster router propagates a minted trace ID to
    /// the shard that serves the request.
    pub fn forward_with_header(
        &self,
        request: &Request,
        signature: u64,
        extra: Option<(&str, &str)>,
    ) -> Response {
        match extra {
            Some(pair) => self.forward_opts(request, signature, &[pair], true).0,
            None => self.forward_opts(request, signature, &[], true).0,
        }
    }

    /// Full-control forward: gap-filling `extras` headers on every leg, and
    /// `allow_hedge` to veto hedging per request (the serving layer turns
    /// it off when a duplicate would not be idempotent). Returns the
    /// response plus which shard served it and whether a hedge fired.
    pub fn forward_opts(
        &self,
        request: &Request,
        signature: u64,
        extras: &[(&str, &str)],
        allow_hedge: bool,
    ) -> (Response, ForwardOutcome) {
        let runner = &self.runner;
        runner.counters.requests.fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        let deadline = start + runner.config.deadline;
        let candidates = runner.fleet.candidates(signature);
        let mut outcome = ForwardOutcome::default();
        if candidates.is_empty() {
            runner.counters.no_live_shards.fetch_add(1, Ordering::Relaxed);
            let resp = Response::json(503, "{\"error\":\"no live shards\"}")
                .header("Retry-After", "1");
            return (resp, outcome);
        }
        let legs_allowed = runner.config.retry_budget.saturating_add(1);
        let mut last_shed: Option<ClientResponse> = None;
        // Index of the next candidate to try == legs consumed so far.
        let mut next_leg = 0usize;

        // Hedged race over candidates[0] (primary) and candidates[1]
        // (first backup). Requires a backup to hedge *to* and budget for a
        // second leg; the delay itself comes from the policy.
        if allow_hedge && candidates.len() >= 2 && legs_allowed >= 2 {
            if let Some(delay) = self.hedge_delay() {
                let (tx, rx) = mpsc::channel::<(usize, Leg)>();
                let spawn_leg = |idx: usize| {
                    let runner = runner.clone();
                    let tx = tx.clone();
                    let (name, addr) = candidates[idx].clone();
                    // Explicit call: `request.to_owned()` would resolve to
                    // the `ToOwned` blanket impl on the `Copy` receiver and
                    // keep borrowing the parser buffer.
                    let owned = Request::to_owned(*request);
                    let extras_owned: Vec<(String, String)> =
                        extras.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect();
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    std::thread::Builder::new()
                        .name(format!("ce-route-leg-{idx}"))
                        .spawn(move || {
                            let header_pairs: Vec<(&str, &str)> = owned
                                .headers
                                .iter()
                                .map(|(k, v)| (k.as_str(), v.as_str()))
                                .collect();
                            let extra_pairs: Vec<(&str, &str)> = extras_owned
                                .iter()
                                .map(|(k, v)| (k.as_str(), v.as_str()))
                                .collect();
                            let req = Request {
                                method: &owned.method,
                                target: &owned.target,
                                http11: owned.http11,
                                headers: Headers::from_pairs(&header_pairs),
                                body: &owned.body,
                            };
                            let leg = runner.run_leg(&req, &extra_pairs, &name, addr, remaining);
                            // The receiver is gone once the race is decided;
                            // a late loser's result is intentionally dropped
                            // (its health report already happened above).
                            let _ = tx.send((idx, leg));
                        })
                        .expect("spawn hedge leg");
                };
                spawn_leg(0);
                next_leg = 1;
                let wait = delay.min(deadline.saturating_duration_since(Instant::now()));
                match rx.recv_timeout(wait) {
                    Ok((idx, Leg::Served(resp))) => {
                        // The primary answered inside the hedge window: the
                        // common case, identical to the unhedged path.
                        return (self.finish(&candidates, idx, resp, start, &mut outcome), outcome);
                    }
                    Ok((_, Leg::Shed(resp))) => {
                        // Fast failure before the timer: plain failover.
                        last_shed = Some(resp);
                    }
                    Ok((_, Leg::Dead)) => {}
                    Err(_) => {
                        // The primary outlived the hedge delay: fire the
                        // race leg at the first backup.
                        outcome.hedge_fired = true;
                        runner.counters.hedges_fired.fetch_add(1, Ordering::Relaxed);
                        ce_telemetry::trace::event("hedge_fired", &candidates[1].0);
                        spawn_leg(1);
                        next_leg = 2;
                        let mut outstanding = 2usize;
                        while outstanding > 0 {
                            let remaining = deadline.saturating_duration_since(Instant::now());
                            if remaining.is_zero() {
                                runner.counters.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                                let resp =
                                    Response::json(504, "{\"error\":\"routing deadline exceeded\"}");
                                return (resp, outcome);
                            }
                            match rx.recv_timeout(remaining) {
                                Ok((idx, Leg::Served(resp))) => {
                                    // Decision point: exactly one of wins /
                                    // cancelled per race that serves.
                                    if idx == 1 {
                                        runner.counters.hedge_wins.fetch_add(1, Ordering::Relaxed);
                                    } else {
                                        runner
                                            .counters
                                            .hedge_cancelled
                                            .fetch_add(1, Ordering::Relaxed);
                                    }
                                    return (
                                        self.finish(&candidates, idx, resp, start, &mut outcome),
                                        outcome,
                                    );
                                }
                                Ok((_, Leg::Shed(resp))) => {
                                    outstanding -= 1;
                                    last_shed = Some(resp);
                                }
                                Ok((_, Leg::Dead)) => outstanding -= 1,
                                Err(_) => {
                                    runner
                                        .counters
                                        .deadline_exceeded
                                        .fetch_add(1, Ordering::Relaxed);
                                    let resp = Response::json(
                                        504,
                                        "{\"error\":\"routing deadline exceeded\"}",
                                    );
                                    return (resp, outcome);
                                }
                            }
                        }
                        // Both race legs failed; the sequential walk below
                        // resumes at candidates[2] within the leg budget.
                    }
                }
            }
        }

        // Sequential failover walk (the whole request when not hedging;
        // the continuation when a race burned the first legs).
        while next_leg < candidates.len().min(legs_allowed) {
            let (name, addr) = &candidates[next_leg];
            let attempt = next_leg;
            next_leg += 1;
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                runner.counters.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                return (Response::json(504, "{\"error\":\"routing deadline exceeded\"}"), outcome);
            }
            let leg_start = Instant::now();
            match runner.run_leg(request, extras, name, *addr, remaining) {
                Leg::Served(resp) => {
                    return (
                        self.finish(&candidates, attempt, resp, leg_start, &mut outcome),
                        outcome,
                    );
                }
                Leg::Shed(resp) => last_shed = Some(resp),
                Leg::Dead => {}
            }
        }
        runner.counters.exhausted.fetch_add(1, Ordering::Relaxed);
        ce_telemetry::trace::anomaly("route_exhausted", "all candidate legs failed or shed");
        let resp = match last_shed {
            // Every reachable candidate shed: surface the shed (with its
            // Retry-After) rather than inventing a gateway error.
            Some(resp) => passthrough(&resp),
            None => Response::json(502, "{\"error\":\"all candidate shards failed\"}"),
        };
        (resp, outcome)
    }

    /// Fans an observation body out to every replica of `signature` except
    /// `skip` (the shard that already served it). Best-effort: each replica
    /// gets `truth_retry_budget + 1` attempts; a replica that still misses
    /// the post is accounted in [`Router::truth_lag`] — its calibration
    /// simply lags the stream by one observation, which prequential updates
    /// absorb (no replay, no reconciliation). Returns `(attempted, ok)`.
    pub fn replicate(
        &self,
        request: &Request,
        signature: u64,
        skip: Option<&str>,
        extras: &[(&str, &str)],
    ) -> (usize, usize) {
        let runner = &self.runner;
        if runner.config.replicas <= 1 {
            return (0, 0);
        }
        let replicas = runner.fleet.replica_set(signature, runner.config.replicas);
        let mut attempted = 0usize;
        let mut ok = 0usize;
        for (name, addr) in &replicas {
            if Some(name.as_str()) == skip {
                continue;
            }
            attempted += 1;
            let mut served = false;
            for _ in 0..=runner.config.truth_retry_budget {
                match runner.run_leg(request, extras, name, *addr, runner.config.read_timeout) {
                    Leg::Served(resp) if resp.status == 200 => {
                        served = true;
                        break;
                    }
                    // The shard answered but rejected the post: replaying
                    // the same bytes cannot change the verdict.
                    Leg::Served(_) => break,
                    // Dead or shed: worth another attempt within budget.
                    _ => {}
                }
            }
            if served {
                ok += 1;
                runner.counters.truth_replicated.fetch_add(1, Ordering::Relaxed);
            } else {
                let mut lag = self.truth_lag.lock().unwrap_or_else(|e| e.into_inner());
                *lag.entry(name.clone()).or_insert(0) += 1;
                ce_telemetry::trace::event("truth_lagged", name);
            }
        }
        if attempted > 0 {
            runner.counters.truth_fanouts.fetch_add(1, Ordering::Relaxed);
        }
        (attempted, ok)
    }

    /// Win bookkeeping shared by the race and sequential paths: primary /
    /// failover counters, the latency window sample, and the outcome.
    fn finish(
        &self,
        candidates: &[(String, SocketAddr)],
        idx: usize,
        resp: ClientResponse,
        leg_start: Instant,
        outcome: &mut ForwardOutcome,
    ) -> Response {
        if idx == 0 {
            self.runner.counters.served_primary.fetch_add(1, Ordering::Relaxed);
        } else {
            self.runner.counters.served_failover.fetch_add(1, Ordering::Relaxed);
        }
        let micros = leg_start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        self.latency.lock().unwrap_or_else(|e| e.into_inner()).record(micros);
        outcome.served_by = Some(candidates[idx].0.clone());
        passthrough(&resp)
    }

    /// The active hedge delay, if the policy yields one right now.
    fn hedge_delay(&self) -> Option<Duration> {
        let read_timeout = self.runner.config.read_timeout;
        match self.runner.config.hedge {
            HedgePolicy::Off => None,
            HedgePolicy::Fixed(d) if d > Duration::ZERO => Some(d.min(read_timeout)),
            HedgePolicy::Fixed(_) => None,
            HedgePolicy::Adaptive => {
                let window = self.latency.lock().unwrap_or_else(|e| e.into_inner());
                window.p99_micros().map(|us| {
                    Duration::from_micros(us).clamp(Duration::from_millis(1), read_timeout)
                })
            }
        }
    }
}

/// Re-frames a shard response for the router's own client: status and
/// entity headers pass through, the body is byte-identical; framing headers
/// are re-emitted by the server layer.
fn passthrough(resp: &ClientResponse) -> Response {
    let mut out = Response::new(resp.status);
    for (name, value) in &resp.headers {
        if name == "content-length" || name == "connection" {
            continue;
        }
        out = out.header(name, value);
    }
    out.body(resp.body.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::HealthConfig;
    use crate::http::Headers;
    use crate::server::{HttpServer, ServerConfig};
    use std::sync::Arc;

    fn shard(tag: &'static str) -> HttpServer {
        shard_with_delay(tag, Duration::ZERO)
    }

    fn shard_with_delay(tag: &'static str, delay: Duration) -> HttpServer {
        HttpServer::bind(
            "127.0.0.1:0",
            ServerConfig { read_tick: Duration::from_millis(5), ..ServerConfig::default() },
            Arc::new(move |req: &Request| match (req.method, req.path()) {
                ("GET", "/readyz") => Response::text(200, "ready"),
                ("POST", "/echo") => {
                    if delay > Duration::ZERO {
                        std::thread::sleep(delay);
                    }
                    let mut body = req.body.to_vec();
                    body.extend_from_slice(tag.as_bytes());
                    Response::json(200, body)
                }
                ("POST", "/shed") => {
                    Response::json(503, "{\"error\":\"busy\"}").header("Retry-After", "1")
                }
                _ => Response::text(404, "nope"),
            }),
        )
        .expect("bind shard")
    }

    fn post<'a>(target: &'a str, body: &'a [u8]) -> Request<'a> {
        Request {
            method: "POST",
            target,
            http11: true,
            headers: Headers::from_pairs(&[("content-type", "application/json")]),
            body,
        }
    }

    fn fleet_of(shards: &[(&str, SocketAddr)], fail_threshold: u32) -> Fleet {
        let pairs: Vec<(String, SocketAddr)> =
            shards.iter().map(|(n, a)| (n.to_string(), *a)).collect();
        Fleet::new(
            &pairs,
            32,
            HealthConfig { fail_threshold, ..HealthConfig::default() },
        )
    }

    /// A signature whose primary is `name` on this fleet.
    fn sig_owned_by(fleet: &Fleet, name: &str) -> u64 {
        (0..10_000u64)
            .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .find(|&sig| fleet.candidates(sig)[0].0 == name)
            .expect("some signature lands on every shard")
    }

    #[test]
    fn forwards_to_a_live_shard_and_passes_the_body_through() {
        let a = shard("+A");
        let fleet = fleet_of(&[("a", a.local_addr())], 3);
        let router = Router::new(fleet, RouterConfig::default());
        let resp = router.forward(&post("/echo", b"xyz"), 1);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"xyz+A");
        assert_eq!(router.stats().served_primary, 1);
        // Keep-alive reuse: a second forward pulls the pooled stream.
        let resp = router.forward(&post("/echo", b"q"), 1);
        assert_eq!(resp.body, b"q+A");
        assert_eq!(a.stats().accepted, 1, "one connection, two requests");
    }

    #[test]
    fn fails_over_to_the_next_ring_position_when_a_shard_is_dead() {
        let a = shard("+A");
        let b = shard("+B");
        let dead: SocketAddr = {
            // Bind-then-drop: the port is very likely refused right after.
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let fleet = fleet_of(
            &[("a", a.local_addr()), ("b", b.local_addr()), ("dead", dead)],
            3,
        );
        let router = Router::new(fleet, RouterConfig::default());
        // Route every signature; the ones owned by `dead` must fail over.
        let mut failovers = 0;
        for sig in 0..64u64 {
            let resp = router.forward(&post("/echo", b"x"), sig.wrapping_mul(0x9e3779b97f4a7c15));
            assert_eq!(resp.status, 200, "every request must be served");
            if resp.body.ends_with(b"+A") || resp.body.ends_with(b"+B") {
                // served somewhere real
            } else {
                panic!("unexpected body {:?}", resp.body);
            }
        }
        let stats = router.stats();
        failovers += stats.served_failover;
        assert!(failovers > 0, "some keys must be owned by the dead shard");
        assert_eq!(stats.requests, 64);
        assert_eq!(stats.served_primary + stats.served_failover, 64);
        assert!(stats.leg_errors > 0);
        // Repeated leg errors ejected the dead shard via router reports.
        assert!(!router.fleet().is_live("dead"), "dead shard should be ejected");
    }

    #[test]
    fn shed_503_fails_over_without_hurting_health() {
        let a = shard("+A");
        let b = shard("+B");
        let fleet = fleet_of(&[("a", a.local_addr()), ("b", b.local_addr())], 1);
        let router = Router::new(fleet, RouterConfig::default());
        // /shed always sheds on either shard; the router retries the other
        // and ultimately passes the shed through (both shed).
        let resp = router.forward(&post("/shed", b""), 99);
        assert_eq!(resp.status, 503);
        assert!(resp.headers.iter().any(|(k, _)| k == "retry-after"));
        let stats = router.stats();
        assert_eq!(stats.leg_sheds, 2, "both candidates shed");
        assert_eq!(stats.leg_errors, 0);
        assert!(router.fleet().is_live("a") && router.fleet().is_live("b"),
            "sheds must not eject (fail_threshold is 1 here)");
    }

    #[test]
    fn stale_pooled_connection_is_replaced_not_condemned() {
        // A shard that idles out keep-alive streams quickly: the pooled
        // connection from the first forward is dead by the second, which
        // must be served on a silent fresh connection — zero leg errors,
        // zero health strikes, no failover.
        let a = HttpServer::bind(
            "127.0.0.1:0",
            ServerConfig {
                read_timeout: Duration::from_millis(50),
                read_tick: Duration::from_millis(5),
                ..ServerConfig::default()
            },
            Arc::new(move |req: &Request| match (req.method, req.path()) {
                ("POST", "/echo") => Response::json(200, req.body),
                _ => Response::text(404, "nope"),
            }),
        )
        .expect("bind shard");
        let fleet = fleet_of(&[("a", a.local_addr())], 1);
        let router = Router::new(fleet, RouterConfig::default());
        assert_eq!(router.forward(&post("/echo", b"one"), 1).status, 200);
        std::thread::sleep(Duration::from_millis(300)); // shard idles the stream out
        let resp = router.forward(&post("/echo", b"two"), 1);
        assert_eq!(resp.status, 200, "stale pooled stream must not fail the request");
        assert_eq!(resp.body, b"two");
        let stats = router.stats();
        assert_eq!(stats.pool_stale, 1, "the dead pooled stream is accounted");
        assert_eq!(stats.leg_errors, 0, "a stale pool entry is not a leg error");
        assert_eq!(stats.served_primary, 2, "no failover happened");
        assert!(
            router.fleet().is_live("a"),
            "fail_threshold 1: a health strike would have ejected the shard"
        );
    }

    #[test]
    fn empty_ring_answers_503_and_budget_bounds_legs() {
        let fleet = fleet_of(&[("a", "127.0.0.1:1".parse().unwrap())], 1);
        fleet.report("a", false, true); // threshold 1: ejected
        let router = Router::new(fleet, RouterConfig::default());
        let resp = router.forward(&post("/echo", b"x"), 5);
        assert_eq!(resp.status, 503);
        assert_eq!(router.stats().no_live_shards, 1);
    }

    #[test]
    fn all_dead_candidates_answer_502_within_budget() {
        // Three unreachable shards, budget 1 → at most 2 legs tried.
        let dead = |_: usize| -> SocketAddr {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let fleet = fleet_of(&[("x", dead(0)), ("y", dead(1)), ("z", dead(2))], 10);
        let router = Router::new(
            fleet,
            RouterConfig { retry_budget: 1, ..RouterConfig::default() },
        );
        let resp = router.forward(&post("/echo", b"x"), 7);
        assert_eq!(resp.status, 502);
        let stats = router.stats();
        assert_eq!(stats.exhausted, 1);
        assert_eq!(stats.leg_errors, 2, "budget 1 means two legs max");
    }

    #[test]
    fn hedge_fires_and_the_backup_wins_against_a_slow_primary() {
        let slow = shard_with_delay("+S", Duration::from_millis(150));
        let fast = shard("+F");
        let fleet = fleet_of(&[("slow", slow.local_addr()), ("fast", fast.local_addr())], 5);
        let sig = sig_owned_by(&fleet, "slow");
        let router = Router::new(
            fleet,
            RouterConfig {
                hedge: HedgePolicy::Fixed(Duration::from_millis(20)),
                ..RouterConfig::default()
            },
        );
        let start = Instant::now();
        let (resp, outcome) = router.forward_opts(&post("/echo", b"x"), sig, &[], true);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"x+F", "the backup's response wins the race");
        assert!(outcome.hedge_fired);
        assert_eq!(outcome.served_by.as_deref(), Some("fast"));
        assert!(
            start.elapsed() < Duration::from_millis(120),
            "the hedge must beat the primary's 150ms stall"
        );
        let stats = router.stats();
        assert_eq!(stats.hedges_fired, 1);
        assert_eq!(stats.hedge_wins, 1);
        assert_eq!(stats.hedge_cancelled, 0);
        assert_eq!(stats.served_failover, 1);
        assert!(router.fleet().is_live("slow"), "slow is not dead — no health strike");
    }

    #[test]
    fn hedge_is_cancelled_when_the_primary_answers_first() {
        // Primary is mildly slow (outlives the hedge delay) but the backup
        // is slower still: the race fires and the primary wins it.
        let primary = shard_with_delay("+P", Duration::from_millis(40));
        let backup = shard_with_delay("+B", Duration::from_millis(300));
        let fleet =
            fleet_of(&[("p", primary.local_addr()), ("b", backup.local_addr())], 5);
        let sig = sig_owned_by(&fleet, "p");
        let router = Router::new(
            fleet,
            RouterConfig {
                hedge: HedgePolicy::Fixed(Duration::from_millis(10)),
                ..RouterConfig::default()
            },
        );
        let (resp, outcome) = router.forward_opts(&post("/echo", b"y"), sig, &[], true);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"y+P", "the primary's response wins");
        assert!(outcome.hedge_fired);
        let stats = router.stats();
        assert_eq!(stats.hedges_fired, 1);
        assert_eq!(stats.hedge_cancelled, 1);
        assert_eq!(stats.hedge_wins, 0);
        assert_eq!(stats.served_primary, 1);
    }

    #[test]
    fn allow_hedge_false_vetoes_the_race() {
        let slow = shard_with_delay("+S", Duration::from_millis(80));
        let fast = shard("+F");
        let fleet = fleet_of(&[("slow", slow.local_addr()), ("fast", fast.local_addr())], 5);
        let sig = sig_owned_by(&fleet, "slow");
        let router = Router::new(
            fleet,
            RouterConfig {
                hedge: HedgePolicy::Fixed(Duration::from_millis(10)),
                ..RouterConfig::default()
            },
        );
        let (resp, outcome) = router.forward_opts(&post("/echo", b"z"), sig, &[], false);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"z+S", "no hedge: the slow primary serves");
        assert!(!outcome.hedge_fired);
        assert_eq!(router.stats().hedges_fired, 0);
    }

    #[test]
    fn replicate_fans_out_to_backups_and_skips_the_server() {
        let a = shard("+A");
        let b = shard("+B");
        let fleet = fleet_of(&[("a", a.local_addr()), ("b", b.local_addr())], 5);
        let sig = sig_owned_by(&fleet, "a");
        let router = Router::new(
            fleet,
            RouterConfig { replicas: 2, ..RouterConfig::default() },
        );
        // Primary served: the fan-out posts to the backup only.
        let (attempted, ok) = router.replicate(&post("/echo", b"t"), sig, Some("a"), &[]);
        assert_eq!((attempted, ok), (1, 1));
        let stats = router.stats();
        assert_eq!(stats.truth_fanouts, 1);
        assert_eq!(stats.truth_replicated, 1);
        assert!(router.truth_lag().is_empty());
        // No skip: both replicas get the post.
        let (attempted, ok) = router.replicate(&post("/echo", b"t"), sig, None, &[]);
        assert_eq!((attempted, ok), (2, 2));
    }

    #[test]
    fn replicate_accounts_lag_for_an_unreachable_backup() {
        let a = shard("+A");
        let dead: SocketAddr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let fleet = fleet_of(&[("a", a.local_addr()), ("dead", dead)], 10);
        let sig = sig_owned_by(&fleet, "a");
        let router = Router::new(
            fleet,
            RouterConfig {
                replicas: 2,
                truth_retry_budget: 1,
                connect_timeout: Duration::from_millis(100),
                ..RouterConfig::default()
            },
        );
        let (attempted, ok) = router.replicate(&post("/echo", b"t"), sig, Some("a"), &[]);
        assert_eq!((attempted, ok), (1, 0));
        assert_eq!(router.truth_lag(), vec![("dead".to_string(), 1)]);
        assert_eq!(router.stats().truth_replicated, 0);
    }

    #[test]
    fn replicate_is_a_no_op_at_single_owner() {
        let a = shard("+A");
        let fleet = fleet_of(&[("a", a.local_addr())], 5);
        let router = Router::new(fleet, RouterConfig::default());
        let (attempted, ok) = router.replicate(&post("/echo", b"t"), 1, None, &[]);
        assert_eq!((attempted, ok), (0, 0));
        assert_eq!(router.stats().truth_fanouts, 0);
    }

    #[test]
    fn latency_window_p99_needs_samples_and_tracks_the_tail() {
        let mut w = LatencyWindow::new();
        assert_eq!(w.p99_micros(), None);
        for _ in 0..31 {
            w.record(100);
        }
        assert_eq!(w.p99_micros(), None, "below the sample floor");
        w.record(100);
        assert_eq!(w.p99_micros(), Some(100));
        // One outlier in 32 samples sits exactly at the p99 index.
        w.record(9_000);
        assert_eq!(w.p99_micros(), Some(9_000));
        // Saturate the ring: old samples age out.
        for _ in 0..256 {
            w.record(50);
        }
        assert_eq!(w.p99_micros(), Some(50));
    }
}
