//! Consistent-hash ring over named shards.
//!
//! The ring is the routing table of cluster mode: every shard contributes
//! `vnodes` points (FNV-1a hashes of `"{name}#{replica}"`, passed through a
//! SplitMix64 finalizer for spread) on a `u64` circle, and a query
//! signature is owned by the first point clockwise from its (equally
//! finalized) hash. Failover order falls out of the same walk — the candidate list
//! for a signature is the distinct shards met walking clockwise, so "next
//! ring position" is a deterministic, per-signature permutation of the
//! fleet.
//!
//! Liveness is a *mask*, not a rebuild: ejecting a shard removes it from
//! candidate lists (its keys fall through to each key's next candidate) but
//! leaves every other shard's points untouched, so readmission restores the
//! exact pre-ejection placement. Placement is a pure function of
//! `(shard names, vnodes, signature)` — two routers configured alike route
//! alike, with no coordination.

/// 64-bit FNV-1a over raw bytes: the ring's (and the router's signature)
/// hash. Not cryptographic; stable across runs, platforms, and processes.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// SplitMix64 finalizer: full-avalanche mix applied on top of FNV before a
/// value lands on the circle. Raw FNV-1a of short, near-identical strings
/// ("shard-3#17") clusters badly — measured arc shares off fair by 50%+
/// even at 512 vnodes — and the finalizer decorrelates them (within a few
/// percent of fair). Applied to vnode points and lookup signatures alike,
/// so placement stays a pure function of the configuration.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A consistent-hash ring with per-shard liveness masking; see module docs.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Shard names, in construction order; index is the shard id.
    shards: Vec<String>,
    /// Liveness mask parallel to `shards`.
    live: Vec<bool>,
    /// `(point, shard index)` sorted by point; ties broken by shard index
    /// (deterministic even on hash collisions).
    points: Vec<(u64, u32)>,
    /// Points contributed per shard — kept so [`HashRing::add_shard`] can
    /// grow the ring with the same density it was built with.
    vnodes: usize,
}

impl HashRing {
    /// Builds the ring: each shard contributes `vnodes` points. Duplicate
    /// shard names are rejected (they would double-own their arcs).
    ///
    /// # Panics
    /// Panics if `vnodes` is 0 or a shard name repeats.
    pub fn new<S: AsRef<str>>(shards: &[S], vnodes: usize) -> HashRing {
        assert!(vnodes > 0, "a ring needs at least one vnode per shard");
        let shards: Vec<String> = shards.iter().map(|s| s.as_ref().to_string()).collect();
        for (i, name) in shards.iter().enumerate() {
            assert!(
                !shards[..i].contains(name),
                "duplicate shard name `{name}` in ring"
            );
        }
        let mut points = Vec::with_capacity(shards.len() * vnodes);
        for (idx, name) in shards.iter().enumerate() {
            for replica in 0..vnodes {
                let point = mix64(fnv1a64(format!("{name}#{replica}").as_bytes()));
                points.push((point, idx as u32));
            }
        }
        points.sort_unstable();
        let live = vec![true; shards.len()];
        HashRing { shards, live, points, vnodes }
    }

    /// Adds a shard to a live ring: `vnodes` (the construction density) new
    /// points land on the circle, each claiming the arc between itself and
    /// its predecessor. Movement is *bounded and minimal by construction*:
    /// a key either keeps its owner or moves **to the new shard** (a key
    /// only changes hands when one of the new points falls between the key
    /// and its old owner), so live addition never shuffles keys between
    /// existing shards. The new shard starts live. Returns `false` on a
    /// duplicate name (the ring is untouched).
    pub fn add_shard(&mut self, name: &str) -> bool {
        if self.shards.iter().any(|s| s == name) {
            return false;
        }
        let idx = self.shards.len() as u32;
        self.shards.push(name.to_string());
        self.live.push(true);
        for replica in 0..self.vnodes {
            let point = mix64(fnv1a64(format!("{name}#{replica}").as_bytes()));
            // Insert keeping the (point, idx) sort order; ties break toward
            // the lower shard id, same as the construction-time sort.
            let at = self.points.partition_point(|&entry| entry < (point, idx));
            self.points.insert(at, (point, idx));
        }
        true
    }

    /// The first `r` *distinct live* shards clockwise from `signature` —
    /// the key's replica set. `replicas[0]` is the primary, the rest are
    /// backups in failover order. Returns fewer than `r` names when the
    /// live fleet is smaller. Because liveness is a mask, replica sets are
    /// maximally stable: ejecting a shard rewrites only the sets that
    /// contained it (the survivors keep their relative order and the next
    /// clockwise candidate fills in at the tail), and readmission restores
    /// every set exactly.
    pub fn replica_set(&self, signature: u64, r: usize) -> Vec<&str> {
        let mut seen = vec![false; self.shards.len()];
        let want = r.min(self.live_count());
        let mut out = Vec::with_capacity(want);
        if want == 0 {
            return out;
        }
        for idx in self.walk(signature) {
            if !seen[idx] {
                seen[idx] = true;
                if self.live[idx] {
                    out.push(self.shards[idx].as_str());
                }
                if out.len() == want {
                    break;
                }
            }
        }
        out
    }

    /// Shard names in id order.
    pub fn shards(&self) -> &[String] {
        &self.shards
    }

    /// Number of currently live shards.
    pub fn live_count(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    /// Whether `name` is live (false for unknown names).
    pub fn is_live(&self, name: &str) -> bool {
        self.index_of(name).map(|i| self.live[i]).unwrap_or(false)
    }

    /// Masks a shard out of candidate lists. Returns `false` if the name is
    /// unknown or already ejected.
    pub fn eject(&mut self, name: &str) -> bool {
        match self.index_of(name) {
            Some(i) if self.live[i] => {
                self.live[i] = false;
                true
            }
            _ => false,
        }
    }

    /// Unmasks a shard, restoring its exact pre-ejection placement. Returns
    /// `false` if the name is unknown or already live.
    pub fn readmit(&mut self, name: &str) -> bool {
        match self.index_of(name) {
            Some(i) if !self.live[i] => {
                self.live[i] = true;
                true
            }
            _ => false,
        }
    }

    /// The live owner of `signature`: the first live shard clockwise from
    /// it. `None` when every shard is ejected.
    pub fn primary(&self, signature: u64) -> Option<&str> {
        self.walk(signature).find(|&idx| self.live[idx]).map(|idx| self.shards[idx].as_str())
    }

    /// The owner ignoring liveness — what [`HashRing::primary`] would return
    /// on a fully live ring. Used by the movement property tests.
    pub fn owner_ignoring_liveness(&self, signature: u64) -> Option<&str> {
        self.walk(signature).next().map(|idx| self.shards[idx].as_str())
    }

    /// Failover candidates for `signature`: every *live* shard, deduplicated,
    /// in clockwise ring order starting at the signature's point. The first
    /// entry is the primary; a router that fails over walks this list.
    pub fn candidates(&self, signature: u64) -> Vec<&str> {
        let mut seen = vec![false; self.shards.len()];
        let mut out = Vec::with_capacity(self.live_count());
        for idx in self.walk(signature) {
            if !seen[idx] {
                seen[idx] = true;
                if self.live[idx] {
                    out.push(self.shards[idx].as_str());
                }
                if out.len() == self.live_count() {
                    break;
                }
            }
        }
        out
    }

    /// Iterates shard indices clockwise from `signature`'s point, visiting
    /// every ring point exactly once (shards repeat; callers dedupe).
    fn walk(&self, signature: u64) -> impl Iterator<Item = usize> + '_ {
        let signature = mix64(signature);
        let start = self.points.partition_point(|&(p, _)| p < signature);
        let n = self.points.len();
        (0..n).map(move |i| self.points[(start + i) % n].1 as usize)
    }

    fn index_of(&self, name: &str) -> Option<usize> {
        self.shards.iter().position(|s| s == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("shard-{i}")).collect()
    }

    #[test]
    fn placement_is_deterministic_and_total() {
        let a = HashRing::new(&names(4), 64);
        let b = HashRing::new(&names(4), 64);
        for sig in (0..10_000u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)) {
            assert_eq!(a.primary(sig), b.primary(sig));
            assert!(a.primary(sig).is_some());
        }
    }

    #[test]
    fn candidates_start_at_primary_and_cover_live_fleet() {
        let ring = HashRing::new(&names(5), 32);
        for sig in [0u64, 1, u64::MAX, 0xdead_beef] {
            let cands = ring.candidates(sig);
            assert_eq!(cands.len(), 5, "all live shards appear");
            assert_eq!(cands[0], ring.primary(sig).unwrap());
            let mut sorted: Vec<&str> = cands.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 5, "no duplicates");
        }
    }

    #[test]
    fn eject_moves_only_the_dead_shards_keys() {
        let mut ring = HashRing::new(&names(4), 64);
        let sigs: Vec<u64> =
            (0..5_000u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)).collect();
        let before: Vec<&str> = sigs.iter().map(|&s| ring.owner_ignoring_liveness(s).unwrap()).collect();
        let before: Vec<String> = before.into_iter().map(str::to_string).collect();
        assert!(ring.eject("shard-2"));
        for (sig, owner) in sigs.iter().zip(&before) {
            let now = ring.primary(*sig).unwrap();
            if owner != "shard-2" {
                assert_eq!(now, owner, "live shard's key moved on unrelated ejection");
            } else {
                assert_ne!(now, "shard-2", "ejected shard still owns a key");
            }
        }
        assert!(ring.readmit("shard-2"));
        for (sig, owner) in sigs.iter().zip(&before) {
            assert_eq!(ring.primary(*sig).unwrap(), owner, "readmission changed placement");
        }
    }

    #[test]
    fn eject_readmit_are_idempotent_and_typed() {
        let mut ring = HashRing::new(&names(2), 8);
        assert!(ring.eject("shard-0"));
        assert!(!ring.eject("shard-0"), "double eject");
        assert!(!ring.eject("nope"), "unknown shard");
        assert_eq!(ring.live_count(), 1);
        assert!(ring.readmit("shard-0"));
        assert!(!ring.readmit("shard-0"), "double readmit");
        assert_eq!(ring.live_count(), 2);
    }

    #[test]
    fn empty_ring_after_full_ejection_routes_nowhere() {
        let mut ring = HashRing::new(&names(2), 8);
        ring.eject("shard-0");
        ring.eject("shard-1");
        assert_eq!(ring.primary(42), None);
        assert!(ring.candidates(42).is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate shard name")]
    fn duplicate_names_rejected() {
        let _ = HashRing::new(&["a", "a"], 8);
    }

    #[test]
    fn replica_set_is_a_distinct_prefix_of_candidates() {
        let ring = HashRing::new(&names(5), 64);
        for sig in (0..2_000u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)) {
            let cands = ring.candidates(sig);
            for r in 0..=6 {
                let set = ring.replica_set(sig, r);
                assert_eq!(set.len(), r.min(5), "set capped at live fleet size");
                assert_eq!(&set[..], &cands[..set.len()], "replica set is the candidate prefix");
                let mut dedup: Vec<&str> = set.clone();
                dedup.sort_unstable();
                dedup.dedup();
                assert_eq!(dedup.len(), set.len(), "replicas are distinct shards");
            }
        }
    }

    #[test]
    fn replica_set_respects_liveness_mask() {
        let mut ring = HashRing::new(&names(4), 64);
        ring.eject("shard-1");
        for sig in (0..2_000u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)) {
            let set = ring.replica_set(sig, 3);
            assert_eq!(set.len(), 3);
            assert!(!set.contains(&"shard-1"), "ejected shard in replica set");
        }
        ring.eject("shard-0");
        ring.eject("shard-2");
        ring.eject("shard-3");
        assert!(ring.replica_set(7, 2).is_empty(), "dead fleet has no replicas");
    }

    #[test]
    fn add_shard_moves_keys_only_to_the_new_shard() {
        let mut ring = HashRing::new(&names(4), 64);
        let sigs: Vec<u64> =
            (0..5_000u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)).collect();
        let before: Vec<String> =
            sigs.iter().map(|&s| ring.primary(s).unwrap().to_string()).collect();
        assert!(ring.add_shard("shard-4"));
        assert!(ring.is_live("shard-4"), "new shard starts live");
        let mut moved = 0usize;
        for (sig, owner) in sigs.iter().zip(&before) {
            let now = ring.primary(*sig).unwrap();
            if now != owner {
                assert_eq!(now, "shard-4", "key moved between pre-existing shards");
                moved += 1;
            }
        }
        // Expected share of a 5-shard ring is 1/5; allow generous slack but
        // insist the movement is bounded well below a rebuild.
        let frac = moved as f64 / sigs.len() as f64;
        assert!(frac > 0.05, "new shard took no keys ({frac:.3})");
        assert!(frac < 0.40, "addition moved {frac:.3} of the keyspace");
    }

    #[test]
    fn add_shard_matches_fresh_construction() {
        // Growing a ring live must be indistinguishable from building it
        // with the full roster — the router-fleet gate depends on this.
        let mut grown = HashRing::new(&names(3), 64);
        assert!(grown.add_shard("shard-3"));
        let fresh = HashRing::new(&names(4), 64);
        for sig in (0..5_000u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)) {
            assert_eq!(grown.primary(sig), fresh.primary(sig));
            assert_eq!(grown.replica_set(sig, 2), fresh.replica_set(sig, 2));
        }
    }

    #[test]
    fn add_shard_rejects_duplicates() {
        let mut ring = HashRing::new(&names(2), 8);
        let points_before = ring.points.len();
        assert!(!ring.add_shard("shard-1"));
        assert_eq!(ring.points.len(), points_before, "duplicate add touched the ring");
        assert_eq!(ring.shards().len(), 2);
    }

    #[test]
    fn keyspace_shares_stay_near_fair() {
        // The reason mix64 exists: raw FNV points put shards off fair share
        // by 50%+; finalized points must stay within a third of fair.
        let ring = HashRing::new(&names(4), 256);
        let mut counts = [0usize; 4];
        for i in 0..20_000u64 {
            let sig = fnv1a64(format!("balance-key-{i}").as_bytes());
            let owner = ring.primary(sig).unwrap();
            counts[owner.rsplit('-').next().unwrap().parse::<usize>().unwrap()] += 1;
        }
        let fair = 20_000.0 / 4.0;
        for (i, &got) in counts.iter().enumerate() {
            let ratio = got as f64 / fair;
            assert!(
                (0.67..1.33).contains(&ratio),
                "shard-{i} owns {got} keys ({ratio:.2}x fair)"
            );
        }
    }
}
