//! `ce-server` — std-only HTTP/1.1 serving substrate (no external deps
//! beyond the vendored `ce-telemetry`).
//!
//! Offline stand-in for a production HTTP stack (hyper/axum), built for the
//! cardinality-estimation serving layer. Four pieces:
//!
//! - [`http`]: zero-copy incremental request parser with hard size limits
//!   and typed errors, plus `Content-Length`-framed response serialization
//!   into pooled buffers. Requests are borrowed views into the connection
//!   buffer — steady-state parsing allocates nothing. Handles partial
//!   reads and pipelining; rejects `Transfer-Encoding`, header folding,
//!   and conflicting `Content-Length` (smuggling vectors).
//! - [`poll`]: a minimal libc-free `poll(2)` shim — the readiness
//!   primitive, with a non-unix stub that reports unsupported.
//! - [`server`]: event-driven readiness-loop server — poller threads
//!   multiplex parked keep-alive connections and dispatch readable ones to
//!   a fixed worker pool; idle/drain deadlines fire exactly, not on ticks.
//!   Degrades to a tick-polled fallback where `poll(2)` is unavailable.
//!   Connection overflow sheds with a raw `503` + `Retry-After`.
//! - [`batch`]: deadline-bounded micro-batcher with a bounded admission
//!   queue — concurrent request handlers coalesce work items into one
//!   batched call; overflow sheds at admission, runner panics fail the
//!   batch without deadlocking submitters.
//!
//! Cluster mode adds four more (DESIGN.md §11):
//!
//! - [`ring`]: the consistent-hash ring — deterministic placement over
//!   named shards, liveness as a mask so ejection/readmission move only the
//!   affected shard's keys.
//! - [`health`]: shared fleet state ([`health::Fleet`]) with hysteresis
//!   (consecutive-failure ejection, consecutive-success readmission) and a
//!   background `/readyz` prober ([`health::HealthChecker`]).
//! - [`router`]: the forwarding engine — ring candidates, pooled shard
//!   legs, failover on refusal/error, bounded by retry budget + deadline.
//! - [`proxy`]: [`proxy::ChaosProxy`], a seeded TCP fault shim (refuse,
//!   black-hole, truncate, delay) for deterministic failover testing.
//!
//! [`client`] is a minimal blocking client (configurable timeouts, typed
//! `Retry-After`) used by tests, the benchmarks, and the router's shard
//! legs; it is not a general-purpose HTTP client.

pub mod batch;
pub mod client;
pub mod health;
pub mod http;
pub mod limit;
pub mod poll;
pub mod proxy;
pub mod ring;
pub mod router;
pub mod server;

pub use batch::{BatchError, BatcherConfig, BatcherStats, MicroBatcher};
pub use client::{ClientConfig, ClientResponse, HttpClient};
pub use health::{Fleet, FleetStats, HealthChecker, HealthConfig};
pub use http::{
    Headers, HttpError, OwnedRequest, ParserLimits, Request, RequestParser, Response,
    STAGES_HEADER, TENANT_HEADER, TRACE_HEADER, TRUTH_HEADER,
};
pub use limit::{Admission, RateLimit, TenantLimiter, TenantStats};
pub use proxy::{ChaosProxy, FaultRates, ProxyStats};
pub use ring::{fnv1a64, HashRing};
pub use router::{ForwardOutcome, HedgePolicy, Router, RouterConfig, RouterStats};
pub use server::{Handler, HttpServer, ServerConfig, ServerStats, ServerStatsProbe};
