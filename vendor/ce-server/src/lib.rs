//! `ce-server` — dependency-free, std-only HTTP/1.1 serving substrate.
//!
//! Offline stand-in for a production HTTP stack (hyper/axum), built for the
//! cardinality-estimation serving layer. Three pieces:
//!
//! - [`http`]: incremental request parser with hard size limits and typed
//!   errors, plus `Content-Length`-framed response serialization. Handles
//!   partial reads and pipelining; rejects `Transfer-Encoding`, header
//!   folding, and conflicting `Content-Length` (smuggling vectors).
//! - [`server`]: nonblocking accept loop + bounded connection queue +
//!   fixed worker pool with keep-alive and graceful drain. Connection
//!   overflow sheds with a raw `503` + `Retry-After`.
//! - [`batch`]: deadline-bounded micro-batcher with a bounded admission
//!   queue — concurrent request handlers coalesce work items into one
//!   batched call; overflow sheds at admission, runner panics fail the
//!   batch without deadlocking submitters.
//!
//! [`client`] is a minimal blocking loopback client for tests and the
//! `net` benchmark; it is not a general-purpose HTTP client.

pub mod batch;
pub mod client;
pub mod http;
pub mod server;

pub use batch::{BatchError, BatcherConfig, BatcherStats, MicroBatcher};
pub use client::{ClientResponse, HttpClient};
pub use http::{HttpError, ParserLimits, Request, RequestParser, Response};
pub use server::{Handler, HttpServer, ServerConfig, ServerStats};
