//! Per-tenant token-bucket admission control.
//!
//! A serving process shared by many tenants needs *fairness before
//! capacity*: one tenant replaying its workload in a tight loop must not
//! starve the worker queue for everyone else. This module implements the
//! classic token bucket, keyed by an opaque tenant label (the
//! [`TENANT_HEADER`](crate::TENANT_HEADER) value on the wire):
//!
//! - each tenant owns a bucket of `burst` tokens, refilled continuously at
//!   `rate_per_sec` tokens per second;
//! - admitting a request costs one token; an empty bucket denies with a
//!   deterministic whole-second `Retry-After` hint (time until one token).
//!
//! Refill is computed lazily from a caller-supplied monotonic clock (nanos
//! since an arbitrary process anchor), so the limiter itself never reads a
//! clock: tests drive time explicitly and two calls at the same instant
//! see the same bucket state. Alongside the bucket, the limiter keeps
//! per-tenant counters the serving layer surfaces in `/metrics`: requests
//! admitted, requests denied (`shed`), queue-overflow sheds, and the
//! instantaneous in-flight depth (the per-tenant queue-depth gauge).
//!
//! The tenant map is bounded: past [`TenantLimiter::MAX_TENANTS`] distinct
//! labels, admitting a *new* tenant first evicts the stalest bucket that is
//! both idle (nothing in flight) and fully refilled — an idle-full bucket is
//! indistinguishable from a fresh one, so eviction never changes admission
//! behaviour. If no bucket is evictable the new tenant shares the
//! conservative overflow bucket keyed by the empty label.

use std::collections::HashMap;
use std::sync::Mutex;

/// Token-bucket tuning shared by every tenant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Sustained refill rate, tokens (requests) per second. Must be > 0.
    pub rate_per_sec: f64,
    /// Bucket capacity: the largest instantaneous burst admitted after an
    /// idle period. Clamped to at least 1 token.
    pub burst: f64,
}

impl RateLimit {
    /// Validated constructor: non-finite or non-positive rates and bursts
    /// are rejected by the caller-facing builder instead of silently
    /// admitting everything.
    pub fn new(rate_per_sec: f64, burst: f64) -> Option<RateLimit> {
        if rate_per_sec.is_finite() && rate_per_sec > 0.0 && burst.is_finite() && burst >= 1.0 {
            Some(RateLimit { rate_per_sec, burst })
        } else {
            None
        }
    }
}

/// One tenant's bucket plus its observability counters.
#[derive(Debug, Clone)]
struct Bucket {
    /// Tokens available now (≤ burst); fractional between refills.
    tokens: f64,
    /// Monotonic nanos of the last refill computation.
    refilled_at: u64,
    /// Requests admitted.
    admitted: u64,
    /// Requests denied by the bucket (rate-limit sheds).
    shed: u64,
    /// Requests that passed the bucket but were shed downstream at the
    /// admission queue (the 503 overflow path).
    overflow_shed: u64,
    /// Requests currently in flight (admitted, response not yet written).
    in_flight: u64,
}

impl Bucket {
    fn fresh(limit: &RateLimit, now_nanos: u64) -> Bucket {
        Bucket {
            tokens: limit.burst,
            refilled_at: now_nanos,
            admitted: 0,
            shed: 0,
            overflow_shed: 0,
            in_flight: 0,
        }
    }

    /// Lazy continuous refill: deterministic in `(now - refilled_at)`.
    fn refill(&mut self, limit: &RateLimit, now_nanos: u64) {
        let elapsed = now_nanos.saturating_sub(self.refilled_at);
        if elapsed > 0 {
            self.tokens =
                (self.tokens + elapsed as f64 * 1e-9 * limit.rate_per_sec).min(limit.burst);
            self.refilled_at = now_nanos;
        }
    }
}

/// Admission verdict for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Admitted; one token consumed, in-flight depth incremented. The
    /// caller must pair this with [`TenantLimiter::finish`].
    Allowed,
    /// Denied: the bucket is empty. `retry_after_secs` is the whole-second
    /// wait (≥ 1) until one token will have refilled.
    Limited {
        /// Deterministic `Retry-After` hint in seconds.
        retry_after_secs: u64,
    },
}

/// Point-in-time per-tenant counters for the metrics surface.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantStats {
    /// Tenant label (the `x-ce-tenant` header value; empty = unlabeled).
    pub tenant: String,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests shed by the rate limit (429).
    pub shed: u64,
    /// Requests shed downstream at the admission queue (503).
    pub overflow_shed: u64,
    /// Requests in flight right now (queue-depth gauge).
    pub in_flight: u64,
    /// Tokens available right now (not refreshed; as of last touch).
    pub tokens: f64,
}

/// Per-tenant token-bucket limiter with in-flight accounting.
pub struct TenantLimiter {
    limit: RateLimit,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl TenantLimiter {
    /// Bound on distinct tenant buckets (see module docs for the eviction
    /// rule past it).
    pub const MAX_TENANTS: usize = 4096;

    /// Builds a limiter where every tenant gets `limit`.
    pub fn new(limit: RateLimit) -> TenantLimiter {
        TenantLimiter { limit, buckets: Mutex::new(HashMap::new()) }
    }

    /// The shared per-tenant limit.
    pub fn limit(&self) -> RateLimit {
        self.limit
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, Bucket>> {
        self.buckets.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Resolves the bucket key for `tenant`, evicting the stalest idle
    /// bucket (nothing in flight, oldest refill time) when the map is at
    /// capacity and `tenant` is new. An evicted tenant that returns starts
    /// from a fresh full bucket — a bounded allowance bump that only
    /// matters under 4096-plus-tenant churn. Returns the key to use —
    /// `tenant` itself, or `""` (the shared overflow bucket) when nothing
    /// was evictable.
    fn admit_key<'t>(map: &mut HashMap<String, Bucket>, tenant: &'t str) -> &'t str {
        if map.contains_key(tenant) || map.len() < Self::MAX_TENANTS {
            return tenant;
        }
        let evict = map
            .iter()
            .filter(|(_, b)| b.in_flight == 0)
            .map(|(k, b)| (k.clone(), b.refilled_at))
            .min_by_key(|&(_, at)| at);
        match evict {
            Some((key, _)) => {
                map.remove(&key);
                tenant
            }
            None => "",
        }
    }

    /// Tries to admit one request for `tenant` at monotonic time
    /// `now_nanos`. On `Allowed` the in-flight depth is incremented; the
    /// caller must call [`TenantLimiter::finish`] once the response is
    /// done, whatever its status.
    pub fn admit(&self, tenant: &str, now_nanos: u64) -> Admission {
        let mut map = self.lock();
        let key = Self::admit_key(&mut map, tenant);
        let bucket = map
            .entry(key.to_string())
            .or_insert_with(|| Bucket::fresh(&self.limit, now_nanos));
        bucket.refill(&self.limit, now_nanos);
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            bucket.admitted += 1;
            bucket.in_flight += 1;
            Admission::Allowed
        } else {
            bucket.shed += 1;
            let deficit = 1.0 - bucket.tokens;
            let secs = (deficit / self.limit.rate_per_sec).ceil();
            Admission::Limited { retry_after_secs: (secs as u64).max(1) }
        }
    }

    /// Marks one admitted request finished (response written or failed);
    /// decrements the in-flight depth. Unknown tenants are a no-op — an
    /// evicted bucket loses its depth, which only under-reports a gauge.
    pub fn finish(&self, tenant: &str) {
        let mut map = self.lock();
        if let Some(bucket) = map.get_mut(tenant) {
            bucket.in_flight = bucket.in_flight.saturating_sub(1);
        } else if let Some(bucket) = map.get_mut("") {
            bucket.in_flight = bucket.in_flight.saturating_sub(1);
        }
    }

    /// Records a downstream admission-queue shed (503 overflow) for
    /// `tenant`, so the overload `Retry-After` hint and the metrics can
    /// distinguish rate-limit sheds from capacity sheds.
    pub fn note_overflow(&self, tenant: &str) {
        let mut map = self.lock();
        if let Some(bucket) = map.get_mut(tenant) {
            bucket.overflow_shed += 1;
        }
    }

    /// Whether `tenant` currently holds more than its fair share of the
    /// total in-flight depth (fair share = total / active tenants). The
    /// overload path uses this to hand the over-budget tenant a longer
    /// `Retry-After` hint than the victim of its burst.
    pub fn over_fair_share(&self, tenant: &str) -> bool {
        let map = self.lock();
        let total: u64 = map.values().map(|b| b.in_flight).sum();
        let active = map.values().filter(|b| b.in_flight > 0).count().max(1) as u64;
        match map.get(tenant) {
            Some(bucket) => bucket.in_flight > total / active,
            None => false,
        }
    }

    /// Per-tenant counters, sorted by label for stable metrics output.
    pub fn snapshot(&self) -> Vec<TenantStats> {
        let map = self.lock();
        let mut out: Vec<TenantStats> = map
            .iter()
            .map(|(tenant, b)| TenantStats {
                tenant: tenant.clone(),
                admitted: b.admitted,
                shed: b.shed,
                overflow_shed: b.overflow_shed,
                in_flight: b.in_flight,
                tokens: b.tokens,
            })
            .collect();
        out.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    fn limiter(rate: f64, burst: f64) -> TenantLimiter {
        TenantLimiter::new(RateLimit::new(rate, burst).expect("valid limit"))
    }

    #[test]
    fn rate_limit_rejects_nonsense() {
        assert!(RateLimit::new(0.0, 4.0).is_none());
        assert!(RateLimit::new(-1.0, 4.0).is_none());
        assert!(RateLimit::new(f64::NAN, 4.0).is_none());
        assert!(RateLimit::new(10.0, 0.5).is_none(), "burst under one token");
        assert!(RateLimit::new(10.0, f64::INFINITY).is_none());
        assert!(RateLimit::new(10.0, 1.0).is_some());
    }

    #[test]
    fn burst_then_deny_then_deterministic_refill() {
        let l = limiter(2.0, 3.0);
        for _ in 0..3 {
            assert_eq!(l.admit("a", 0), Admission::Allowed);
        }
        // Empty: denied with ceil((1-0)/2) = 1s hint.
        assert_eq!(l.admit("a", 0), Admission::Limited { retry_after_secs: 1 });
        // 500ms refills one token at 2/s.
        assert_eq!(l.admit("a", SEC / 2), Admission::Allowed);
        assert!(matches!(l.admit("a", SEC / 2), Admission::Limited { .. }));
        // Same instant, same state: the deny did not consume anything.
        assert!(matches!(l.admit("a", SEC / 2), Admission::Limited { .. }));
    }

    #[test]
    fn refill_caps_at_burst() {
        let l = limiter(1000.0, 2.0);
        assert_eq!(l.admit("a", 0), Admission::Allowed);
        assert_eq!(l.admit("a", 0), Admission::Allowed);
        // An hour later the bucket holds exactly `burst`, not rate × 3600.
        for _ in 0..2 {
            assert_eq!(l.admit("a", 3600 * SEC), Admission::Allowed);
        }
        assert!(matches!(l.admit("a", 3600 * SEC), Admission::Limited { .. }));
    }

    #[test]
    fn tenants_are_isolated() {
        let l = limiter(1.0, 2.0);
        assert_eq!(l.admit("aggressor", 0), Admission::Allowed);
        assert_eq!(l.admit("aggressor", 0), Admission::Allowed);
        assert!(matches!(l.admit("aggressor", 0), Admission::Limited { .. }));
        // The victim's bucket is untouched by the aggressor's exhaustion.
        assert_eq!(l.admit("victim", 0), Admission::Allowed);
        let stats = l.snapshot();
        let aggr = stats.iter().find(|s| s.tenant == "aggressor").unwrap();
        let victim = stats.iter().find(|s| s.tenant == "victim").unwrap();
        assert_eq!((aggr.admitted, aggr.shed), (2, 1));
        assert_eq!((victim.admitted, victim.shed), (1, 0));
    }

    #[test]
    fn retry_after_scales_with_deficit() {
        let l = limiter(0.5, 1.0); // one token every 2 seconds
        assert_eq!(l.admit("a", 0), Admission::Allowed);
        assert_eq!(l.admit("a", 0), Admission::Limited { retry_after_secs: 2 });
        // Half-refilled after a second: one more second to a whole token.
        assert_eq!(l.admit("a", SEC), Admission::Limited { retry_after_secs: 1 });
    }

    #[test]
    fn in_flight_depth_and_fair_share() {
        let l = limiter(100.0, 100.0);
        for _ in 0..6 {
            assert_eq!(l.admit("hog", 0), Admission::Allowed);
        }
        assert_eq!(l.admit("calm", 0), Admission::Allowed);
        assert!(l.over_fair_share("hog"), "6 of 7 in flight is over a 2-way split");
        assert!(!l.over_fair_share("calm"));
        assert!(!l.over_fair_share("missing"));
        for _ in 0..6 {
            l.finish("hog");
        }
        assert!(!l.over_fair_share("hog"));
        let depth =
            l.snapshot().iter().find(|s| s.tenant == "hog").map(|s| s.in_flight).unwrap();
        assert_eq!(depth, 0);
        l.finish("hog"); // over-finishing saturates at zero, never wraps
        assert_eq!(
            l.snapshot().iter().find(|s| s.tenant == "hog").map(|s| s.in_flight),
            Some(0)
        );
    }

    #[test]
    fn overflow_counter_is_separate_from_rate_sheds() {
        let l = limiter(10.0, 10.0);
        assert_eq!(l.admit("a", 0), Admission::Allowed);
        l.note_overflow("a");
        l.note_overflow("a");
        let s = l.snapshot();
        let a = s.iter().find(|s| s.tenant == "a").unwrap();
        assert_eq!(a.overflow_shed, 2);
        assert_eq!(a.shed, 0);
    }

    #[test]
    fn snapshot_is_sorted_by_tenant() {
        let l = limiter(10.0, 10.0);
        for t in ["zeta", "alpha", "mid"] {
            let _ = l.admit(t, 0);
        }
        let names: Vec<String> = l.snapshot().into_iter().map(|s| s.tenant).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }
}
