//! Minimal `poll(2)` shim — the readiness primitive behind the event-driven
//! server (DESIGN.md §12).
//!
//! Follows the same libc-free pattern as the CLI's `signal(2)` hookup: the
//! symbol is declared `extern "C"` and resolved from whatever libc the
//! binary already links against, so the crate stays dependency-free while
//! speaking the kernel's native readiness interface. `struct pollfd` has the
//! same layout (`int fd; short events; short revents`) on every unix this
//! targets, and the event bit values used here (`POLLIN` 0x001, `POLLOUT`
//! 0x004, `POLLERR` 0x008, `POLLHUP` 0x010, `POLLNVAL` 0x020) are identical
//! across Linux and the BSDs.
//!
//! On non-unix targets [`SUPPORTED`] is `false` and [`wait`] reports
//! `Unsupported`; the server degrades to its tick-polled fallback loop
//! instead of using readiness at all.

use std::io;
use std::time::Duration;

/// Readable data (or a closed peer, which also reads as ready).
pub const POLLIN: i16 = 0x001;
/// Writable without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition (always checked in `revents`, never requested).
pub const POLLERR: i16 = 0x008;
/// Peer hang-up.
pub const POLLHUP: i16 = 0x010;
/// Invalid fd (stale entry); treated as ready so the owner reaps it.
pub const POLLNVAL: i16 = 0x020;

/// Whether this target has the readiness syscall at all.
pub const SUPPORTED: bool = cfg!(unix);

/// One entry in a poll set; layout-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// An entry watching `fd` for `events` (e.g. [`POLLIN`]).
    pub fn new(fd: i32, events: i16) -> PollFd {
        PollFd { fd, events, revents: 0 }
    }

    /// Whether any requested-or-error condition fired: readable/writable as
    /// requested, or `POLLERR`/`POLLHUP`/`POLLNVAL` (which the kernel
    /// reports regardless of the request and which all mean "the owner must
    /// look at this fd now").
    pub fn ready(&self) -> bool {
        self.revents & (self.events | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

#[cfg(unix)]
mod sys {
    use super::PollFd;

    extern "C" {
        // `nfds_t` is `unsigned long` on Linux and `unsigned int` on the
        // BSDs; passing a zero-extended `usize` is correct for both ABIs
        // for the set sizes this crate uses.
        fn poll(fds: *mut PollFd, nfds: usize, timeout: i32) -> i32;
    }

    pub fn poll_raw(fds: &mut [PollFd], timeout_ms: i32) -> i32 {
        unsafe { poll(fds.as_mut_ptr(), fds.len(), timeout_ms) }
    }
}

/// Converts a timeout to poll's millisecond argument, rounding *up* so a
/// sub-millisecond wait never becomes a busy-spin 0, and capping at ~60s
/// (callers re-arm; an indefinite block would make shutdown sluggish).
fn timeout_ms(timeout: Duration) -> i32 {
    let ms = timeout.as_millis();
    let rounded =
        if !u64::from(timeout.subsec_nanos()).is_multiple_of(1_000_000) { ms + 1 } else { ms };
    rounded.min(60_000) as i32
}

/// Blocks until at least one entry in `fds` is ready or `timeout` elapses;
/// returns the number of ready entries (0 on timeout). `EINTR` is folded
/// into `Ok(0)` — callers loop anyway and must re-check their stop flags.
#[cfg(unix)]
pub fn wait(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
    for entry in fds.iter_mut() {
        entry.revents = 0;
    }
    let rc = sys::poll_raw(fds, timeout_ms(timeout));
    if rc >= 0 {
        return Ok(rc as usize);
    }
    let err = io::Error::last_os_error();
    if err.kind() == io::ErrorKind::Interrupted {
        Ok(0)
    } else {
        Err(err)
    }
}

/// Non-unix stub: always `Unsupported` (the server never calls it there —
/// it selects the tick fallback when [`SUPPORTED`] is false).
#[cfg(not(unix))]
pub fn wait(_fds: &mut [PollFd], _timeout: Duration) -> io::Result<usize> {
    Err(io::Error::new(io::ErrorKind::Unsupported, "poll(2) unavailable on this target"))
}

/// Waits for `fd` to become writable (used by workers when a response write
/// hits `WouldBlock` on a nonblocking socket). Returns `true` if writable
/// within `timeout`.
pub fn wait_writable(fd: i32, timeout: Duration) -> io::Result<bool> {
    let mut fds = [PollFd::new(fd, POLLOUT)];
    Ok(wait(&mut fds, timeout)? > 0)
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;

    #[test]
    fn times_out_on_a_silent_socket() {
        let (a, _b) = std::os::unix::net::UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let t = std::time::Instant::now();
        let n = wait(&mut fds, Duration::from_millis(20)).unwrap();
        assert_eq!(n, 0, "nothing to read");
        assert!(!fds[0].ready());
        assert!(t.elapsed() >= Duration::from_millis(15), "returned too early");
    }

    #[test]
    fn reports_readiness_when_bytes_arrive() {
        let (a, mut b) = std::os::unix::net::UnixStream::pair().unwrap();
        b.write_all(b"x").unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = wait(&mut fds, Duration::from_millis(500)).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].ready());
    }

    #[test]
    fn hup_reads_as_ready() {
        let (a, b) = std::os::unix::net::UnixStream::pair().unwrap();
        drop(b);
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = wait(&mut fds, Duration::from_millis(500)).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].ready(), "peer close must wake the poller");
    }

    #[test]
    fn writable_socket_reports_immediately() {
        let (a, _b) = std::os::unix::net::UnixStream::pair().unwrap();
        assert!(wait_writable(a.as_raw_fd(), Duration::from_millis(100)).unwrap());
    }

    #[test]
    fn sub_millisecond_timeouts_round_up() {
        assert_eq!(timeout_ms(Duration::from_micros(300)), 1);
        assert_eq!(timeout_ms(Duration::from_millis(5)), 5);
        assert_eq!(timeout_ms(Duration::from_secs(120)), 60_000);
    }
}
