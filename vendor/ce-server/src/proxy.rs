//! `ChaosProxy` — a seeded TCP shim for deterministic network fault
//! injection between the cluster router and a shard.
//!
//! The proxy listens on its own loopback port and forwards byte streams to
//! a target address. Each accepted connection draws one fault from a
//! seeded SplitMix64 stream against the configured rates, in a fixed
//! precedence order (refuse, then black-hole, then truncate, then delay,
//! else pass). With a single-threaded client the accept order — and
//! therefore the whole fault schedule — is a pure function of the seed, so
//! failover tests replay exactly.
//!
//! Faults model the distinct ways a network path dies, which exercise
//! different router branches:
//!
//! - **Refuse**: the connection is closed before any byte flows — the
//!   router's send fails fast (connect-ish error, next ring position).
//! - **Black-hole**: the request is swallowed and nothing comes back — the
//!   router burns its read timeout before failing over (the deadline
//!   budget's reason to exist).
//! - **Truncate**: the response is cut mid-flight after a byte prefix — the
//!   router sees a framing error, must not forward the partial body.
//! - **Delay**: the exchange is held for a fixed pause, then passes — slow
//!   but correct, must *not* trip failover on its own (only the deadline
//!   may cut it off).
//!
//! Rates can be swapped at runtime ([`ChaosProxy::set_faults`]) to script
//! phases: calm → blackout (ejection) → calm again (readmission).

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-connection fault probabilities; the remainder passes through clean.
/// Rates are checked in the listed precedence order and must sum to ≤ 1.
///
/// `delay_every`/`delay_table` are a separate, *per-burst* mechanism: the
/// per-connection faults above draw once per accepted connection, which is
/// useless against a router that multiplexes every request over one pooled
/// keep-alive stream — the whole stream gets one draw. The burst table
/// instead counts client→upstream read bursts across *all* connections
/// (under request/response ping-pong each single-write request arrives as
/// one burst) and stalls every `delay_every`-th one by the next table
/// entry, cycling. That yields a deterministic per-request latency tail
/// through a pooled connection — what the hedge drill injects.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRates {
    /// Close the client connection immediately, touching nothing.
    pub refuse: f64,
    /// Swallow the request and answer with silence until the client gives
    /// up.
    pub black_hole: f64,
    /// Forward the request, then cut the response after
    /// [`FaultRates::truncate_after`] bytes.
    pub truncate: f64,
    /// Hold the exchange for [`FaultRates::delay`] before passing it clean.
    pub delay_rate: f64,
    /// Bytes of response forwarded before a truncate cut.
    pub truncate_after: usize,
    /// Pause applied by a delay fault.
    pub delay: Duration,
    /// Stall every N-th client→upstream burst (0 disables the mechanism).
    pub delay_every: u32,
    /// Pauses applied to the selected bursts, cycled in order.
    pub delay_table: Vec<Duration>,
}

impl FaultRates {
    /// No faults: every connection passes through.
    pub fn calm() -> FaultRates {
        FaultRates {
            refuse: 0.0,
            black_hole: 0.0,
            truncate: 0.0,
            delay_rate: 0.0,
            truncate_after: 40,
            delay: Duration::from_millis(20),
            delay_every: 0,
            delay_table: Vec::new(),
        }
    }

    /// Every connection refused: a blackout, as seen from the router.
    pub fn blackout() -> FaultRates {
        FaultRates { refuse: 1.0, ..FaultRates::calm() }
    }

    /// A clean stream with a deterministic latency tail: every `every`-th
    /// request burst is stalled by the next entry of `table`.
    pub fn tail(every: u32, table: Vec<Duration>) -> FaultRates {
        FaultRates { delay_every: every, delay_table: table, ..FaultRates::calm() }
    }
}

/// What the proxy did to each connection, by fault class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProxyStats {
    /// Connections accepted from clients.
    pub connections: u64,
    /// Passed through untouched.
    pub passed: u64,
    /// Refused (closed before any byte).
    pub refused: u64,
    /// Black-holed (request swallowed, no response).
    pub black_holed: u64,
    /// Truncated mid-response.
    pub truncated: u64,
    /// Delayed, then passed.
    pub delayed: u64,
    /// Individual bursts stalled by the `delay_every` table.
    pub burst_delays: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    passed: AtomicU64,
    refused: AtomicU64,
    black_holed: AtomicU64,
    truncated: AtomicU64,
    delayed: AtomicU64,
    burst_delays: AtomicU64,
}

/// The shared per-burst delay schedule (see [`FaultRates::delay_every`]):
/// one global counter across every relay thread, so the schedule is a pure
/// function of arrival order — deterministic under ping-pong traffic.
#[derive(Clone)]
struct BurstDelayer {
    counter: Arc<AtomicU64>,
    rates: Arc<Mutex<FaultRates>>,
    counters: Arc<Counters>,
}

impl BurstDelayer {
    /// Accounts one burst; returns the pause to apply to it, if selected.
    fn on_burst(&self) -> Option<Duration> {
        let n = self.counter.fetch_add(1, Ordering::SeqCst) + 1; // 1-based
        let (every, pause) = {
            let rates = self.rates.lock().unwrap_or_else(|e| e.into_inner());
            if rates.delay_every == 0 || rates.delay_table.is_empty() {
                return None;
            }
            let every = u64::from(rates.delay_every);
            let pick = ((n / every).saturating_sub(1)) as usize % rates.delay_table.len();
            (every, rates.delay_table[pick])
        };
        if n.is_multiple_of(every) {
            self.counters.burst_delays.fetch_add(1, Ordering::Relaxed);
            Some(pause)
        } else {
            None
        }
    }
}

/// The per-connection fault decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    Pass,
    Refuse,
    BlackHole,
    Truncate(usize),
    Delay(Duration),
}

/// SplitMix64: the workspace's standard tiny deterministic generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from the stream.
fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

fn draw_fault(state: &mut u64, rates: &FaultRates) -> Fault {
    let u = unit(state);
    let mut edge = rates.refuse;
    if u < edge {
        return Fault::Refuse;
    }
    edge += rates.black_hole;
    if u < edge {
        return Fault::BlackHole;
    }
    edge += rates.truncate;
    if u < edge {
        return Fault::Truncate(rates.truncate_after);
    }
    edge += rates.delay_rate;
    if u < edge {
        return Fault::Delay(rates.delay);
    }
    Fault::Pass
}

/// A running chaos proxy; see module docs. Dropping it stops the listener
/// and joins the accept thread (in-flight relay threads die with their
/// sockets).
pub struct ChaosProxy {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    rates: Arc<Mutex<FaultRates>>,
    counters: Arc<Counters>,
}

impl ChaosProxy {
    /// Binds a loopback port (use `127.0.0.1:0` for ephemeral) forwarding
    /// to `target`, with the given seed and initial fault rates.
    pub fn start(
        listen: &str,
        target: SocketAddr,
        seed: u64,
        rates: FaultRates,
    ) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let rates = Arc::new(Mutex::new(rates));
        let counters = Arc::new(Counters::default());
        let accept_thread = {
            let stop = Arc::clone(&stop);
            let rates = Arc::clone(&rates);
            let counters = Arc::clone(&counters);
            std::thread::Builder::new()
                .name("ce-chaos-accept".into())
                .spawn(move || accept_loop(listener, target, seed, stop, rates, counters))?
        };
        Ok(ChaosProxy {
            local_addr,
            stop,
            accept_thread: Some(accept_thread),
            rates,
            counters,
        })
    }

    /// The proxy's dialable address (what the router should be given).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Swaps the fault rates; applies to connections accepted from now on.
    pub fn set_faults(&self, rates: FaultRates) {
        *self.rates.lock().unwrap_or_else(|e| e.into_inner()) = rates;
    }

    /// Per-fault connection counters.
    pub fn stats(&self) -> ProxyStats {
        ProxyStats {
            connections: self.counters.connections.load(Ordering::Relaxed),
            passed: self.counters.passed.load(Ordering::Relaxed),
            refused: self.counters.refused.load(Ordering::Relaxed),
            black_holed: self.counters.black_holed.load(Ordering::Relaxed),
            truncated: self.counters.truncated.load(Ordering::Relaxed),
            delayed: self.counters.delayed.load(Ordering::Relaxed),
            burst_delays: self.counters.burst_delays.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting and joins the accept thread. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: TcpListener,
    target: SocketAddr,
    seed: u64,
    stop: Arc<AtomicBool>,
    rates: Arc<Mutex<FaultRates>>,
    counters: Arc<Counters>,
) {
    let mut rng_state = seed ^ 0xc3a5_c85c_97cb_3127;
    let mut relay_threads: Vec<JoinHandle<()>> = Vec::new();
    let burst_counter = Arc::new(AtomicU64::new(0));
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _peer)) => {
                counters.connections.fetch_add(1, Ordering::Relaxed);
                let fault = {
                    let rates = rates.lock().unwrap_or_else(|e| e.into_inner());
                    draw_fault(&mut rng_state, &rates)
                };
                let delayer = BurstDelayer {
                    counter: Arc::clone(&burst_counter),
                    rates: Arc::clone(&rates),
                    counters: Arc::clone(&counters),
                };
                let counters = Arc::clone(&counters);
                let stop = Arc::clone(&stop);
                relay_threads.push(
                    std::thread::Builder::new()
                        .name("ce-chaos-relay".into())
                        .spawn(move || relay(client, target, fault, delayer, counters, stop))
                        .expect("spawn relay thread"),
                );
                relay_threads.retain(|t| !t.is_finished());
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    for thread in relay_threads {
        let _ = thread.join();
    }
}

/// Applies the drawn fault to one client connection.
fn relay(
    client: TcpStream,
    target: SocketAddr,
    fault: Fault,
    delayer: BurstDelayer,
    counters: Arc<Counters>,
    stop: Arc<AtomicBool>,
) {
    match fault {
        Fault::Refuse => {
            counters.refused.fetch_add(1, Ordering::Relaxed);
            // Dropping the stream closes it; the client's write or read
            // fails with reset/EOF, the same signature as a dead shard.
        }
        Fault::BlackHole => {
            counters.black_holed.fetch_add(1, Ordering::Relaxed);
            black_hole(client, stop);
        }
        Fault::Truncate(after) => {
            counters.truncated.fetch_add(1, Ordering::Relaxed);
            forward(client, target, Some(after), Duration::ZERO, delayer, stop);
        }
        Fault::Delay(pause) => {
            counters.delayed.fetch_add(1, Ordering::Relaxed);
            forward(client, target, None, pause, delayer, stop);
        }
        Fault::Pass => {
            counters.passed.fetch_add(1, Ordering::Relaxed);
            forward(client, target, None, Duration::ZERO, delayer, stop);
        }
    }
}

/// Reads and discards client bytes without ever answering, until the client
/// closes or the proxy stops — the "switch ate my packet" failure mode.
fn black_hole(mut client: TcpStream, stop: Arc<AtomicBool>) {
    let _ = client.set_read_timeout(Some(Duration::from_millis(20)));
    let mut sink = [0u8; 4 * 1024];
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match client.read(&mut sink) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e)
                if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(_) => return,
        }
    }
}

/// Bidirectional relay client ↔ target. `truncate_after` caps the bytes
/// forwarded target→client before both sides are cut; `pause` is applied
/// once before any byte flows.
fn forward(
    client: TcpStream,
    target: SocketAddr,
    truncate_after: Option<usize>,
    pause: Duration,
    delayer: BurstDelayer,
    stop: Arc<AtomicBool>,
) {
    if !pause.is_zero() {
        std::thread::sleep(pause);
    }
    let Ok(upstream) = TcpStream::connect_timeout(&target, Duration::from_secs(2)) else {
        return; // target gone: closing the client stream mimics a refusal
    };
    let _ = upstream.set_nodelay(true);
    let _ = client.set_nodelay(true);
    // client → target runs on its own thread; target → client (the side a
    // truncate fault cuts) runs here. The burst delayer rides the request
    // direction only — a stalled request inflates the client's observed
    // latency without touching response framing.
    let up = {
        let (Ok(client_read), Ok(upstream_write)) =
            (client.try_clone(), upstream.try_clone())
        else {
            return;
        };
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("ce-chaos-up".into())
            .spawn(move || copy_stream(client_read, upstream_write, None, Some(delayer), stop))
            .expect("spawn upstream copy")
    };
    copy_stream(upstream, client, truncate_after, None, stop);
    // Dropping our ends unblocks the uploader's reads.
    let _ = up.join();
}

/// Copies `from` into `to` until EOF, error, an optional byte cap, or stop.
/// On the cap, both streams are shut down to force the mid-response cut.
/// With a `delayer`, every read burst is accounted and the selected ones
/// are stalled *before* their bytes move on.
fn copy_stream(
    mut from: TcpStream,
    mut to: TcpStream,
    mut cap: Option<usize>,
    delayer: Option<BurstDelayer>,
    stop: Arc<AtomicBool>,
) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(20)));
    let mut buf = [0u8; 8 * 1024];
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match from.read(&mut buf) {
            Ok(0) => {
                let _ = to.shutdown(std::net::Shutdown::Write);
                return;
            }
            Ok(n) => {
                if let Some(delayer) = &delayer {
                    if let Some(pause) = delayer.on_burst() {
                        std::thread::sleep(pause);
                    }
                }
                if let Some(remaining) = cap.as_mut() {
                    if n >= *remaining {
                        let _ = to.write_all(&buf[..*remaining]);
                        let _ = to.shutdown(std::net::Shutdown::Both);
                        let _ = from.shutdown(std::net::Shutdown::Both);
                        return;
                    }
                    *remaining -= n;
                }
                if to.write_all(&buf[..n]).is_err() {
                    return;
                }
            }
            Err(e)
                if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_schedule_is_deterministic_per_seed() {
        let rates = FaultRates {
            refuse: 0.2,
            black_hole: 0.1,
            truncate: 0.1,
            delay_rate: 0.1,
            ..FaultRates::calm()
        };
        let draw_all = |seed: u64| -> Vec<Fault> {
            let mut state = seed ^ 0xc3a5_c85c_97cb_3127;
            (0..64).map(|_| draw_fault(&mut state, &rates)).collect()
        };
        assert_eq!(draw_all(7), draw_all(7), "same seed, same schedule");
        assert_ne!(draw_all(7), draw_all(8), "different seeds diverge");
        let sample = draw_all(7);
        assert!(sample.contains(&Fault::Refuse));
        assert!(sample.contains(&Fault::Pass));
    }

    #[test]
    fn rates_partition_the_unit_interval_in_precedence_order() {
        let rates = FaultRates {
            refuse: 1.0,
            black_hole: 1.0, // unreachable: refuse consumes everything first
            ..FaultRates::calm()
        };
        let mut state = 1;
        for _ in 0..32 {
            assert_eq!(draw_fault(&mut state, &rates), Fault::Refuse);
        }
        let calm = FaultRates::calm();
        for _ in 0..32 {
            assert_eq!(draw_fault(&mut state, &calm), Fault::Pass);
        }
    }

    #[test]
    fn burst_delayer_selects_every_nth_and_cycles_the_table() {
        let table = vec![Duration::from_millis(5), Duration::from_millis(9)];
        let delayer = BurstDelayer {
            counter: Arc::new(AtomicU64::new(0)),
            rates: Arc::new(Mutex::new(FaultRates::tail(3, table))),
            counters: Arc::new(Counters::default()),
        };
        let schedule: Vec<Option<Duration>> = (0..12).map(|_| delayer.on_burst()).collect();
        let ms = Duration::from_millis;
        assert_eq!(
            schedule,
            vec![
                None, None, Some(ms(5)),
                None, None, Some(ms(9)),
                None, None, Some(ms(5)),
                None, None, Some(ms(9)),
            ],
            "every 3rd burst stalls, table entries cycle"
        );
        assert_eq!(delayer.counters.burst_delays.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn burst_delayer_is_inert_when_disabled() {
        let delayer = BurstDelayer {
            counter: Arc::new(AtomicU64::new(0)),
            rates: Arc::new(Mutex::new(FaultRates::calm())),
            counters: Arc::new(Counters::default()),
        };
        assert!((0..16).all(|_| delayer.on_burst().is_none()));
        // An empty table never panics even with delay_every set.
        let delayer = BurstDelayer {
            counter: Arc::new(AtomicU64::new(0)),
            rates: Arc::new(Mutex::new(FaultRates::tail(2, Vec::new()))),
            counters: Arc::new(Counters::default()),
        };
        assert!((0..16).all(|_| delayer.on_burst().is_none()));
    }

    #[test]
    fn burst_tail_stalls_requests_through_one_keepalive_connection() {
        use crate::client::HttpClient;
        use crate::http::{Request, Response};
        use crate::server::{HttpServer, ServerConfig};

        let upstream = HttpServer::bind(
            "127.0.0.1:0",
            ServerConfig { read_tick: Duration::from_millis(2), ..ServerConfig::default() },
            Arc::new(|_req: &Request| Response::text(200, "ok")),
        )
        .expect("bind upstream");
        let proxy = ChaosProxy::start(
            "127.0.0.1:0",
            upstream.local_addr(),
            7,
            FaultRates::tail(4, vec![Duration::from_millis(60)]),
        )
        .expect("start proxy");
        // One keep-alive connection, eight ping-pong requests: the 4th and
        // 8th burst hit the table even though the *connection* drew Pass.
        let mut client = HttpClient::connect(proxy.local_addr()).expect("connect");
        let mut slow = 0usize;
        for i in 1..=8 {
            let started = std::time::Instant::now();
            let resp = client.get("/x").expect("request through proxy");
            assert_eq!(resp.status, 200);
            let elapsed = started.elapsed();
            if i % 4 == 0 {
                assert!(elapsed >= Duration::from_millis(50), "burst {i} must stall: {elapsed:?}");
                slow += 1;
            } else {
                assert!(elapsed < Duration::from_millis(50), "burst {i} must pass: {elapsed:?}");
            }
        }
        assert_eq!(slow, 2);
        assert_eq!(proxy.stats().burst_delays, 2);
        assert_eq!(proxy.stats().connections, 1, "the pool reused one stream");
    }
}
