//! Deadline-bounded micro-batching with admission control.
//!
//! Concurrent callers submit work items and block for their results; a
//! dedicated batcher thread coalesces whatever is queued (up to
//! [`BatcherConfig::max_batch`], waiting at most [`BatcherConfig::window`]
//! for stragglers) and hands one combined slice to the runner closure. The
//! queue is bounded: a submission that would overflow it is rejected whole
//! ([`BatchError::QueueFull`]) so load sheds at admission instead of
//! growing latency unboundedly.
//!
//! The runner is panic-isolated: a panicking or mis-sized runner fails the
//! affected jobs with [`BatchError::Failed`] rather than deadlocking their
//! submitters, and the batcher thread survives to serve the next batch.
//!
//! **Inline fast path.** When a submission arrives while the queue is empty
//! and the runner is idle, the submitter executes the batch on its own
//! thread instead of handing off to the batcher — that skips two thread
//! wakeups (submitter→batcher, batcher→submitter) per request, which
//! dominate service time on small machines. Contended submissions (runner
//! busy or jobs already queued) fall through to the queue, where the
//! batcher thread coalesces them exactly as before — so under concurrency
//! the coalescing window still does its job, and under light load the
//! window's latency cost disappears entirely.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, TryLockError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs for a [`MicroBatcher`].
#[derive(Debug, Clone, Copy)]
pub struct BatcherConfig {
    /// Maximum queued (admitted, not yet executed) items. Submissions that
    /// would exceed this are shed whole.
    pub queue_cap: usize,
    /// Maximum items handed to the runner in one call.
    pub max_batch: usize,
    /// How long the batcher waits for more items after the first one
    /// arrives, to give concurrent submitters a chance to coalesce.
    pub window: Duration,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        BatcherConfig {
            queue_cap: 1024,
            max_batch: 64,
            window: Duration::from_micros(500),
        }
    }
}

/// Why a submission failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchError {
    /// The bounded queue could not admit the submission; shed with 503.
    QueueFull,
    /// The runner panicked or returned a mis-sized result for this item's
    /// batch.
    Failed,
    /// The batcher was shut down before the item executed.
    Shutdown,
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            BatchError::QueueFull => "admission queue full",
            BatchError::Failed => "batch runner failed",
            BatchError::Shutdown => "batcher shut down",
        };
        write!(f, "{msg}")
    }
}

impl std::error::Error for BatchError {}

/// Per-job rendezvous: the submitter blocks on the condvar until the
/// batcher thread deposits `Some(Ok(result))` / `Some(Err(..))`.
struct Slot<R> {
    result: Mutex<Option<Result<R, BatchError>>>,
    ready: Condvar,
    /// Stage timings (trace attribution) deposited by the batcher thread
    /// before delivery: the submitting thread — where the distributed trace
    /// lives — reads them back after `wait` returns. Release/acquire comes
    /// for free from the result mutex, so relaxed stores suffice.
    queue_ns: AtomicU64,
    window_ns: AtomicU64,
    infer_ns: AtomicU64,
}

impl<R> Slot<R> {
    fn new() -> Arc<Self> {
        Arc::new(Slot {
            result: Mutex::new(None),
            ready: Condvar::new(),
            queue_ns: AtomicU64::new(0),
            window_ns: AtomicU64::new(0),
            infer_ns: AtomicU64::new(0),
        })
    }

    fn deliver(&self, value: Result<R, BatchError>) {
        let mut guard = self.result.lock().unwrap_or_else(|e| e.into_inner());
        *guard = Some(value);
        self.ready.notify_one();
    }

    fn wait(&self) -> Result<R, BatchError> {
        let mut guard = self.result.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(value) = guard.take() {
                return value;
            }
            guard = self.ready.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }
}

struct Job<T, R> {
    item: T,
    slot: Arc<Slot<R>>,
    enqueued_at: std::time::Instant,
}

struct Shared<T, R> {
    queue: Mutex<QueueState<T, R>>,
    /// Wakes the batcher when items arrive or shutdown is requested.
    wake: Condvar,
}

struct QueueState<T, R> {
    jobs: VecDeque<Job<T, R>>,
    shutdown: bool,
}

/// Counters exposed for telemetry and the bench gate.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatcherStats {
    /// Items admitted to the queue.
    pub admitted: u64,
    /// Items shed at admission (`QueueFull`).
    pub shed: u64,
    /// Runner invocations.
    pub batches: u64,
    /// Largest batch handed to the runner so far.
    pub max_batch_seen: u64,
}

/// The batch executor, shared between the batcher thread and inline-path
/// submitters. Whoever holds the lock runs the batch; the mutex is what
/// makes "runner idle" observable to the fast path.
type BoxedRunner<T, R> = Box<dyn FnMut(Vec<T>) -> Vec<R> + Send>;
type Runner<T, R> = Mutex<BoxedRunner<T, R>>;

fn lock_runner<T, R>(runner: &Runner<T, R>) -> MutexGuard<'_, BoxedRunner<T, R>> {
    runner.lock().unwrap_or_else(|e| e.into_inner())
}

/// Saturating nanoseconds since `t`.
fn elapsed_ns(t: std::time::Instant) -> u64 {
    t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

/// Runs one batch under the runner lock with panic isolation; `None` means
/// the runner panicked or returned a mis-sized result.
fn invoke_runner<T, R>(runner: &mut dyn FnMut(Vec<T>) -> Vec<R>, items: Vec<T>) -> Option<Vec<R>> {
    let n = items.len();
    catch_unwind(AssertUnwindSafe(|| runner(items))).ok().filter(|r| r.len() == n)
}

/// See module docs.
pub struct MicroBatcher<T: Send + 'static, R: Send + 'static> {
    shared: Arc<Shared<T, R>>,
    runner: Arc<Runner<T, R>>,
    config: BatcherConfig,
    admitted: AtomicU64,
    shed: AtomicU64,
    batches: Arc<AtomicU64>,
    max_batch_seen: Arc<AtomicU64>,
    /// Batch-size / window-wait telemetry, shared with the batcher thread
    /// so the inline path records without a registry lookup per request.
    occupancy: ce_telemetry::Histogram,
    window_wait: ce_telemetry::Histogram,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl<T: Send + 'static, R: Send + 'static> MicroBatcher<T, R> {
    /// Spawns the batcher thread with `runner` as the batch executor. The
    /// runner receives the coalesced items and must return exactly one
    /// result per item (a mis-sized return fails the whole batch).
    pub fn new<F>(config: BatcherConfig, runner: F) -> Arc<Self>
    where
        F: FnMut(Vec<T>) -> Vec<R> + Send + 'static,
    {
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState { jobs: VecDeque::new(), shutdown: false }),
            wake: Condvar::new(),
        });
        let runner: Arc<Runner<T, R>> = Arc::new(Mutex::new(Box::new(runner)));
        let batches = Arc::new(AtomicU64::new(0));
        let max_batch_seen = Arc::new(AtomicU64::new(0));
        let occupancy = ce_telemetry::histogram("server.batch_occupancy");
        let window_wait = ce_telemetry::histogram("server.batch_wait_us");
        let worker = {
            let shared = Arc::clone(&shared);
            let runner = Arc::clone(&runner);
            let batches = Arc::clone(&batches);
            let max_batch_seen = Arc::clone(&max_batch_seen);
            let cfg = config;
            std::thread::Builder::new()
                .name("ce-server-batcher".into())
                .spawn(move || batcher_loop(shared, cfg, runner, batches, max_batch_seen))
                .expect("spawn batcher thread")
        };
        Arc::new(MicroBatcher {
            shared,
            runner,
            config,
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            batches,
            max_batch_seen,
            occupancy,
            window_wait,
            worker: Mutex::new(Some(worker)),
        })
    }

    /// Submits `items` as one all-or-nothing admission unit and blocks
    /// until every item's result is available, returned in input order.
    ///
    /// If the queue cannot hold all of them, none are admitted and the call
    /// sheds with [`BatchError::QueueFull`].
    pub fn submit_all(&self, items: Vec<T>) -> Result<Vec<R>, BatchError> {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        // Inline fast path (module docs): with nothing queued and the
        // runner idle, execute here and skip the batcher thread entirely.
        // The runner is acquired *under* the queue lock so a job admitted
        // concurrently can never be overtaken by this submission.
        if items.len() <= self.config.max_batch {
            let runner = {
                let queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                if queue.shutdown {
                    return Err(BatchError::Shutdown);
                }
                if queue.jobs.is_empty() {
                    match self.runner.try_lock() {
                        Ok(guard) => Some(guard),
                        Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
                        Err(TryLockError::WouldBlock) => None,
                    }
                } else {
                    None
                }
            };
            if let Some(mut runner) = runner {
                let n = items.len() as u64;
                self.admitted.fetch_add(n, Ordering::Relaxed);
                self.batches.fetch_add(1, Ordering::Relaxed);
                self.max_batch_seen.fetch_max(n, Ordering::Relaxed);
                self.occupancy.record(n);
                self.window_wait.record(0);
                // Inline execution never queues or lingers; attribute the
                // runner time to the active trace (clock reads only when a
                // trace is actually live on this thread).
                let t_infer =
                    ce_telemetry::trace::active_id().is_some().then(std::time::Instant::now);
                let result = invoke_runner(&mut **runner, items).ok_or(BatchError::Failed);
                if let Some(t_infer) = t_infer {
                    ce_telemetry::trace::stage("queue", 0);
                    ce_telemetry::trace::stage("window", 0);
                    ce_telemetry::trace::stage("infer", elapsed_ns(t_infer));
                }
                return result;
            }
        }
        let slots: Vec<Arc<Slot<R>>> = {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if queue.shutdown {
                return Err(BatchError::Shutdown);
            }
            if queue.jobs.len() + items.len() > self.config.queue_cap {
                drop(queue);
                self.shed.fetch_add(items.len() as u64, Ordering::Relaxed);
                return Err(BatchError::QueueFull);
            }
            let slots: Vec<Arc<Slot<R>>> = items.iter().map(|_| Slot::new()).collect();
            let enqueued_at = std::time::Instant::now();
            for (item, slot) in items.into_iter().zip(&slots) {
                queue.jobs.push_back(Job { item, slot: Arc::clone(slot), enqueued_at });
            }
            self.admitted.fetch_add(slots.len() as u64, Ordering::Relaxed);
            slots
        };
        self.shared.wake.notify_one();
        // Waiting happens outside the queue lock, so the batcher is free to
        // coalesce these jobs with other submitters' while we block.
        let mut out = Vec::with_capacity(slots.len());
        let mut failure = None;
        let mut queue_ns = 0u64;
        let mut window_ns = 0u64;
        let mut infer_ns = 0u64;
        for slot in &slots {
            match slot.wait() {
                Ok(r) => out.push(r),
                Err(e) => failure = Some(e),
            }
            queue_ns = queue_ns.max(slot.queue_ns.load(Ordering::Relaxed));
            window_ns = window_ns.max(slot.window_ns.load(Ordering::Relaxed));
            infer_ns = infer_ns.max(slot.infer_ns.load(Ordering::Relaxed));
        }
        // Attribute the batcher-thread stages to this (submitting) thread's
        // active trace; the stage calls are no-ops when none is live.
        if ce_telemetry::trace::active_id().is_some() {
            ce_telemetry::trace::stage("queue", queue_ns);
            ce_telemetry::trace::stage("window", window_ns);
            ce_telemetry::trace::stage("infer", infer_ns);
        }
        match failure {
            None => Ok(out),
            Some(e) => Err(e),
        }
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> BatcherStats {
        BatcherStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            max_batch_seen: self.max_batch_seen.load(Ordering::Relaxed),
        }
    }

    /// Items currently queued (admitted, not yet handed to the runner).
    pub fn queued(&self) -> usize {
        self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).jobs.len()
    }

    /// Stops admitting, lets the batcher drain everything already queued,
    /// and joins the thread. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.shutdown = true;
        }
        self.shared.wake.notify_all();
        if let Some(handle) =
            self.worker.lock().unwrap_or_else(|e| e.into_inner()).take()
        {
            let _ = handle.join();
        }
    }
}

impl<T: Send + 'static, R: Send + 'static> Drop for MicroBatcher<T, R> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn batcher_loop<T, R>(
    shared: Arc<Shared<T, R>>,
    config: BatcherConfig,
    runner: Arc<Runner<T, R>>,
    batches: Arc<AtomicU64>,
    max_batch_seen: Arc<AtomicU64>,
) {
    // Histogram handles cached for the thread's lifetime; recording is a
    // no-op (atomic load + branch) while telemetry is disabled.
    let occupancy = ce_telemetry::histogram("server.batch_occupancy");
    let window_wait = ce_telemetry::histogram("server.batch_wait_us");
    loop {
        // Phase 1: wait for the first job (or shutdown with an empty queue).
        let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if !queue.jobs.is_empty() {
                break;
            }
            if queue.shutdown {
                return;
            }
            queue = shared.wake.wait(queue).unwrap_or_else(|e| e.into_inner());
        }
        // Phase 2: first job in hand — linger up to `window` for stragglers,
        // unless the batch is already full or we're draining for shutdown.
        let first_job_at = std::time::Instant::now();
        let deadline = first_job_at + config.window;
        while queue.jobs.len() < config.max_batch && !queue.shutdown {
            let now = std::time::Instant::now();
            let Some(left) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
            else {
                break;
            };
            let (q, timeout) = shared
                .wake
                .wait_timeout(queue, left)
                .unwrap_or_else(|e| e.into_inner());
            queue = q;
            if timeout.timed_out() {
                break;
            }
        }
        drop(queue);

        // Phase 3: take the runner *before* draining the queue, so that
        // while an inline submitter is mid-batch the waiting jobs stay
        // queued — visible to `queued()` and counted against `queue_cap`
        // by admission. Lock order here is runner → queue; the inline path
        // only ever try_locks the runner under the queue lock, so the two
        // orders cannot deadlock. Only this thread drains jobs, so the
        // queue is still non-empty when the runner is finally ours.
        let mut guard = lock_runner(&runner);
        let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        let take = queue.jobs.len().min(config.max_batch);
        let batch: Vec<Job<T, R>> = queue.jobs.drain(..take).collect();
        drop(queue);

        // Trace attribution (deposited per slot, read by the submitter):
        // `window` is the coalescing linger shared by the whole batch;
        // `queue` is whatever a job waited beyond that — zero in a calm
        // system, the backlog signal when the runner can't keep up.
        let drained_at = std::time::Instant::now();
        let batch_window_ns = drained_at.duration_since(first_job_at).as_nanos();
        let batch_window_ns = batch_window_ns.min(u128::from(u64::MAX)) as u64;
        let (items, slots): (Vec<T>, Vec<Arc<Slot<R>>>) = batch
            .into_iter()
            .map(|j| {
                let waited = drained_at.duration_since(j.enqueued_at).as_nanos();
                let waited = waited.min(u128::from(u64::MAX)) as u64;
                j.slot.queue_ns.store(waited.saturating_sub(batch_window_ns), Ordering::Relaxed);
                j.slot.window_ns.store(batch_window_ns, Ordering::Relaxed);
                (j.item, j.slot)
            })
            .unzip();
        let n = slots.len();
        if n == 0 {
            drop(guard);
            continue;
        }
        batches.fetch_add(1, Ordering::Relaxed);
        max_batch_seen.fetch_max(n as u64, Ordering::Relaxed);
        occupancy.record(n as u64);
        window_wait.record(first_job_at.elapsed().as_micros() as u64);

        let t_infer = std::time::Instant::now();
        let results = invoke_runner(&mut **guard, items);
        drop(guard);
        let infer_ns = elapsed_ns(t_infer);
        for slot in &slots {
            slot.infer_ns.store(infer_ns, Ordering::Relaxed);
        }
        match results {
            Some(results) => {
                for (slot, result) in slots.into_iter().zip(results) {
                    slot.deliver(Ok(result));
                }
            }
            None => {
                for slot in slots {
                    slot.deliver(Err(BatchError::Failed));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn single_submission_round_trips_in_order() {
        let batcher = MicroBatcher::new(BatcherConfig::default(), |items: Vec<i64>| {
            items.iter().map(|x| x * 2).collect()
        });
        assert_eq!(batcher.submit_all(vec![1, 2, 3]), Ok(vec![2, 4, 6]));
        assert_eq!(batcher.submit_all(Vec::new()), Ok(Vec::new()));
        batcher.shutdown();
    }

    #[test]
    fn concurrent_submitters_coalesce_and_all_complete() {
        let batch_sizes = Arc::new(Mutex::new(Vec::new()));
        let sizes = Arc::clone(&batch_sizes);
        let batcher = MicroBatcher::new(
            BatcherConfig { queue_cap: 1024, max_batch: 64, window: Duration::from_millis(5) },
            move |items: Vec<u64>| {
                sizes.lock().unwrap().push(items.len());
                items.iter().map(|x| x + 100).collect()
            },
        );
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let b = Arc::clone(&batcher);
            handles.push(std::thread::spawn(move || {
                b.submit_all(vec![t * 10, t * 10 + 1]).unwrap()
            }));
        }
        for (t, h) in handles.into_iter().enumerate() {
            let t = t as u64;
            assert_eq!(h.join().unwrap(), vec![t * 10 + 100, t * 10 + 101]);
        }
        let stats = batcher.stats();
        assert_eq!(stats.admitted, 16);
        assert_eq!(stats.shed, 0);
        // Coalescing must never split a batch beyond the item count, and
        // everything ran in at least one batch.
        let sizes = batch_sizes.lock().unwrap();
        assert_eq!(sizes.iter().sum::<usize>(), 16);
        assert!(stats.max_batch_seen >= 2, "window never coalesced anything");
        batcher.shutdown();
    }

    #[test]
    fn queue_overflow_sheds_whole_submission() {
        // A runner that blocks until released keeps the queue occupied.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        let batcher = MicroBatcher::new(
            BatcherConfig { queue_cap: 2, max_batch: 1, window: Duration::ZERO },
            move |items: Vec<u8>| {
                let (lock, cv) = &*g;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
                items
            },
        );
        // First submission occupies the runner; fill the queue behind it.
        let b1 = Arc::clone(&batcher);
        let h1 = std::thread::spawn(move || b1.submit_all(vec![1]));
        while batcher.stats().batches == 0 {
            std::thread::yield_now();
        }
        let b2 = Arc::clone(&batcher);
        let h2 = std::thread::spawn(move || b2.submit_all(vec![2, 3]));
        while batcher.queued() < 2 {
            std::thread::yield_now();
        }
        // Queue holds 2/2: any further admission must shed, all-or-nothing.
        assert_eq!(batcher.submit_all(vec![4]), Err(BatchError::QueueFull));
        assert_eq!(batcher.submit_all(vec![5, 6]), Err(BatchError::QueueFull));
        assert_eq!(batcher.stats().shed, 3);
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        assert_eq!(h1.join().unwrap(), Ok(vec![1]));
        assert_eq!(h2.join().unwrap(), Ok(vec![2, 3]));
        batcher.shutdown();
    }

    #[test]
    fn panicking_runner_fails_jobs_without_deadlock_and_recovers() {
        let calls = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&calls);
        let batcher = MicroBatcher::new(
            BatcherConfig { queue_cap: 16, max_batch: 16, window: Duration::ZERO },
            move |items: Vec<i32>| {
                if c.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("injected runner fault");
                }
                items
            },
        );
        assert_eq!(batcher.submit_all(vec![7]), Err(BatchError::Failed));
        // The batcher thread survived the panic and serves the next batch.
        assert_eq!(batcher.submit_all(vec![8]), Ok(vec![8]));
        batcher.shutdown();
    }

    #[test]
    fn missized_runner_output_fails_the_batch() {
        let batcher = MicroBatcher::new(
            BatcherConfig { queue_cap: 16, max_batch: 16, window: Duration::ZERO },
            |_items: Vec<i32>| vec![99],
        );
        assert_eq!(batcher.submit_all(vec![1, 2]), Err(BatchError::Failed));
        batcher.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_work_then_rejects() {
        let batcher = MicroBatcher::new(
            BatcherConfig { queue_cap: 64, max_batch: 4, window: Duration::from_millis(1) },
            |items: Vec<u32>| items.iter().map(|x| x + 1).collect(),
        );
        let b = Arc::clone(&batcher);
        let h = std::thread::spawn(move || b.submit_all(vec![1, 2, 3, 4, 5]));
        assert_eq!(h.join().unwrap(), Ok(vec![2, 3, 4, 5, 6]));
        batcher.shutdown();
        assert_eq!(batcher.submit_all(vec![9]), Err(BatchError::Shutdown));
        batcher.shutdown(); // idempotent
    }
}
