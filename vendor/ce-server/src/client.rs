//! Minimal blocking HTTP/1.1 client for loopback tests and benchmarks.
//!
//! Speaks just enough of the protocol to exercise [`crate::HttpServer`]:
//! keep-alive GET/POST with `Content-Length`-framed responses. Not a
//! general-purpose client.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed client-side response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Headers, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Response body (`Content-Length` bytes).
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of header `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// A persistent (keep-alive) connection to one server.
pub struct HttpClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl HttpClient {
    /// Connects with a 5s connect/read/write timeout.
    pub fn connect(addr: SocketAddr) -> io::Result<HttpClient> {
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        stream.set_write_timeout(Some(Duration::from_secs(5)))?;
        stream.set_nodelay(true)?;
        Ok(HttpClient { stream, buf: Vec::new() })
    }

    /// Sends a GET and reads the response.
    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        let head = format!("GET {path} HTTP/1.1\r\nHost: loopback\r\n\r\n");
        self.stream.write_all(head.as_bytes())?;
        self.read_response()
    }

    /// Sends a POST with a body and reads the response.
    pub fn post(&mut self, path: &str, body: &[u8]) -> io::Result<ClientResponse> {
        let head = format!(
            "POST {path} HTTP/1.1\r\nHost: loopback\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<ClientResponse> {
        let head_end = loop {
            if let Some(i) = find_double_crlf(&self.buf) {
                break i;
            }
            self.fill()?;
        };
        let head: Vec<u8> = self.buf.drain(..head_end).collect();
        let head = String::from_utf8(head)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 head"))?;
        let mut lines = head.split("\r\n").filter(|l| !l.is_empty());
        let status_line = lines
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty head"))?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
        let mut headers = Vec::new();
        for line in lines {
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad header"))?;
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
        let len: usize = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        while self.buf.len() < len {
            self.fill()?;
        }
        let body: Vec<u8> = self.buf.drain(..len).collect();
        Ok(ClientResponse { status, headers, body })
    }

    fn fill(&mut self) -> io::Result<()> {
        let mut chunk = [0u8; 8 * 1024];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed mid-response",
            ));
        }
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(())
    }
}

fn find_double_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}
