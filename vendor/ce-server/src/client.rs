//! Minimal blocking HTTP/1.1 client for loopback tests, benchmarks, and the
//! cluster router's shard legs.
//!
//! Speaks just enough of the protocol to exercise [`crate::HttpServer`]:
//! keep-alive GET/POST with `Content-Length`-framed responses. Each request
//! is serialized into a reusable scratch buffer — head and body together —
//! and sent with a **single write**, halving per-request syscalls on the
//! hot path; response heads are parsed in place without intermediate
//! strings. Connect, read, and write timeouts are per-client configurable
//! ([`HttpClient::connect_with`]) and adjustable per request
//! ([`HttpClient::set_read_timeout`]) so a router can clamp a shard leg to
//! the remaining request deadline. `Retry-After` is surfaced as a typed
//! accessor so callers can tell an overloaded-but-alive shard (shed `503`
//! carrying `Retry-After`) apart from a dead one (connect refusal / read
//! error) and make different failover decisions for each.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Per-connection timeouts for [`HttpClient::connect_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Socket read timeout (per `read(2)` call while awaiting a response).
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
        }
    }
}

/// A parsed client-side response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Headers, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Response body (`Content-Length` bytes).
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of header `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// The `x-ce-trace` trace ID echoed by the server, if any.
    pub fn trace_id(&self) -> Option<&str> {
        self.header(crate::http::TRACE_HEADER)
    }

    /// The `Retry-After` delay in seconds, if the response carries one as a
    /// non-negative integer (the only form this stack emits). A shed `503`
    /// with `Retry-After` means "alive but overloaded — come back later";
    /// its absence on an error leans "hard failure".
    pub fn retry_after(&self) -> Option<u64> {
        self.header("retry-after").and_then(|v| v.trim().parse().ok())
    }
}

/// A persistent (keep-alive) connection to one server.
pub struct HttpClient {
    stream: TcpStream,
    /// Response bytes read but not yet consumed.
    buf: Vec<u8>,
    /// Reusable request-serialization scratch (head + body, one write).
    wire: Vec<u8>,
}

impl HttpClient {
    /// Connects with the default 5s connect/read/write timeouts.
    pub fn connect(addr: SocketAddr) -> io::Result<HttpClient> {
        HttpClient::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit timeouts.
    pub fn connect_with(addr: SocketAddr, config: ClientConfig) -> io::Result<HttpClient> {
        let stream = TcpStream::connect_timeout(&addr, config.connect_timeout)?;
        stream.set_read_timeout(Some(config.read_timeout.max(Duration::from_millis(1))))?;
        stream.set_write_timeout(Some(config.write_timeout.max(Duration::from_millis(1))))?;
        stream.set_nodelay(true)?;
        Ok(HttpClient { stream, buf: Vec::new(), wire: Vec::new() })
    }

    /// Overrides the read timeout for subsequent requests on this
    /// connection (e.g. clamping a shard leg to a request's remaining
    /// deadline). Sub-millisecond values are raised to 1ms — a zero would
    /// mean "block forever" to the kernel.
    pub fn set_read_timeout(&mut self, timeout: Duration) -> io::Result<()> {
        self.stream.set_read_timeout(Some(timeout.max(Duration::from_millis(1))))
    }

    /// Sends a GET and reads the response.
    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.wire.clear();
        self.wire.extend_from_slice(b"GET ");
        self.wire.extend_from_slice(path.as_bytes());
        self.wire.extend_from_slice(b" HTTP/1.1\r\nHost: loopback\r\n\r\n");
        self.send_wire()?;
        self.read_response()
    }

    /// Sends a POST with a body and reads the response.
    pub fn post(&mut self, path: &str, body: &[u8]) -> io::Result<ClientResponse> {
        self.wire.clear();
        self.wire.extend_from_slice(b"POST ");
        self.wire.extend_from_slice(path.as_bytes());
        self.wire.extend_from_slice(
            b" HTTP/1.1\r\nHost: loopback\r\nContent-Type: application/json\r\nContent-Length: ",
        );
        push_dec(&mut self.wire, body.len() as u64);
        self.wire.extend_from_slice(b"\r\n\r\n");
        self.wire.extend_from_slice(body);
        self.send_wire()?;
        self.read_response()
    }

    /// Sends an arbitrary request (router forwarding): `method` + `target`
    /// verbatim, the given extra headers, and a `Content-Length`-framed
    /// body. Hop-by-hop framing headers (`Content-Length`, `Connection`,
    /// `Host`) are managed here and must not appear in `headers`.
    pub fn request<'h>(
        &mut self,
        method: &str,
        target: &str,
        headers: impl IntoIterator<Item = (&'h str, &'h str)>,
        body: &[u8],
    ) -> io::Result<ClientResponse> {
        self.wire.clear();
        self.wire.extend_from_slice(method.as_bytes());
        self.wire.push(b' ');
        self.wire.extend_from_slice(target.as_bytes());
        self.wire.extend_from_slice(b" HTTP/1.1\r\nHost: loopback\r\n");
        for (name, value) in headers {
            self.wire.extend_from_slice(name.as_bytes());
            self.wire.extend_from_slice(b": ");
            self.wire.extend_from_slice(value.as_bytes());
            self.wire.extend_from_slice(b"\r\n");
        }
        self.wire.extend_from_slice(b"Content-Length: ");
        push_dec(&mut self.wire, body.len() as u64);
        self.wire.extend_from_slice(b"\r\n\r\n");
        self.wire.extend_from_slice(body);
        self.send_wire()?;
        self.read_response()
    }

    fn send_wire(&mut self) -> io::Result<()> {
        self.stream.write_all(&self.wire)
    }

    fn read_response(&mut self) -> io::Result<ClientResponse> {
        let head_end = loop {
            if let Some(i) = find_double_crlf(&self.buf) {
                break i;
            }
            self.fill()?;
        };
        let (status, headers) = {
            let head = std::str::from_utf8(&self.buf[..head_end])
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 head"))?;
            let mut lines = head.split("\r\n").filter(|l| !l.is_empty());
            let status_line = lines
                .next()
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty head"))?;
            let status: u16 = status_line
                .split(' ')
                .nth(1)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
            let mut headers = Vec::new();
            for line in lines {
                let (name, value) = line
                    .split_once(':')
                    .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad header"))?;
                headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
            }
            (status, headers)
        };
        self.buf.drain(..head_end);
        let len: usize = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        while self.buf.len() < len {
            self.fill()?;
        }
        let body: Vec<u8> = self.buf.drain(..len).collect();
        Ok(ClientResponse { status, headers, body })
    }

    /// Reads one chunk from the socket directly into the buffer tail.
    fn fill(&mut self) -> io::Result<()> {
        let old = self.buf.len();
        self.buf.resize(old + 8 * 1024, 0);
        match self.stream.read(&mut self.buf[old..]) {
            Ok(0) => {
                self.buf.truncate(old);
                Err(io::Error::new(io::ErrorKind::UnexpectedEof, "server closed mid-response"))
            }
            Ok(n) => {
                self.buf.truncate(old + n);
                Ok(())
            }
            Err(e) => {
                self.buf.truncate(old);
                Err(e)
            }
        }
    }
}

/// Appends `v` in decimal without going through `format!`.
fn push_dec(out: &mut Vec<u8>, mut v: u64) {
    let mut tmp = [0u8; 20];
    let mut i = tmp.len();
    loop {
        i -= 1;
        tmp[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.extend_from_slice(&tmp[i..]);
}

fn find_double_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_after_parses_integer_seconds() {
        let resp = ClientResponse {
            status: 503,
            headers: vec![("retry-after".into(), "1".into())],
            body: Vec::new(),
        };
        assert_eq!(resp.retry_after(), Some(1));
        let resp = ClientResponse {
            status: 503,
            headers: vec![("retry-after".into(), " 30 ".into())],
            body: Vec::new(),
        };
        assert_eq!(resp.retry_after(), Some(30));
        let none = ClientResponse { status: 503, headers: Vec::new(), body: Vec::new() };
        assert_eq!(none.retry_after(), None);
        let bad = ClientResponse {
            status: 503,
            headers: vec![("retry-after".into(), "Wed, 21 Oct".into())],
            body: Vec::new(),
        };
        assert_eq!(bad.retry_after(), None, "HTTP-date form is not parsed");
    }
}
