//! Offline stand-in for `serde`.
//!
//! The build container cannot fetch crates, so this vendored stub replaces
//! serde's generic data model with a direct JSON one: [`Serialize`] writes
//! JSON text through [`json::Writer`], [`Deserialize`] reads from a parsed
//! [`json::Value`] tree. The `derive` feature re-exports the matching derive
//! macros from the vendored `serde_derive`, so `#[derive(serde::Serialize,
//! serde::Deserialize)]` keeps working unchanged, and the vendored
//! `serde_json` provides `to_string` / `to_string_pretty` / `from_str` on
//! top. Only JSON is supported — exactly what this workspace uses.

pub mod json;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A type that can write itself as JSON.
pub trait Serialize {
    /// Appends `self` to the writer as one JSON value.
    fn serialize(&self, out: &mut json::Writer);
}

/// A type that can rebuild itself from a parsed JSON value.
pub trait Deserialize: Sized {
    /// Converts one JSON value into `Self`.
    fn deserialize(v: &json::Value) -> Result<Self, json::Error>;
}

/// `serde::de` compatibility alias module.
pub mod de {
    /// In real serde this is a distinct trait; with the JSON-tree model every
    /// [`crate::Deserialize`] is already owned.
    pub use crate::Deserialize as DeserializeOwned;
}

// ---------------------------------------------------------------------------
// Serialize impls for the primitive / container types the workspace stores.
// ---------------------------------------------------------------------------

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, out: &mut json::Writer) {
                out.raw(itoa(*self as i128));
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &json::Value) -> Result<Self, json::Error> {
                let n = v.as_f64()?;
                Ok(n as $t)
            }
        }
    )*};
}
serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn itoa(v: i128) -> String {
    v.to_string()
}

impl Serialize for bool {
    fn serialize(&self, out: &mut json::Writer) {
        out.raw(if *self { "true".into() } else { "false".into() });
    }
}
impl Deserialize for bool {
    fn deserialize(v: &json::Value) -> Result<Self, json::Error> {
        match v {
            json::Value::Bool(b) => Ok(*b),
            _ => Err(json::Error::new("expected bool")),
        }
    }
}

impl Serialize for f64 {
    fn serialize(&self, out: &mut json::Writer) {
        if self.is_finite() {
            out.raw(format_f64(*self));
        } else {
            // JSON has no NaN/Inf; null round-trips to NaN (documented).
            out.raw("null".into());
        }
    }
}
impl Deserialize for f64 {
    fn deserialize(v: &json::Value) -> Result<Self, json::Error> {
        match v {
            json::Value::Null => Ok(f64::NAN),
            _ => v.as_f64(),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self, out: &mut json::Writer) {
        if self.is_finite() {
            out.raw(format!("{self:?}"));
        } else {
            out.raw("null".into());
        }
    }
}
impl Deserialize for f32 {
    fn deserialize(v: &json::Value) -> Result<Self, json::Error> {
        match v {
            json::Value::Null => Ok(f32::NAN),
            _ => Ok(v.as_f64()? as f32),
        }
    }
}

fn format_f64(v: f64) -> String {
    // `{:?}` prints the shortest representation that round-trips.
    format!("{v:?}")
}

impl Serialize for String {
    fn serialize(&self, out: &mut json::Writer) {
        out.string(self);
    }
}
impl Deserialize for String {
    fn deserialize(v: &json::Value) -> Result<Self, json::Error> {
        match v {
            json::Value::Str(s) => Ok(s.clone()),
            _ => Err(json::Error::new("expected string")),
        }
    }
}

impl Serialize for str {
    fn serialize(&self, out: &mut json::Writer) {
        out.string(self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, out: &mut json::Writer) {
        (**self).serialize(out);
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self, out: &mut json::Writer) {
        (**self).serialize(out);
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &json::Value) -> Result<Self, json::Error> {
        Ok(Box::new(T::deserialize(v)?))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, out: &mut json::Writer) {
        out.begin_array();
        for item in self {
            out.element();
            item.serialize(out);
        }
        out.end_array();
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &json::Value) -> Result<Self, json::Error> {
        match v {
            json::Value::Array(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(json::Error::new("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize(&self, out: &mut json::Writer) {
        out.begin_array();
        for item in self {
            out.element();
            item.serialize(out);
        }
        out.end_array();
    }
}
impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn deserialize(v: &json::Value) -> Result<Self, json::Error> {
        Ok(Vec::<T>::deserialize(v)?.into())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, out: &mut json::Writer) {
        match self {
            None => out.raw("null".into()),
            Some(x) => x.serialize(out),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &json::Value) -> Result<Self, json::Error> {
        match v {
            json::Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}

macro_rules! serialize_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self, out: &mut json::Writer) {
                out.begin_array();
                $(out.element(); self.$n.serialize(out);)+
                out.end_array();
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &json::Value) -> Result<Self, json::Error> {
                match v {
                    json::Value::Array(items) => {
                        let expected = [$($n),+].len();
                        if items.len() != expected {
                            return Err(json::Error::new("tuple arity mismatch"));
                        }
                        Ok(($($t::deserialize(&items[$n])?,)+))
                    }
                    _ => Err(json::Error::new("expected array for tuple")),
                }
            }
        }
    )+};
}
serialize_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

#[cfg(test)]
mod tests {
    use super::*;

    fn to_json<T: Serialize>(v: &T) -> String {
        let mut w = json::Writer::new(false);
        v.serialize(&mut w);
        w.finish()
    }

    #[test]
    fn primitives_round_trip() {
        assert_eq!(to_json(&3u32), "3");
        assert_eq!(to_json(&-7i64), "-7");
        assert_eq!(to_json(&true), "true");
        assert_eq!(to_json(&1.5f64), "1.5");
        assert_eq!(to_json(&f64::NAN), "null");
        assert_eq!(to_json(&"hi \"there\"".to_string()), "\"hi \\\"there\\\"\"");
        let v = json::parse(&to_json(&vec![1.0f64, 2.5])).unwrap();
        assert_eq!(Vec::<f64>::deserialize(&v).unwrap(), vec![1.0, 2.5]);
    }

    #[test]
    fn tuples_and_options_round_trip() {
        let pair = ("w".to_string(), 0.25f64);
        let v = json::parse(&to_json(&pair)).unwrap();
        let back: (String, f64) = Deserialize::deserialize(&v).unwrap();
        assert_eq!(back, pair);
        let none: Option<u32> = None;
        assert_eq!(to_json(&none), "null");
        let v = json::parse("17").unwrap();
        assert_eq!(Option::<u32>::deserialize(&v).unwrap(), Some(17));
    }
}
