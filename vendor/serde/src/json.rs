//! Minimal JSON infrastructure shared by the vendored `serde` and
//! `serde_json`: a streaming [`Writer`] for serialization and a [`Value`]
//! tree + recursive-descent [`parse`] for deserialization.

use std::fmt;

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a static-ish message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (f64 is exact for every integer this workspace stores).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Numeric view of the value.
    pub fn as_f64(&self) -> Result<f64, Error> {
        match self {
            Value::Num(n) => Ok(*n),
            _ => Err(Error::new("expected number")),
        }
    }

    /// Looks up a field of an object.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::new(format!("missing field `{name}`"))),
            _ => Err(Error::new(format!("expected object with field `{name}`"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// An append-only JSON text writer with optional pretty-printing.
///
/// Containers call `begin_*`/`end_*`; elements and keys insert separators, so
/// `Serialize` impls never emit commas themselves.
#[derive(Debug)]
pub struct Writer {
    out: String,
    pretty: bool,
    depth: usize,
    /// Whether the current container already has at least one entry.
    needs_comma: Vec<bool>,
}

impl Writer {
    /// Creates a writer; `pretty` adds newlines and two-space indentation.
    pub fn new(pretty: bool) -> Self {
        Writer { out: String::new(), pretty, depth: 0, needs_comma: Vec::new() }
    }

    /// Consumes the writer, returning the JSON text.
    pub fn finish(self) -> String {
        self.out
    }

    fn newline_indent(&mut self) {
        if self.pretty {
            self.out.push('\n');
            for _ in 0..self.depth {
                self.out.push_str("  ");
            }
        }
    }

    /// Appends raw JSON text (a complete scalar token).
    pub fn raw(&mut self, token: String) {
        self.out.push_str(&token);
    }

    /// Appends a JSON string literal with escaping.
    pub fn string(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    /// Opens an object.
    pub fn begin_object(&mut self) {
        self.out.push('{');
        self.depth += 1;
        self.needs_comma.push(false);
    }

    /// Writes a field key (with separator) inside an object.
    pub fn key(&mut self, name: &str) {
        self.separator();
        self.string(name);
        self.out.push(':');
        if self.pretty {
            self.out.push(' ');
        }
    }

    /// Closes an object.
    pub fn end_object(&mut self) {
        let had_entries = self.needs_comma.pop().unwrap_or(false);
        self.depth -= 1;
        if had_entries {
            self.newline_indent();
        }
        self.out.push('}');
    }

    /// Opens an array.
    pub fn begin_array(&mut self) {
        self.out.push('[');
        self.depth += 1;
        self.needs_comma.push(false);
    }

    /// Starts the next array element (inserts the separator).
    pub fn element(&mut self) {
        self.separator();
    }

    /// Closes an array.
    pub fn end_array(&mut self) {
        let had_entries = self.needs_comma.pop().unwrap_or(false);
        self.depth -= 1;
        if had_entries {
            self.newline_indent();
        }
        self.out.push(']');
    }

    fn separator(&mut self) {
        if let Some(first_done) = self.needs_comma.last_mut() {
            if *first_done {
                self.out.push(',');
            }
            *first_done = true;
        }
        self.newline_indent();
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parses one JSON document into a [`Value`] tree.
pub fn parse(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), Error> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::new(format!("expected `{}` at byte {}", c as char, pos)))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::new("expected `,` or `]` in array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(Error::new("expected `,` or `}` in object")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(Error::new(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    skip_ws(b, pos);
    if b.get(*pos) != Some(&b'"') {
        return Err(Error::new("expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::new("truncated \\u escape"))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?,
                            16,
                        )
                        .map_err(|_| Error::new("bad \\u escape"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("bad \\u code point"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(Error::new("bad escape")),
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 character.
                let s = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| Error::new("invalid UTF-8"))?;
                let c = s.chars().next().ok_or_else(|| Error::new("empty"))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
    Err(Error::new("unterminated string"))
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    while *pos < b.len()
        && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos])
        .map_err(|_| Error::new("invalid number"))?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| Error::new(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, null], "b": {"c": "x\ny"}, "d": true}"#).unwrap();
        assert_eq!(v.field("a").unwrap(), &Value::Array(vec![
            Value::Num(1.0),
            Value::Num(2.5),
            Value::Null
        ]));
        assert_eq!(v.field("b").unwrap().field("c").unwrap(), &Value::Str("x\ny".into()));
        assert_eq!(v.field("d").unwrap(), &Value::Bool(true));
    }

    #[test]
    fn writer_produces_valid_nested_json() {
        let mut w = Writer::new(true);
        w.begin_object();
        w.key("xs");
        w.begin_array();
        w.element();
        w.raw("1".into());
        w.element();
        w.raw("2".into());
        w.end_array();
        w.key("name");
        w.string("q\"1\"");
        w.end_object();
        let text = w.finish();
        let v = parse(&text).unwrap();
        assert_eq!(v.field("name").unwrap(), &Value::Str("q\"1\"".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
    }
}
