//! # ce-parallel — deterministic data parallelism for the cardest workspace
//!
//! A dependency-free (std-only) worker pool with *deterministic* chunked
//! parallel primitives over index ranges. Like the other `vendor/` crates it
//! is an offline stand-in: it covers exactly the API surface the workspace
//! needs (a `rayon`-shaped subset) without touching the network.
//!
//! ## Determinism contract
//!
//! Every primitive here partitions work into chunks whose *boundaries and
//! per-element computations are independent of the thread count and of
//! scheduling order*: element `i` of a [`par_map`] is always computed by the
//! same closure call `f(i)`, and each output slot is written exactly once by
//! exactly one task. A pure closure therefore produces bit-identical output
//! at `threads = 1` and `threads = 64` — parallelism changes only *which OS
//! thread* runs a chunk, never *what* is computed. Reductions are left to the
//! caller precisely so no floating-point reassociation can sneak in.
//!
//! ## Nesting
//!
//! Tasks executing on the pool (including the submitting thread while it
//! works off its own chunk) run nested parallel calls *serially*. Outer-level
//! parallelism (e.g. per-fold model training) therefore composes with
//! inner-level parallelism (e.g. row-parallel matmul) without oversubscribing
//! the machine, and without any configuration.
//!
//! ```
//! let squares = ce_parallel::par_map(1000, 1, |i| i * i);
//! assert_eq!(squares[31], 961);
//! ```

use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Thread-count configuration
// ---------------------------------------------------------------------------

/// Global logical thread count; 0 means "use the hardware default".
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Scoped override installed by [`with_threads`]; 0 = no override.
    static LOCAL_THREADS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
    /// True while this thread is executing a pool task — nested parallel
    /// calls then run serially instead of deadlocking or oversubscribing.
    static IN_POOL_TASK: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Number of hardware threads visible to the process.
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("CE_PARALLEL_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(0)
    })
}

/// Sets the global logical thread count. `0` restores the default
/// (`CE_PARALLEL_THREADS` env var if set, else the hardware count).
pub fn set_threads(n: usize) {
    GLOBAL_THREADS.store(n, Ordering::Relaxed);
}

/// The logical thread count parallel primitives will use right now on this
/// thread: 1 inside a pool task, else the innermost [`with_threads`]
/// override, else [`set_threads`], else `CE_PARALLEL_THREADS`, else the
/// hardware count. Always at least 1.
pub fn current_threads() -> usize {
    if IN_POOL_TASK.with(|f| f.get()) {
        return 1;
    }
    let local = LOCAL_THREADS.with(|t| t.get());
    if local != 0 {
        return local;
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global != 0 {
        return global;
    }
    let env = env_threads();
    if env != 0 {
        return env;
    }
    available_threads()
}

/// Runs `f` with the logical thread count pinned to `n` on this thread
/// (restored afterwards, even on panic). `0` means "no override".
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            LOCAL_THREADS.with(|t| t.set(self.0));
        }
    }
    let prev = LOCAL_THREADS.with(|t| t.replace(n));
    let _restore = Restore(prev);
    f()
}

// ---------------------------------------------------------------------------
// The worker pool
// ---------------------------------------------------------------------------

/// A chunk of a parallel call: run `task(index)` and report to the latch.
struct Job {
    /// Type-erased borrow of the caller's closure. Safety: the submitting
    /// call blocks on `latch` until every job completed, so the borrow
    /// outlives all uses despite the `'static` lie.
    task: &'static (dyn Fn(usize) + Sync),
    index: usize,
    latch: Arc<Latch>,
}

/// Counts outstanding jobs of one parallel call; the submitter blocks on it.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

impl Latch {
    fn new(count: usize) -> Arc<Self> {
        Arc::new(Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        })
    }

    fn complete(&self, panicked: bool) {
        if panicked {
            self.panicked.store(true, Ordering::Release);
        }
        let mut remaining = self.remaining.lock().unwrap();
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = self.remaining.lock().unwrap();
        while *remaining > 0 {
            remaining = self.done.wait(remaining).unwrap();
        }
    }
}

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    work_ready: Condvar,
}

impl PoolShared {
    fn push(&self, job: Job) {
        self.queue.lock().unwrap().push_back(job);
        self.work_ready.notify_one();
    }

    fn try_pop(&self) -> Option<Job> {
        self.queue.lock().unwrap().pop_front()
    }
}

fn run_job(job: Job) {
    IN_POOL_TASK.with(|f| f.set(true));
    let outcome = catch_unwind(AssertUnwindSafe(|| (job.task)(job.index)));
    IN_POOL_TASK.with(|f| f.set(false));
    job.latch.complete(outcome.is_err());
}

fn pool() -> &'static PoolShared {
    static POOL: OnceLock<&'static PoolShared> = OnceLock::new();
    POOL.get_or_init(|| {
        let shared: &'static PoolShared = Box::leak(Box::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
        }));
        // One worker per hardware thread beyond the submitter. Workers are
        // spawned once and parked on the condvar between calls; the *logical*
        // thread count only controls how many chunks a call is split into.
        let workers = available_threads().saturating_sub(1).max(1);
        for w in 0..workers {
            std::thread::Builder::new()
                .name(format!("ce-parallel-{w}"))
                .spawn(move || loop {
                    let job = {
                        let mut queue = shared.queue.lock().unwrap();
                        loop {
                            if let Some(job) = queue.pop_front() {
                                break job;
                            }
                            queue = shared.work_ready.wait(queue).unwrap();
                        }
                    };
                    run_job(job);
                })
                .expect("spawn ce-parallel worker");
        }
        shared
    })
}

/// Executes `task(0..chunks)` across the pool, blocking until all complete.
/// The submitting thread runs chunk 0 itself and then helps drain the queue,
/// so a call never waits idle while work is pending.
///
/// # Panics
/// Propagates (as a fresh panic) if any chunk panicked.
fn run_chunked(chunks: usize, task: &(dyn Fn(usize) + Sync)) {
    debug_assert!(chunks >= 2, "serial path should have been taken");
    let latch = Latch::new(chunks - 1);
    // Safety: see `Job::task` — we block on `latch` before returning, so the
    // erased borrow cannot outlive the closure it points to.
    let erased: &'static (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(task) };
    let shared = pool();
    for index in 1..chunks {
        shared.push(Job { task: erased, index, latch: Arc::clone(&latch) });
    }
    // Run our own chunk under the nesting flag so inner calls serialize.
    IN_POOL_TASK.with(|f| f.set(true));
    let own = catch_unwind(AssertUnwindSafe(|| task(0)));
    IN_POOL_TASK.with(|f| f.set(false));
    // Help-first: drain whatever is still queued (ours or another caller's)
    // instead of blocking immediately.
    while let Some(job) = shared.try_pop() {
        run_job(job);
    }
    latch.wait();
    if own.is_err() || latch.panicked.load(Ordering::Acquire) {
        panic!("ce-parallel task panicked");
    }
}

// ---------------------------------------------------------------------------
// Deterministic chunk geometry
// ---------------------------------------------------------------------------

/// Splits `0..n` into at most `pieces` contiguous ranges of near-equal
/// length, each at least `grain` long (except possibly the last). Pure
/// arithmetic — the partition depends only on `(n, pieces, grain)`.
fn partition(n: usize, pieces: usize, grain: usize) -> Vec<Range<usize>> {
    let grain = grain.max(1);
    let max_pieces = n.div_ceil(grain);
    let pieces = pieces.clamp(1, max_pieces.max(1));
    let base = n / pieces;
    let extra = n % pieces;
    let mut ranges = Vec::with_capacity(pieces);
    let mut start = 0;
    for p in 0..pieces {
        let len = base + usize::from(p < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Runs `f` over a deterministic partition of `0..n` into contiguous ranges,
/// one task per range, using up to [`current_threads`] workers. Ranges are
/// disjoint and cover `0..n`; each is at least `grain` long when possible.
pub fn par_for_each_range(n: usize, grain: usize, f: impl Fn(Range<usize>) + Sync) {
    if n == 0 {
        return;
    }
    let ranges = partition(n, current_threads(), grain);
    if ranges.len() <= 1 {
        f(0..n);
        return;
    }
    let task = |chunk: usize| f(ranges[chunk].clone());
    run_chunked(ranges.len(), &task);
}

/// Covariant raw-pointer wrapper asserting cross-thread use is safe because
/// tasks touch disjoint regions.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Deterministic parallel map over `0..n`: returns `vec![f(0), .., f(n-1)]`.
/// Each slot is computed by exactly one task and written exactly once, so a
/// pure `f` yields bit-identical output at any thread count.
pub fn par_map<T: Send>(n: usize, grain: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    if n == 0 {
        return Vec::new();
    }
    if current_threads() <= 1 || n.div_ceil(grain.max(1)) <= 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<std::mem::MaybeUninit<T>> = Vec::with_capacity(n);
    // Safety: every slot is initialized below before `assume_init`; on panic
    // the buffer is leaked (not dropped uninitialized) because the Vec holds
    // MaybeUninit<T>, which never runs T's destructor.
    unsafe { out.set_len(n) };
    let base = SendPtr(out.as_mut_ptr());
    par_for_each_range(n, grain, |range| {
        let base = &base;
        for i in range {
            // Safety: ranges are disjoint, so slot i is written once, here.
            unsafe { base.0.add(i).write(std::mem::MaybeUninit::new(f(i))) };
        }
    });
    // Safety: par_for_each_range covered 0..n, initializing every slot.
    unsafe { std::mem::transmute::<Vec<std::mem::MaybeUninit<T>>, Vec<T>>(out) }
}

/// Deterministic parallel iteration over contiguous chunks of `data`, each
/// exactly `chunk_len` long (the last may be shorter). `f` receives the chunk
/// index and the mutable chunk. Chunk geometry depends only on
/// `(data.len(), chunk_len)` — never on the thread count.
pub fn par_chunks_mut<T: Send>(
    data: &mut [T],
    chunk_len: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n = data.len();
    if n == 0 {
        return;
    }
    let chunks = n.div_ceil(chunk_len);
    if current_threads() <= 1 || chunks <= 1 {
        for (ci, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(ci, chunk);
        }
        return;
    }
    let base = SendPtr(data.as_mut_ptr());
    let task = |ci: usize| {
        let base = &base;
        let start = ci * chunk_len;
        let len = chunk_len.min(n - start);
        // Safety: chunks are disjoint subslices of `data`, one per task.
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.0.add(start), len) };
        f(ci, chunk);
    };
    run_chunked(chunks, &task);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_matches_serial_at_any_thread_count() {
        let expect: Vec<u64> = (0..997u64).map(|i| i * i + 1).collect();
        for threads in [1, 2, 3, 4, 8, 33] {
            let got = with_threads(threads, || par_map(997, 1, |i| (i as u64) * (i as u64) + 1));
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_for_each_range_covers_exactly_once() {
        let hits: Vec<AtomicU64> = (0..500).map(|_| AtomicU64::new(0)).collect();
        with_threads(4, || {
            par_for_each_range(500, 7, |range| {
                for i in range {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_chunks_mut_geometry_is_thread_count_independent() {
        let run = |threads: usize| {
            let mut data = vec![0usize; 103];
            with_threads(threads, || {
                par_chunks_mut(&mut data, 10, |ci, chunk| {
                    for v in chunk.iter_mut() {
                        *v = ci;
                    }
                });
            });
            data
        };
        assert_eq!(run(1), run(4));
        let data = run(4);
        assert_eq!(data[0], 0);
        assert_eq!(data[99], 9);
        assert_eq!(data[102], 10, "last partial chunk gets its own index");
    }

    #[test]
    fn nested_calls_serialize_instead_of_deadlocking() {
        let total: u64 = with_threads(4, || {
            par_map(8, 1, |i| {
                // Inner call runs serially (current_threads() == 1 in-task).
                let inner = par_map(100, 1, |j| (i * 100 + j) as u64);
                assert_eq!(current_threads(), 1);
                inner.iter().sum::<u64>()
            })
            .into_iter()
            .sum()
        });
        assert_eq!(total, (0..800u64).sum());
    }

    #[test]
    fn with_threads_restores_on_exit() {
        set_threads(3);
        assert_eq!(current_threads(), 3);
        with_threads(7, || assert_eq!(current_threads(), 7));
        assert_eq!(current_threads(), 3);
        set_threads(0);
    }

    #[test]
    fn partition_is_balanced_and_exhaustive() {
        let ranges = partition(103, 4, 1);
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges[0], 0..26);
        assert_eq!(ranges.last().unwrap().end, 103);
        let total: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(total, 103);
        // Grain caps the piece count.
        assert_eq!(partition(10, 8, 5).len(), 2);
        assert_eq!(partition(3, 8, 5).len(), 1);
    }

    #[test]
    fn panics_propagate_to_the_submitter() {
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_for_each_range(64, 1, |range| {
                    if range.contains(&40) {
                        panic!("boom");
                    }
                });
            });
        });
        assert!(result.is_err());
        // The pool survives for later calls.
        let sum: usize = with_threads(4, || par_map(100, 1, |i| i)).into_iter().sum();
        assert_eq!(sum, 4950);
    }

    #[test]
    fn empty_and_tiny_inputs_take_the_serial_path() {
        assert!(par_map(0, 1, |i| i).is_empty());
        par_for_each_range(0, 1, |_| panic!("must not run"));
        let mut empty: [u8; 0] = [];
        par_chunks_mut(&mut empty, 4, |_, _| panic!("must not run"));
        assert_eq!(par_map(1, 64, |i| i + 1), vec![1]);
    }
}
