//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access, so the real `rand` cannot be
//! fetched; this vendored stub implements the exact API surface the
//! workspace uses — `StdRng` (xoshiro256** seeded via SplitMix64),
//! `SeedableRng::seed_from_u64`, the `Rng` extension methods (`gen`,
//! `gen_range`, `gen_bool`), and `seq::SliceRandom` (`shuffle`, `choose`).
//! Sequences differ from upstream `rand`, but every consumer in this
//! workspace only relies on seeded determinism and statistical quality,
//! not on upstream's exact streams.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the "standard" distribution (uniform on the type's
/// canonical range; `[0, 1)` for floats).
pub trait StandardDistributed: Sized {
    /// Draws one standard sample.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardDistributed for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl StandardDistributed for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl StandardDistributed for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl StandardDistributed for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}
impl StandardDistributed for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` without noticeable modulo bias
/// (128-bit multiply-shift).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardDistributed>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as StandardDistributed>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A standard-distribution sample (uniform bits; `[0, 1)` for floats).
    fn gen<T: StandardDistributed>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform sample from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability outside [0,1]");
        self.gen::<f64>() < p
    }
}
impl<R: RngCore + ?Sized> Rng for R {}

/// Generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seeded generator: xoshiro256** with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn float_samples_stay_in_range_and_look_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn int_ranges_cover_endpoints() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(3..=4u32);
            assert!(v == 3 || v == 4);
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn shuffle_permutes_and_choose_picks() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<u8> = Vec::new();
        assert!(empty.choose(&mut rng).is_none());
    }
}
