//! Offline stand-in for `serde_json`, backed by the vendored `serde`'s
//! JSON writer/parser. Covers the workspace's usage: [`to_string`],
//! [`to_string_pretty`], [`from_str`], and untyped [`parse`] into [`Value`].

pub use serde::json::{parse, Error, Value};

/// Serializes a value to compact JSON text.
///
/// Infallible for this stub's data model; returns `Result` for
/// call-site compatibility with the real crate.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut w = serde::json::Writer::new(false);
    value.serialize(&mut w);
    Ok(w.finish())
}

/// Serializes a value to pretty-printed JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut w = serde::json::Writer::new(true);
    value.serialize(&mut w);
    Ok(w.finish())
}

/// Deserializes a value from JSON text.
pub fn from_str<T: serde::de::DeserializeOwned>(text: &str) -> Result<T, Error> {
    let value = serde::json::parse(text)?;
    T::deserialize(&value)
}

#[cfg(test)]
mod tests {
    #[test]
    fn round_trips_vec_of_pairs() {
        let data: Vec<(String, f64)> = vec![("a".into(), 1.5), ("b".into(), -2.0)];
        let json = super::to_string(&data).unwrap();
        let back: Vec<(String, f64)> = super::from_str(&json).unwrap();
        assert_eq!(back, data);
        let pretty = super::to_string_pretty(&data).unwrap();
        let back: Vec<(String, f64)> = super::from_str(&pretty).unwrap();
        assert_eq!(back, data);
    }
}
