//! Offline stand-in for `criterion`.
//!
//! Exposes the API surface the workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, `black_box`,
//! `criterion_group!`/`criterion_main!` — but runs each benchmark body a
//! single time and prints the elapsed wall-clock time. That keeps
//! `cargo test`/`cargo bench` fast while still compiling and exercising
//! every bench path; it does no statistical sampling.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark within a group.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered from the benchmark's parameter, as in
    /// `BenchmarkId::from_parameter(n)`.
    pub fn from_parameter<P: Display>(param: P) -> Self {
        BenchmarkId { name: param.to_string() }
    }

    /// An id with an explicit function name and parameter.
    pub fn new<P: Display>(function: &str, param: P) -> Self {
        BenchmarkId { name: format!("{function}/{param}") }
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Runs the routine once and records its wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { elapsed_ns: 0 };
    f(&mut b);
    println!("bench {label}: {} ns/iter (1 sample)", b.elapsed_ns);
}

/// Top-level benchmark registry.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.to_string() }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (ignored: this stub always runs one sample).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (ignored by this stub).
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), &mut f);
        self
    }

    /// Runs a parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.name), &mut |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions under one name, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("square", |b| b.iter(|| black_box(7u64) * 7));
        let mut g = c.benchmark_group("grouped");
        g.sample_size(10);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::from_parameter(42), &42u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_each_bench_once() {
        benches();
    }
}
