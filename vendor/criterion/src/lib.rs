//! Offline stand-in for `criterion`.
//!
//! Exposes the API surface the workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, `black_box`,
//! `criterion_group!`/`criterion_main!` — but runs each benchmark body a
//! single time and prints the elapsed wall-clock time. That keeps
//! `cargo test`/`cargo bench` fast while still compiling and exercising
//! every bench path; it does no statistical sampling.
//!
//! Every sample is also recorded in a process-wide registry
//! ([`samples`], [`record_sample`]) so callers — the benches themselves or
//! the `perf` experiment harness — can export the collected wall times as
//! JSON via [`samples_json`] / [`write_samples_json`] and share one timing
//! path between `cargo bench` and `ce-bench`.

use std::collections::BTreeMap;
use std::fmt::Display;
use std::sync::Mutex;
use std::time::Instant;

pub use std::hint::black_box;

/// Process-wide registry of recorded wall-time samples, label → ns samples.
///
/// A `BTreeMap` keeps JSON export order stable across runs.
static SAMPLES: Mutex<BTreeMap<String, Vec<u128>>> = Mutex::new(BTreeMap::new());

/// Records one wall-time sample (in nanoseconds) under `label`.
///
/// Benches record automatically through [`Bencher::iter`]; other harnesses
/// (e.g. the `perf` experiment) can call this directly to share the registry.
pub fn record_sample(label: &str, elapsed_ns: u128) {
    SAMPLES
        .lock()
        .expect("sample registry poisoned")
        .entry(label.to_string())
        .or_default()
        .push(elapsed_ns);
}

/// Snapshot of all samples recorded so far, label → ns samples.
pub fn samples() -> BTreeMap<String, Vec<u128>> {
    SAMPLES.lock().expect("sample registry poisoned").clone()
}

/// Clears the sample registry (useful between test cases).
pub fn clear_samples() {
    SAMPLES.lock().expect("sample registry poisoned").clear();
}

/// Renders the registry as a JSON object: `{"label": [ns, ...], ...}`.
///
/// Hand-rolled writer so the stub stays dependency-free; labels are escaped
/// for quotes and backslashes, which covers every label the workspace uses.
pub fn samples_json() -> String {
    let snapshot = samples();
    let mut out = String::from("{\n");
    let mut first = true;
    for (label, ns) in &snapshot {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let escaped: String = label
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                _ => vec![c],
            })
            .collect();
        out.push_str(&format!("  \"{escaped}\": ["));
        for (i, v) in ns.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&v.to_string());
        }
        out.push(']');
    }
    out.push_str("\n}\n");
    out
}

/// Writes [`samples_json`] to `path`.
pub fn write_samples_json(path: &str) -> std::io::Result<()> {
    std::fs::write(path, samples_json())
}

/// Identifier for a parameterized benchmark within a group.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered from the benchmark's parameter, as in
    /// `BenchmarkId::from_parameter(n)`.
    pub fn from_parameter<P: Display>(param: P) -> Self {
        BenchmarkId { name: param.to_string() }
    }

    /// An id with an explicit function name and parameter.
    pub fn new<P: Display>(function: &str, param: P) -> Self {
        BenchmarkId { name: format!("{function}/{param}") }
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Runs the routine once and records its wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { elapsed_ns: 0 };
    f(&mut b);
    record_sample(label, b.elapsed_ns);
    println!("bench {label}: {} ns/iter (1 sample)", b.elapsed_ns);
}

/// Top-level benchmark registry.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.to_string() }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (ignored: this stub always runs one sample).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (ignored by this stub).
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), &mut f);
        self
    }

    /// Runs a parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.name), &mut |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions under one name, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            if let Ok(path) = std::env::var("CRITERION_SAMPLES_JSON") {
                if let Err(e) = $crate::write_samples_json(&path) {
                    eprintln!("failed to write {path}: {e}");
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("square", |b| b.iter(|| black_box(7u64) * 7));
        let mut g = c.benchmark_group("grouped");
        g.sample_size(10);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::from_parameter(42), &42u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_records_samples_and_exports_json() {
        clear_samples();
        benches();
        let snapshot = samples();
        assert!(snapshot.contains_key("square"));
        assert!(snapshot.contains_key("grouped/sum"));
        assert!(snapshot.contains_key("grouped/42"));
        assert_eq!(snapshot["square"].len(), 1);

        record_sample("manual \"label\"", 123);
        let json = samples_json();
        assert!(json.contains("\"grouped/sum\": ["));
        assert!(json.contains("\"manual \\\"label\\\"\": [123]"));
        assert!(json.starts_with("{\n") && json.ends_with("\n}\n"));
        clear_samples();
        assert!(samples().is_empty());
    }
}
