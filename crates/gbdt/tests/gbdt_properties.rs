//! Property-based tests of the boosted-tree invariants.

use ce_gbdt::{Gbdt, GbdtConfig, LeafAggregation, RegressionTree, TreeConfig};
use proptest::prelude::*;

fn dataset_strategy() -> impl Strategy<Value = (Vec<Vec<f32>>, Vec<f32>)> {
    prop::collection::vec((-100.0f32..100.0, -100.0f32..100.0), 10..80).prop_map(|pts| {
        let x: Vec<Vec<f32>> = pts.iter().map(|&(a, _)| vec![a]).collect();
        let y: Vec<f32> = pts.iter().map(|&(_, b)| b).collect();
        (x, y)
    })
}

proptest! {
    /// Mean-aggregated tree predictions never leave the target range.
    #[test]
    fn tree_predictions_bounded_by_targets((x, y) in dataset_strategy(), probe in -200.0f32..200.0) {
        let idx: Vec<usize> = (0..x.len()).collect();
        let tree = RegressionTree::fit(
            &x, &y, &y, &idx, TreeConfig::default(), LeafAggregation::Mean,
        );
        let lo = y.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = y.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let p = tree.predict(&[probe]);
        prop_assert!(p >= lo - 1e-3 && p <= hi + 1e-3, "{p} outside [{lo}, {hi}]");
    }

    /// Fitting constant targets returns that constant everywhere.
    #[test]
    fn gbdt_fits_constants_exactly(c in -50.0f32..50.0, probe in -100.0f32..100.0) {
        let x: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32]).collect();
        let y = vec![c; 20];
        let model = Gbdt::fit(&x, &y, &GbdtConfig { n_trees: 3, ..Default::default() });
        prop_assert!((model.predict(&[probe]) - c).abs() < 1e-3);
    }

    /// Training is deterministic in the seed.
    #[test]
    fn gbdt_deterministic_per_seed((x, y) in dataset_strategy(), seed in 0u64..100) {
        let config = GbdtConfig { n_trees: 5, seed, ..Default::default() };
        let a = Gbdt::fit(&x, &y, &config).predict(&[0.0]);
        let b = Gbdt::fit(&x, &y, &config).predict(&[0.0]);
        prop_assert_eq!(a, b);
    }

    /// Monotone data yields (weakly) monotone predictions on the grid of
    /// training points — trees can't invert an order they were fit on.
    #[test]
    fn monotone_fit_preserves_order_on_training_points(n in 10usize..40) {
        let x: Vec<Vec<f32>> = (0..n).map(|i| vec![i as f32]).collect();
        let y: Vec<f32> = (0..n).map(|i| (i * i) as f32).collect();
        let model = Gbdt::fit(
            &x,
            &y,
            &GbdtConfig { n_trees: 60, learning_rate: 0.3, subsample: 1.0, ..Default::default() },
        );
        let preds: Vec<f32> = x.iter().map(|r| model.predict(r)).collect();
        let violations = preds.windows(2).filter(|w| w[1] < w[0] - 1e-3).count();
        prop_assert!(
            violations <= n / 10,
            "{violations} order violations in {n} points"
        );
    }
}
