//! Gradient boosting over regression trees.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::tree::{LeafAggregation, RegressionTree, TreeConfig};

/// Loss functions supported by the booster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BoostLoss {
    /// Least squares: trees fit residuals, leaves take means.
    Squared,
    /// Least absolute deviation: trees fit sign(residual), leaves take the
    /// median residual.
    Absolute,
    /// Pinball loss for the given quantile: leaves take the tau-quantile of
    /// residuals, yielding a quantile regressor.
    Quantile(f32),
}

/// Booster hyper-parameters.
#[derive(Debug, Clone)]
pub struct GbdtConfig {
    /// Number of boosting rounds.
    pub n_trees: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f32,
    /// Fraction of rows sampled (without replacement) per round.
    pub subsample: f32,
    /// Per-tree growth settings.
    pub tree: TreeConfig,
    /// Loss to optimize.
    pub loss: BoostLoss,
    /// Seed for row subsampling.
    pub seed: u64,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        GbdtConfig {
            n_trees: 100,
            learning_rate: 0.1,
            subsample: 0.8,
            tree: TreeConfig::default(),
            loss: BoostLoss::Squared,
            seed: 0,
        }
    }
}

/// A trained gradient-boosted ensemble: `f(x) = base + lr * Σ tree_i(x)`.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Gbdt {
    base: f32,
    learning_rate: f32,
    trees: Vec<RegressionTree>,
}

impl Gbdt {
    /// Fits the booster on `(x, y)`.
    ///
    /// # Panics
    /// Panics on empty data, ragged rows, or non-finite targets.
    pub fn fit(x: &[Vec<f32>], y: &[f32], config: &GbdtConfig) -> Self {
        assert!(!x.is_empty(), "cannot fit GBDT on zero rows");
        assert_eq!(x.len(), y.len(), "feature/target count mismatch");
        assert!(y.iter().all(|v| v.is_finite()), "non-finite target");
        assert!(
            config.subsample > 0.0 && config.subsample <= 1.0,
            "subsample must be in (0, 1]"
        );

        let n = x.len();
        let base = initial_prediction(y, config.loss);
        let mut predictions = vec![base; n];
        let mut trees = Vec::with_capacity(config.n_trees);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut all: Vec<usize> = (0..n).collect();
        let sample_size = ((n as f32 * config.subsample).round() as usize).clamp(1, n);

        let (aggregation, needs_residual_leaves) = match config.loss {
            BoostLoss::Squared => (LeafAggregation::Mean, false),
            BoostLoss::Absolute => (LeafAggregation::Median, true),
            BoostLoss::Quantile(tau) => {
                assert!(tau > 0.0 && tau < 1.0, "quantile tau must be in (0,1)");
                (LeafAggregation::Quantile(tau), true)
            }
        };

        let mut gradients = vec![0.0f32; n];
        let mut residuals = vec![0.0f32; n];
        for _ in 0..config.n_trees {
            for i in 0..n {
                residuals[i] = y[i] - predictions[i];
                gradients[i] = match config.loss {
                    BoostLoss::Squared => residuals[i],
                    BoostLoss::Absolute => residuals[i].signum(),
                    BoostLoss::Quantile(tau) => {
                        if residuals[i] > 0.0 {
                            tau
                        } else {
                            tau - 1.0
                        }
                    }
                };
            }
            all.shuffle(&mut rng);
            let sample = &all[..sample_size];
            // Trees split on the pseudo-gradient; leaf values line-search on
            // the true residual (mean/median/quantile per the loss).
            let leaf_targets: &[f32] =
                if needs_residual_leaves { &residuals } else { &gradients };
            let tree = RegressionTree::fit(
                x,
                &gradients,
                leaf_targets,
                sample,
                config.tree,
                aggregation,
            );
            for (i, row) in x.iter().enumerate() {
                predictions[i] += config.learning_rate * tree.predict(row);
            }
            trees.push(tree);
        }
        Gbdt { base, learning_rate: config.learning_rate, trees }
    }

    /// Predicts the target for one feature vector.
    pub fn predict(&self, features: &[f32]) -> f32 {
        let sum: f32 = self.trees.iter().map(|t| t.predict(features)).sum();
        self.base + self.learning_rate * sum
    }

    /// Predicts a batch of rows.
    pub fn predict_batch(&self, x: &[Vec<f32>]) -> Vec<f32> {
        x.iter().map(|r| self.predict(r)).collect()
    }

    /// Number of trees in the ensemble.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

fn initial_prediction(y: &[f32], loss: BoostLoss) -> f32 {
    let mut sorted: Vec<f32> = y.to_vec();
    match loss {
        BoostLoss::Squared => y.iter().sum::<f32>() / y.len() as f32,
        BoostLoss::Absolute => {
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN target"));
            sorted[(sorted.len() - 1) / 2]
        }
        BoostLoss::Quantile(tau) => {
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN target"));
            let idx = ((sorted.len() as f32 - 1.0) * tau).round() as usize;
            sorted[idx.min(sorted.len() - 1)]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine_data(n: usize) -> (Vec<Vec<f32>>, Vec<f32>) {
        let x: Vec<Vec<f32>> = (0..n).map(|i| vec![i as f32 / n as f32 * 6.0]).collect();
        let y: Vec<f32> = x.iter().map(|r| r[0].sin()).collect();
        (x, y)
    }

    #[test]
    fn boosting_fits_a_sine_wave() {
        let (x, y) = sine_data(200);
        let config = GbdtConfig {
            n_trees: 150,
            learning_rate: 0.2,
            subsample: 1.0,
            ..Default::default()
        };
        let model = Gbdt::fit(&x, &y, &config);
        let mse: f32 = x
            .iter()
            .zip(&y)
            .map(|(r, &t)| (model.predict(r) - t).powi(2))
            .sum::<f32>()
            / x.len() as f32;
        assert!(mse < 0.01, "mse {mse}");
    }

    #[test]
    fn more_trees_reduce_training_error() {
        let (x, y) = sine_data(100);
        let err = |n_trees: usize| {
            let config = GbdtConfig { n_trees, subsample: 1.0, ..Default::default() };
            let model = Gbdt::fit(&x, &y, &config);
            x.iter()
                .zip(&y)
                .map(|(r, &t)| (model.predict(r) - t).powi(2))
                .sum::<f32>()
        };
        assert!(err(50) < err(5));
    }

    #[test]
    fn quantile_booster_brackets_the_data() {
        // Heteroscedastic noise: y = x + U(0, x). The 0.95 quantile model
        // should sit above ~90% of points, the 0.05 model below most.
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(3);
        let x: Vec<Vec<f32>> =
            (0..400).map(|_| vec![rng.gen_range(0.5..2.0f32)]).collect();
        let y: Vec<f32> =
            x.iter().map(|r| r[0] + rng.gen_range(0.0..r[0])).collect();
        let hi_cfg = GbdtConfig {
            loss: BoostLoss::Quantile(0.95),
            n_trees: 80,
            ..Default::default()
        };
        let lo_cfg = GbdtConfig {
            loss: BoostLoss::Quantile(0.05),
            n_trees: 80,
            ..Default::default()
        };
        let hi = Gbdt::fit(&x, &y, &hi_cfg);
        let lo = Gbdt::fit(&x, &y, &lo_cfg);
        let above =
            x.iter().zip(&y).filter(|(r, &t)| hi.predict(r) >= t).count() as f32
                / x.len() as f32;
        let below =
            x.iter().zip(&y).filter(|(r, &t)| lo.predict(r) <= t).count() as f32
                / x.len() as f32;
        assert!(above > 0.85, "upper quantile covers only {above}");
        assert!(below > 0.85, "lower quantile covers only {below}");
        // And the upper model sits above the lower one.
        let mean_gap: f32 = x
            .iter()
            .map(|r| hi.predict(r) - lo.predict(r))
            .sum::<f32>()
            / x.len() as f32;
        assert!(mean_gap > 0.0);
    }

    #[test]
    fn absolute_loss_resists_outliers() {
        let mut x: Vec<Vec<f32>> = (0..50).map(|_| vec![0.0]).collect();
        let mut y = vec![1.0f32; 50];
        // Five wild outliers.
        for i in 0..5 {
            x.push(vec![0.0]);
            y.push(1000.0 + i as f32);
        }
        let config = GbdtConfig {
            loss: BoostLoss::Absolute,
            n_trees: 20,
            subsample: 1.0,
            ..Default::default()
        };
        let model = Gbdt::fit(&x, &y, &config);
        let p = model.predict(&[0.0]);
        assert!(p < 50.0, "absolute-loss prediction dragged to {p}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = sine_data(60);
        let config = GbdtConfig { n_trees: 10, seed: 5, ..Default::default() };
        let a = Gbdt::fit(&x, &y, &config).predict(&[1.0]);
        let b = Gbdt::fit(&x, &y, &config).predict(&[1.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn subsampling_still_learns() {
        let (x, y) = sine_data(200);
        let config = GbdtConfig {
            n_trees: 150,
            learning_rate: 0.2,
            subsample: 0.5,
            ..Default::default()
        };
        let model = Gbdt::fit(&x, &y, &config);
        let mse: f32 = x
            .iter()
            .zip(&y)
            .map(|(r, &t)| (model.predict(r) - t).powi(2))
            .sum::<f32>()
            / x.len() as f32;
        assert!(mse < 0.05, "mse {mse}");
    }

    #[test]
    #[should_panic(expected = "zero rows")]
    fn rejects_empty_data() {
        Gbdt::fit(&[], &[], &GbdtConfig::default());
    }
}
