//! Single regression tree with exact greedy splits.

/// Hyper-parameters for growing one regression tree.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum depth (root = depth 0). Depth 0 means a single leaf.
    pub max_depth: usize,
    /// Minimum number of samples a leaf must hold.
    pub min_samples_leaf: usize,
    /// Minimum SSE reduction required to accept a split.
    pub min_gain: f32,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig { max_depth: 4, min_samples_leaf: 5, min_gain: 1e-7 }
    }
}

/// How a leaf aggregates the targets that fall into it.
///
/// Gradient boosting with non-squared losses fits trees on pseudo-residuals
/// but sets leaf values by per-leaf line search; for absolute/pinball losses
/// that line search is a median/quantile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LeafAggregation {
    /// Mean of leaf targets (squared loss).
    Mean,
    /// Median of leaf targets (absolute loss).
    Median,
    /// `tau`-quantile of leaf targets (pinball loss).
    Quantile(f32),
}

impl LeafAggregation {
    fn aggregate(self, values: &mut [f32]) -> f32 {
        if values.is_empty() {
            return 0.0;
        }
        match self {
            LeafAggregation::Mean => {
                values.iter().sum::<f32>() / values.len() as f32
            }
            LeafAggregation::Median => quantile_in_place(values, 0.5),
            LeafAggregation::Quantile(tau) => quantile_in_place(values, tau),
        }
    }
}

fn quantile_in_place(values: &mut [f32], tau: f32) -> f32 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("NaN target in tree leaf"));
    let idx = ((values.len() as f32 - 1.0) * tau).round() as usize;
    values[idx.min(values.len() - 1)]
}

#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
enum Node {
    Leaf {
        value: f32,
    },
    Split {
        feature: usize,
        threshold: f32,
        left: usize,
        right: usize,
    },
}

/// A trained regression tree. Prediction routes a feature vector to a leaf:
/// `x[feature] <= threshold` goes left.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    n_features: usize,
}

struct Builder<'a> {
    x: &'a [Vec<f32>],
    targets: &'a [f32],   // what splits are scored on (pseudo-residuals)
    leaf_targets: &'a [f32], // what leaf values aggregate (true residuals)
    config: TreeConfig,
    aggregation: LeafAggregation,
    nodes: Vec<Node>,
}

impl RegressionTree {
    /// Fits a tree on rows `indices` of `x`.
    ///
    /// Splits minimize SSE of `targets`; leaf values aggregate `leaf_targets`
    /// with `aggregation` (pass the same slice twice for plain squared-loss
    /// regression).
    ///
    /// # Panics
    /// Panics if `indices` is empty or feature rows are ragged.
    pub fn fit(
        x: &[Vec<f32>],
        targets: &[f32],
        leaf_targets: &[f32],
        indices: &[usize],
        config: TreeConfig,
        aggregation: LeafAggregation,
    ) -> Self {
        assert!(!indices.is_empty(), "cannot fit a tree on zero rows");
        assert_eq!(x.len(), targets.len(), "feature/target count mismatch");
        assert_eq!(x.len(), leaf_targets.len(), "feature/leaf-target count mismatch");
        let n_features = x[0].len();
        assert!(x.iter().all(|r| r.len() == n_features), "ragged feature rows");
        let mut builder =
            Builder { x, targets, leaf_targets, config, aggregation, nodes: Vec::new() };
        let mut idx = indices.to_vec();
        builder.build(&mut idx, 0);
        RegressionTree { nodes: builder.nodes, n_features }
    }

    /// Predicts the leaf value for one feature vector.
    ///
    /// # Panics
    /// Panics if `features.len()` differs from the training width.
    pub fn predict(&self, features: &[f32]) -> f32 {
        assert_eq!(features.len(), self.n_features, "feature width mismatch");
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value } => return *value,
                Node::Split { feature, threshold, left, right } => {
                    node = if features[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Number of nodes (splits + leaves), for tests and diagnostics.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Tree depth (0 for a single leaf).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        depth_of(&self.nodes, 0)
    }
}

struct BestSplit {
    feature: usize,
    threshold: f32,
    gain: f32,
}

impl Builder<'_> {
    /// Recursively builds the subtree over `indices`, returning its node id.
    fn build(&mut self, indices: &mut [usize], depth: usize) -> usize {
        if depth >= self.config.max_depth
            || indices.len() < 2 * self.config.min_samples_leaf
        {
            return self.push_leaf(indices);
        }
        match self.best_split(indices) {
            Some(split) if split.gain > self.config.min_gain => {
                // Partition indices in place around the split.
                let pivot = itertools_partition(indices, |&i| {
                    self.x[i][split.feature] <= split.threshold
                });
                if pivot < self.config.min_samples_leaf
                    || indices.len() - pivot < self.config.min_samples_leaf
                {
                    return self.push_leaf(indices);
                }
                let id = self.nodes.len();
                self.nodes.push(Node::Leaf { value: 0.0 }); // placeholder
                let (left_idx, right_idx) = indices.split_at_mut(pivot);
                let left = self.build(left_idx, depth + 1);
                let right = self.build(right_idx, depth + 1);
                self.nodes[id] = Node::Split {
                    feature: split.feature,
                    threshold: split.threshold,
                    left,
                    right,
                };
                id
            }
            _ => self.push_leaf(indices),
        }
    }

    fn push_leaf(&mut self, indices: &[usize]) -> usize {
        let mut values: Vec<f32> =
            indices.iter().map(|&i| self.leaf_targets[i]).collect();
        let value = self.aggregation.aggregate(&mut values);
        self.nodes.push(Node::Leaf { value });
        self.nodes.len() - 1
    }

    /// Exact greedy search: for every feature, sort the node's rows by that
    /// feature and scan split points with prefix sums of the targets.
    fn best_split(&self, indices: &[usize]) -> Option<BestSplit> {
        let n = indices.len();
        let total_sum: f64 = indices.iter().map(|&i| self.targets[i] as f64).sum();
        let total_sq: f64 =
            indices.iter().map(|&i| (self.targets[i] as f64).powi(2)).sum();
        let parent_sse = total_sq - total_sum * total_sum / n as f64;

        let n_features = self.x[indices[0]].len();
        let mut best: Option<BestSplit> = None;
        let mut sorted: Vec<(f32, f32)> = Vec::with_capacity(n);
        for f in 0..n_features {
            sorted.clear();
            sorted.extend(indices.iter().map(|&i| (self.x[i][f], self.targets[i])));
            sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN feature value"));
            if sorted[0].0 == sorted[n - 1].0 {
                continue; // constant feature in this node
            }
            let mut left_sum = 0.0f64;
            let mut left_sq = 0.0f64;
            for k in 0..n - 1 {
                let (v, t) = sorted[k];
                left_sum += t as f64;
                left_sq += (t as f64) * (t as f64);
                // Only split between distinct feature values.
                if v == sorted[k + 1].0 {
                    continue;
                }
                let nl = (k + 1) as f64;
                let nr = (n - k - 1) as f64;
                if (k + 1) < self.config.min_samples_leaf
                    || (n - k - 1) < self.config.min_samples_leaf
                {
                    continue;
                }
                let right_sum = total_sum - left_sum;
                let right_sq = total_sq - left_sq;
                let sse_left = left_sq - left_sum * left_sum / nl;
                let sse_right = right_sq - right_sum * right_sum / nr;
                let gain = (parent_sse - sse_left - sse_right) as f32;
                if best.as_ref().is_none_or(|b| gain > b.gain) {
                    // Midpoint threshold is robust to new values at inference.
                    best = Some(BestSplit {
                        feature: f,
                        threshold: 0.5 * (v + sorted[k + 1].0),
                        gain,
                    });
                }
            }
        }
        best
    }
}

/// Stable-order in-place partition; returns the number of elements satisfying
/// the predicate (they end up first).
fn itertools_partition<T: Copy>(slice: &mut [T], pred: impl Fn(&T) -> bool) -> usize {
    let mut kept: Vec<T> = Vec::with_capacity(slice.len());
    let mut rest: Vec<T> = Vec::new();
    for &v in slice.iter() {
        if pred(&v) {
            kept.push(v);
        } else {
            rest.push(v);
        }
    }
    let pivot = kept.len();
    slice[..pivot].copy_from_slice(&kept);
    slice[pivot..].copy_from_slice(&rest);
    pivot
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_indices(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    #[test]
    fn single_leaf_predicts_mean() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0]];
        let y = [3.0, 6.0, 9.0];
        let config = TreeConfig { max_depth: 0, ..Default::default() };
        let tree =
            RegressionTree::fit(&x, &y, &y, &all_indices(3), config, LeafAggregation::Mean);
        assert_eq!(tree.node_count(), 1);
        assert!((tree.predict(&[5.0]) - 6.0).abs() < 1e-6);
    }

    #[test]
    fn splits_a_step_function_exactly() {
        // y = 0 for x < 0.5, y = 10 for x >= 0.5 — one split suffices.
        let x: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32 / 20.0]).collect();
        let y: Vec<f32> = x.iter().map(|v| if v[0] < 0.5 { 0.0 } else { 10.0 }).collect();
        let config = TreeConfig { max_depth: 3, min_samples_leaf: 1, min_gain: 1e-7 };
        let tree = RegressionTree::fit(
            &x,
            &y,
            &y,
            &all_indices(20),
            config,
            LeafAggregation::Mean,
        );
        assert!((tree.predict(&[0.1]) - 0.0).abs() < 1e-6);
        assert!((tree.predict(&[0.9]) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn respects_max_depth() {
        let x: Vec<Vec<f32>> = (0..64).map(|i| vec![i as f32]).collect();
        let y: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let config = TreeConfig { max_depth: 2, min_samples_leaf: 1, min_gain: 1e-9 };
        let tree = RegressionTree::fit(
            &x,
            &y,
            &y,
            &all_indices(64),
            config,
            LeafAggregation::Mean,
        );
        assert!(tree.depth() <= 2);
    }

    #[test]
    fn respects_min_samples_leaf() {
        let x: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32]).collect();
        let y: Vec<f32> = (0..10).map(|i| if i == 0 { 100.0 } else { 0.0 }).collect();
        let config = TreeConfig { max_depth: 8, min_samples_leaf: 3, min_gain: 1e-9 };
        let tree = RegressionTree::fit(
            &x,
            &y,
            &y,
            &all_indices(10),
            config,
            LeafAggregation::Mean,
        );
        // The outlier row cannot be isolated into a leaf smaller than 3.
        let p = tree.predict(&[0.0]);
        assert!(p < 100.0, "leaf isolated a single outlier: {p}");
    }

    #[test]
    fn median_aggregation_is_robust_to_outlier() {
        let x: Vec<Vec<f32>> = (0..9).map(|_| vec![0.0]).collect();
        let mut y = vec![1.0f32; 9];
        y[0] = 1000.0;
        let config = TreeConfig { max_depth: 0, ..Default::default() };
        let tree = RegressionTree::fit(
            &x,
            &y,
            &y,
            &all_indices(9),
            config,
            LeafAggregation::Median,
        );
        assert!((tree.predict(&[0.0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn quantile_aggregation_targets_upper_tail() {
        let x: Vec<Vec<f32>> = (0..101).map(|_| vec![0.0]).collect();
        let y: Vec<f32> = (0..101).map(|i| i as f32).collect();
        let config = TreeConfig { max_depth: 0, ..Default::default() };
        let tree = RegressionTree::fit(
            &x,
            &y,
            &y,
            &all_indices(101),
            config,
            LeafAggregation::Quantile(0.9),
        );
        assert!((tree.predict(&[0.0]) - 90.0).abs() <= 1.0);
    }

    #[test]
    fn multivariate_split_picks_informative_feature() {
        // Feature 1 is pure noise; feature 0 determines the target.
        let x: Vec<Vec<f32>> = (0..40)
            .map(|i| vec![(i % 2) as f32, (i % 7) as f32])
            .collect();
        let y: Vec<f32> = x.iter().map(|r| r[0] * 5.0).collect();
        let config = TreeConfig { max_depth: 1, min_samples_leaf: 1, min_gain: 1e-9 };
        let tree = RegressionTree::fit(
            &x,
            &y,
            &y,
            &all_indices(40),
            config,
            LeafAggregation::Mean,
        );
        assert!((tree.predict(&[0.0, 3.0]) - 0.0).abs() < 1e-5);
        assert!((tree.predict(&[1.0, 3.0]) - 5.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "zero rows")]
    fn rejects_empty_index_set() {
        let x = vec![vec![0.0]];
        let y = [0.0];
        RegressionTree::fit(
            &x,
            &y,
            &y,
            &[],
            TreeConfig::default(),
            LeafAggregation::Mean,
        );
    }
}
