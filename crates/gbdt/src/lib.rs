//! # ce-gbdt — gradient boosted regression trees
//!
//! A from-scratch GBDT used where the paper uses xgboost: the locally
//! weighted conformal method (paper §III-E) needs a lightweight model
//! `ĝ(X) ≈ E[|y − f̂(X)|]` of per-query difficulty, and quantile-loss
//! boosting doubles as an extra quantile-regression baseline for CQR
//! ablations.
//!
//! ```
//! use ce_gbdt::{Gbdt, GbdtConfig};
//!
//! let x: Vec<Vec<f32>> = (0..50).map(|i| vec![i as f32]).collect();
//! let y: Vec<f32> = x.iter().map(|r| r[0] * 2.0).collect();
//! let model = Gbdt::fit(&x, &y, &GbdtConfig::default());
//! assert!((model.predict(&[25.0]) - 50.0).abs() < 5.0);
//! ```

#![warn(missing_docs)]

mod boost;
mod tree;

pub use boost::{BoostLoss, Gbdt, GbdtConfig};
pub use tree::{LeafAggregation, RegressionTree, TreeConfig};
