//! Localized conformal prediction (paper §V-D "Promising approaches",
//! after Guan [15] and Foygel Barber et al. [10]).
//!
//! Instead of one global threshold, the interval for a query is calibrated
//! from the scores of its *nearest* calibration queries: a query that looks
//! like a well-predicted region of the workload gets a tight interval, one
//! that lands in a rough region gets a wide one. This trades the clean
//! marginal guarantee for locality; a conservative rank inflation keeps
//! empirical coverage near nominal.

use crate::error::{check_alpha, check_lengths, CardEstError};
use crate::interval::PredictionInterval;
use crate::regressor::Regressor;
use crate::score::ScoreFunction;

/// Localized conformal predictor: k-nearest-neighbour calibration.
#[derive(Debug, Clone)]
pub struct LocalizedConformal<M, S> {
    model: M,
    score: S,
    calib_x: Vec<Vec<f32>>,
    calib_scores: Vec<f64>,
    k: usize,
    alpha: f64,
}

impl<M: Regressor, S: ScoreFunction> LocalizedConformal<M, S> {
    /// Stores the calibration set for neighbourhood lookups.
    ///
    /// `k` is the neighbourhood size; the paper-cited heuristics use
    /// 50–200. Larger `k` converges to split conformal.
    ///
    /// # Panics
    /// Panics on an empty calibration set, `k == 0`, mismatched lengths, or
    /// `alpha` outside `(0, 1)`.
    pub fn calibrate(
        model: M,
        score: S,
        calib_x: &[Vec<f32>],
        calib_y: &[f64],
        k: usize,
        alpha: f64,
    ) -> Self {
        assert_eq!(calib_x.len(), calib_y.len(), "calibration set length mismatch");
        assert!(!calib_x.is_empty(), "empty calibration set");
        assert!(k > 0, "neighbourhood size must be positive");
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
        let calib_scores: Vec<f64> = calib_x
            .iter()
            .zip(calib_y)
            .map(|(x, &y)| score.score(y, model.predict(x)))
            .collect();
        LocalizedConformal {
            model,
            score,
            calib_x: calib_x.to_vec(),
            calib_scores,
            k: k.min(calib_x.len()),
            alpha,
        }
    }

    /// Non-panicking [`LocalizedConformal::calibrate`]: an empty calibration
    /// set is valid and serves infinite intervals until real neighbours
    /// exist; shape/parameter problems become errors.
    pub fn try_calibrate(
        model: M,
        score: S,
        calib_x: &[Vec<f32>],
        calib_y: &[f64],
        k: usize,
        alpha: f64,
    ) -> Result<Self, CardEstError> {
        check_lengths(calib_x.len(), calib_y.len())?;
        check_alpha(alpha)?;
        if k == 0 {
            return Err(CardEstError::InvalidParameter("neighbourhood size must be positive"));
        }
        let calib_scores: Vec<f64> = calib_x
            .iter()
            .zip(calib_y)
            .map(|(x, &y)| score.score(y, model.predict(x)))
            .collect();
        Ok(LocalizedConformal {
            model,
            score,
            calib_x: calib_x.to_vec(),
            calib_scores,
            k: k.min(calib_x.len().max(1)),
            alpha,
        })
    }

    /// Squared L2 distance between feature vectors.
    fn dist2(a: &[f32], b: &[f32]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| {
                let d = (x - y) as f64;
                d * d
            })
            .sum()
    }

    /// The local threshold: conformal quantile over the `k` nearest
    /// calibration scores.
    pub fn local_delta(&self, features: &[f32]) -> f64 {
        let mut dists: Vec<(f64, f64)> = self
            .calib_x
            .iter()
            .zip(&self.calib_scores)
            .map(|(x, &s)| (Self::dist2(features, x), s))
            .collect();
        if dists.is_empty() {
            // No neighbours yet (try_calibrate with an empty set): serve the
            // conservative infinite threshold instead of indexing.
            return f64::INFINITY;
        }
        // Partial selection of the k nearest; total_cmp sends a NaN distance
        // (non-finite query features) to the far end instead of panicking,
        // so such a query just calibrates on an arbitrary neighbourhood.
        let k = self.k.min(dists.len());
        dists.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
        let neighbour_scores: Vec<f64> =
            dists[..k].iter().map(|&(_, s)| s).collect();
        crate::quantile::conformal_quantile(&neighbour_scores, self.alpha)
    }

    /// The wrapped model's point estimate.
    pub fn predict(&self, features: &[f32]) -> f64 {
        self.model.predict(features)
    }

    /// The locally calibrated prediction interval.
    pub fn interval(&self, features: &[f32]) -> PredictionInterval {
        let y_hat = self.model.predict(features);
        let (lo, hi) = self.score.interval(y_hat, self.local_delta(features));
        PredictionInterval::new(lo, hi)
    }

    /// Like [`LocalizedConformal::interval`], but a non-finite model
    /// prediction is reported as [`CardEstError::NonFiniteScore`].
    pub fn try_interval(&self, features: &[f32]) -> Result<PredictionInterval, CardEstError> {
        let y_hat = self.model.predict(features);
        if !y_hat.is_finite() {
            return Err(CardEstError::NonFiniteScore {
                value: y_hat,
                context: "model prediction",
            });
        }
        let (lo, hi) = self.score.interval(y_hat, self.local_delta(features));
        Ok(PredictionInterval::new(lo, hi))
    }

    /// Neighbourhood size in use.
    pub fn k(&self) -> usize {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::AbsoluteResidual;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Piecewise noise: x < 0.5 is easy (noise 0.01), x >= 0.5 hard (0.5).
    fn piecewise(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f32>> =
            (0..n).map(|_| vec![rng.gen_range(0.0..1.0f32)]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|f| {
                let noise = if f[0] < 0.5 { 0.01 } else { 0.5 };
                f[0] as f64 + rng.gen_range(-noise..noise)
            })
            .collect();
        (x, y)
    }

    #[test]
    fn local_intervals_adapt_to_regional_difficulty() {
        let (cx, cy) = piecewise(1000, 1);
        let model = |f: &[f32]| f[0] as f64;
        let lcp =
            LocalizedConformal::calibrate(model, AbsoluteResidual, &cx, &cy, 80, 0.1);
        let easy = lcp.interval(&[0.2]);
        let hard = lcp.interval(&[0.8]);
        assert!(
            hard.width() > 5.0 * easy.width(),
            "hard {} vs easy {}",
            hard.width(),
            easy.width()
        );
    }

    #[test]
    fn covers_each_region_near_nominal() {
        let (cx, cy) = piecewise(1500, 2);
        let (tx, ty) = piecewise(1500, 3);
        let model = |f: &[f32]| f[0] as f64;
        let lcp =
            LocalizedConformal::calibrate(model, AbsoluteResidual, &cx, &cy, 100, 0.1);
        let mut cover = [0usize; 2];
        let mut count = [0usize; 2];
        for (f, &y) in tx.iter().zip(&ty) {
            let region = usize::from(f[0] >= 0.5);
            count[region] += 1;
            cover[region] += usize::from(lcp.interval(f).contains(y));
        }
        for r in 0..2 {
            let rate = cover[r] as f64 / count[r] as f64;
            assert!(rate >= 0.85, "region {r} coverage {rate}");
        }
    }

    #[test]
    fn k_equal_to_n_recovers_split_conformal() {
        use crate::split::SplitConformal;
        let (cx, cy) = piecewise(400, 4);
        let model = |f: &[f32]| f[0] as f64;
        let lcp = LocalizedConformal::calibrate(
            model,
            AbsoluteResidual,
            &cx,
            &cy,
            cx.len(),
            0.1,
        );
        let scp = SplitConformal::calibrate(model, AbsoluteResidual, &cx, &cy, 0.1);
        let probe = [0.3f32];
        assert!((lcp.local_delta(&probe) - scp.delta()).abs() < 1e-12);
    }

    #[test]
    fn tighter_than_split_conformal_on_easy_region() {
        use crate::split::SplitConformal;
        let (cx, cy) = piecewise(1200, 5);
        let model = |f: &[f32]| f[0] as f64;
        let lcp =
            LocalizedConformal::calibrate(model, AbsoluteResidual, &cx, &cy, 80, 0.1);
        let scp = SplitConformal::calibrate(model, AbsoluteResidual, &cx, &cy, 0.1);
        assert!(lcp.interval(&[0.1]).width() < 0.3 * scp.interval(&[0.1]).width());
    }

    #[test]
    fn oversized_k_is_clamped() {
        let (cx, cy) = piecewise(50, 6);
        let model = |f: &[f32]| f[0] as f64;
        let lcp = LocalizedConformal::calibrate(
            model,
            AbsoluteResidual,
            &cx,
            &cy,
            10_000,
            0.1,
        );
        assert_eq!(lcp.k(), 50);
    }

    #[test]
    fn try_calibrate_handles_empty_and_adversarial_queries() {
        use crate::error::CardEstError;
        let model = |f: &[f32]| f[0] as f64;
        let lcp = LocalizedConformal::try_calibrate(model, AbsoluteResidual, &[], &[], 5, 0.1)
            .expect("empty calibration degrades, not errors");
        assert!(lcp.local_delta(&[0.3]).is_infinite());
        assert!(lcp.interval(&[0.3]).contains(1e12));
        assert!(matches!(
            LocalizedConformal::try_calibrate(model, AbsoluteResidual, &[], &[], 0, 0.1),
            Err(CardEstError::InvalidParameter(_))
        ));
        // NaN query features: distances go NaN, which total_cmp tolerates.
        let (cx, cy) = piecewise(100, 7);
        let lcp =
            LocalizedConformal::calibrate(model, AbsoluteResidual, &cx, &cy, 10, 0.1);
        let d = lcp.local_delta(&[f32::NAN]);
        assert!(!d.is_nan(), "local delta must never be NaN");
        assert!(matches!(
            lcp.try_interval(&[f32::NAN]),
            Err(CardEstError::NonFiniteScore { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "neighbourhood size must be positive")]
    fn rejects_zero_k() {
        let model = |_: &[f32]| 0.0;
        LocalizedConformal::calibrate(
            model,
            AbsoluteResidual,
            &[vec![0.0]],
            &[0.0],
            0,
            0.1,
        );
    }
}
