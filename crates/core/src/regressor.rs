//! Black-box model abstractions.
//!
//! The central design constraint from the paper's desiderata: PI methods must
//! *wrap* arbitrary learned models without internal changes. [`Regressor`] is
//! that wrapping surface — anything mapping a feature vector to a scalar
//! estimate qualifies, including closures, which keeps the core crate free of
//! model dependencies.

/// A trained black-box point estimator `f̂ : features -> target`.
pub trait Regressor {
    /// Point estimate for one feature vector.
    fn predict(&self, features: &[f32]) -> f64;

    /// Batch convenience.
    fn predict_batch(&self, features: &[Vec<f32>]) -> Vec<f64> {
        features.iter().map(|f| self.predict(f)).collect()
    }
}

impl<F: Fn(&[f32]) -> f64> Regressor for F {
    fn predict(&self, features: &[f32]) -> f64 {
        self(features)
    }
}

/// A training procedure producing [`Regressor`]s — what the resampling
/// methods (Jackknife+, CV+) need, since they retrain on data subsets.
pub trait FitRegressor {
    /// The trained model type.
    type Model: Regressor;

    /// Trains a model on the labeled set `(x, y)` with a seed controlling
    /// any internal randomness (init, shuffling).
    fn fit(&self, x: &[Vec<f32>], y: &[f64], seed: u64) -> Self::Model;
}

impl<M: Regressor, F: Fn(&[Vec<f32>], &[f64], u64) -> M> FitRegressor for F {
    type Model = M;
    fn fit(&self, x: &[Vec<f32>], y: &[f64], seed: u64) -> M {
        self(x, y, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_are_regressors() {
        let model = |f: &[f32]| f[0] as f64 * 2.0;
        assert_eq!(model.predict(&[3.0]), 6.0);
        assert_eq!(model.predict_batch(&[vec![1.0], vec![2.0]]), vec![2.0, 4.0]);
    }

    #[test]
    fn trait_objects_work_behind_references() {
        let model = |f: &[f32]| f[0] as f64;
        let by_ref: &dyn Regressor = &model;
        assert_eq!(by_ref.predict(&[5.0]), 5.0);
        // A boxed trait object is usable as a model via a closure adapter.
        let boxed: Box<dyn Regressor> = Box::new(|f: &[f32]| f[0] as f64 + 1.0);
        let adapted = move |f: &[f32]| boxed.predict(f);
        assert_eq!(adapted.predict(&[5.0]), 6.0);
    }

    #[test]
    fn fit_closures_are_trainers() {
        // "Training" = memorize the mean of y.
        let trainer = |_x: &[Vec<f32>], y: &[f64], _seed: u64| {
            let mean = y.iter().sum::<f64>() / y.len() as f64;
            move |_f: &[f32]| mean
        };
        let model = trainer.fit(&[vec![0.0], vec![0.0]], &[1.0, 3.0], 0);
        assert_eq!(model.predict(&[9.0]), 2.0);
    }
}
