//! # ce-conformal — prediction intervals for learned cardinality estimation
//!
//! The subject of the reproduced paper: four practical, distribution-free
//! methods that wrap a *black-box* learned cardinality estimator and attach a
//! prediction interval `[low, high]` containing the true cardinality with
//! user-chosen probability `1 − α`:
//!
//! | method | struct | extra training | interval shape |
//! |---|---|---|---|
//! | Jackknife+ (leave-one-out) | [`JackknifePlus`] | n models | adaptive, 1−2α guarantee |
//! | CV+ / JK-CV+ (K-fold) | [`CvPlus`], [`JackknifeCv`] | K models | adaptive / symmetric |
//! | Split conformal | [`SplitConformal`] | none | constant per score |
//! | Locally weighted S-CP | [`LocallyWeightedConformal`] | one difficulty model | scales with U(X) |
//! | Conformalized quantile regression | [`ConformalizedQuantileRegression`] | two quantile heads | asymmetric, tightest |
//!
//! Plus the future-work directions §V-D sketches — localized conformal
//! prediction ([`LocalizedConformal`]) and group-conditional calibration
//! ([`MondrianConformal`]) — and the operational machinery the paper
//! discusses: online/windowed
//! calibration ([`OnlineConformal`], [`WindowedConformal`]), martingale
//! exchangeability testing ([`ExchangeabilityMartingale`]), alternative
//! scoring functions ([`AbsoluteResidual`], [`QErrorScore`],
//! [`RelativeErrorScore`]), and evaluation metrics.
//!
//! ```
//! use ce_conformal::{AbsoluteResidual, SplitConformal};
//!
//! // Any `Fn(&[f32]) -> f64` is a black-box model.
//! let model = |f: &[f32]| f[0] as f64;
//! let calib_x: Vec<Vec<f32>> = (0..100).map(|i| vec![i as f32]).collect();
//! let calib_y: Vec<f64> = (0..100).map(|i| i as f64 + ((i % 5) as f64 - 2.0)).collect();
//! let scp = SplitConformal::calibrate(model, AbsoluteResidual, &calib_x, &calib_y, 0.1);
//! let interval = scp.interval(&[50.0]);
//! assert!(interval.contains(50.0));
//! ```

#![warn(missing_docs)]

mod asymmetric;
mod chaos;
mod checkpoint;
mod cqr;
mod error;
mod exchangeability;
mod heal;
mod interval;
mod jackknife;
mod localized;
mod locally_weighted;
mod mondrian;
mod metrics;
mod monitor;
mod online;
mod quantile;
mod regressor;
mod resilient;
mod score;
mod service;
mod split;

pub use asymmetric::AsymmetricSplitConformal;
pub use chaos::{install_quiet_chaos_hook, ChaosConfig, ChaosPanic, ChaosRegressor, ChaosStats};
pub use checkpoint::{
    decode_checkpoint, encode_checkpoint, read_checkpoint, write_checkpoint, Checkpoint,
    CHECKPOINT_MAGIC, CHECKPOINT_VERSION,
};
pub use cqr::ConformalizedQuantileRegression;
pub use error::CardEstError;
pub use exchangeability::ExchangeabilityMartingale;
pub use heal::{HealConfig, HealEvent, HealReason, HealState, SelfHealingService};
pub use interval::PredictionInterval;
pub use jackknife::{assign_folds, CvPlus, JackknifeCv, JackknifePlus};
pub use localized::LocalizedConformal;
pub use locally_weighted::LocallyWeightedConformal;
pub use mondrian::MondrianConformal;
pub use metrics::{
    coverage, interval_report, mean_width, median_width, percentiles, q_error,
    width_ratio, IntervalReport, Percentiles,
};
pub use monitor::{CoverageDrift, CoverageMonitor, CoverageMonitorConfig};
pub use online::{OnlineConformal, WindowedConformal};
pub use quantile::{
    conformal_quantile, conformal_quantile_lower, empirical_quantile, kth_smallest,
    try_conformal_quantile, try_conformal_quantile_lower,
};
pub use regressor::{FitRegressor, Regressor};
pub use resilient::{
    BreakerConfig, BreakerSnapshot, BreakerState, CallGuardConfig, PiEstimator, ResilienceStats,
    ResilientService,
};
pub use score::{AbsoluteResidual, QErrorScore, RelativeErrorScore, ScoreFunction};
pub use service::{PiService, PiServiceConfig, ServiceMode};
pub use split::SplitConformal;
