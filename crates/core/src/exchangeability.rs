//! Online exchangeability testing via plug-in martingales (paper §IV,
//! following Fedorova et al. [9]).
//!
//! Conformal validity rests on calibration and test scores being
//! exchangeable. This module bets against exchangeability: each new score is
//! converted into a conformal p-value against the history; under
//! exchangeability the p-values are i.i.d. uniform, so any test martingale
//! stays small (Ville: `P(sup M ≥ c) ≤ 1/c`). A workload shift drives the
//! martingale up, signalling that coverage guarantees are at risk *before*
//! they visibly fail.

/// A mixture power martingale over conformal p-values.
///
/// Uses the "simple mixture" betting function
/// `∫₀¹ ε p^(ε−1) dε` applied multiplicatively per p-value, tracked in log
/// space for stability.
#[derive(Debug, Clone)]
pub struct ExchangeabilityMartingale {
    history: Vec<f64>, // past scores, unsorted
    log_m: f64,
    max_log_m: f64,
    min_log_m: f64,
    max_growth: f64,
    /// Deterministic tie-breaking stream (keeps the core crate rand-free).
    tie_state: u64,
}

impl Default for ExchangeabilityMartingale {
    fn default() -> Self {
        Self::new()
    }
}

impl ExchangeabilityMartingale {
    /// Starts with capital 1 (log 0) and an empty history.
    pub fn new() -> Self {
        ExchangeabilityMartingale {
            history: Vec::new(),
            log_m: 0.0,
            max_log_m: 0.0,
            min_log_m: 0.0,
            max_growth: 0.0,
            tie_state: 0x9E3779B97F4A7C15,
        }
    }

    fn next_uniform(&mut self) -> f64 {
        // SplitMix64 step.
        self.tie_state = self.tie_state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.tie_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z = z ^ (z >> 31);
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The randomized conformal p-value of `score` against the history:
    /// `(#{sᵢ > s} + U·(#{sᵢ = s} + 1)) / (n + 1)`.
    fn p_value(&mut self, score: f64) -> f64 {
        let greater = self.history.iter().filter(|&&s| s > score).count();
        let equal = self.history.iter().filter(|&&s| s == score).count();
        let u = self.next_uniform();
        (greater as f64 + u * (equal as f64 + 1.0)) / (self.history.len() as f64 + 1.0)
    }

    /// Simple-mixture betting function `∫₀¹ ε p^(ε−1) dε` in closed form.
    ///
    /// With `a = ln p`, the integral is `((a − 1) + e^(−a)) / a²`, i.e.
    /// `(ln p − 1 + 1/p) / ln²p`; near `p = 1` the series
    /// `1/2 − a/6 + a²/24` avoids the 0/0.
    fn log_bet(p: f64) -> f64 {
        let p = p.clamp(1e-12, 1.0);
        let a = p.ln();
        let bet = if a.abs() < 1e-4 {
            0.5 - a / 6.0 + a * a / 24.0
        } else {
            ((a - 1.0) + (-a).exp()) / (a * a)
        };
        bet.max(1e-300).ln()
    }

    /// Feeds one new conformal score; returns the updated log-martingale.
    pub fn observe(&mut self, score: f64) -> f64 {
        assert!(score.is_finite(), "non-finite conformal score");
        let p = self.p_value(score);
        self.log_m += Self::log_bet(p);
        self.max_log_m = self.max_log_m.max(self.log_m);
        self.max_growth = self.max_growth.max(self.log_m - self.min_log_m);
        self.min_log_m = self.min_log_m.min(self.log_m);
        self.history.push(score);
        self.log_m
    }

    /// Current log₁₀ of the martingale value.
    pub fn log10_martingale(&self) -> f64 {
        self.log_m / std::f64::consts::LN_10
    }

    /// Largest log₁₀ martingale value seen so far.
    pub fn max_log10_martingale(&self) -> f64 {
        self.max_log_m / std::f64::consts::LN_10
    }

    /// Whether exchangeability is rejected at capital threshold `c`
    /// (e.g. `c = 100` gives a 1% false-alarm bound by Ville's inequality).
    ///
    /// This is the theoretically clean test, but the mixture martingale
    /// bleeds capital slowly on exchangeable data, so a shift arriving after
    /// a long calm phase may never recover to absolute capital `c`; use
    /// [`Self::detects_shift_at`] for responsive monitoring.
    pub fn rejects_at(&self, c: f64) -> bool {
        assert!(c > 1.0, "threshold must exceed 1");
        self.max_log_m >= c.ln()
    }

    /// Largest log₁₀ capital *growth* from a running minimum — the practical
    /// change detector: restarting the bet at every low-water mark makes the
    /// detector insensitive to how long the calm phase lasted.
    pub fn max_growth_log10(&self) -> f64 {
        self.max_growth / std::f64::consts::LN_10
    }

    /// Whether the martingale ever grew by factor `c` from a running
    /// minimum — signals a workload shift.
    pub fn detects_shift_at(&self, c: f64) -> bool {
        assert!(c > 1.0, "threshold must exceed 1");
        self.max_growth >= c.ln()
    }

    /// Number of scores observed.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// Full internal state, for checkpointing. Restoring the snapshot with
    /// [`Self::restore_snapshot`] resumes the betting sequence bit-for-bit,
    /// including the deterministic tie-breaking stream.
    pub(crate) fn snapshot(&self) -> MartingaleSnapshot {
        MartingaleSnapshot {
            history: self.history.clone(),
            log_m: self.log_m,
            max_log_m: self.max_log_m,
            min_log_m: self.min_log_m,
            max_growth: self.max_growth,
            tie_state: self.tie_state,
        }
    }

    /// Rebuilds a martingale from a [`Self::snapshot`].
    pub(crate) fn restore_snapshot(snap: MartingaleSnapshot) -> Self {
        ExchangeabilityMartingale {
            history: snap.history,
            log_m: snap.log_m,
            max_log_m: snap.max_log_m,
            min_log_m: snap.min_log_m,
            max_growth: snap.max_growth,
            tie_state: snap.tie_state,
        }
    }

    /// True before any score is observed.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }
}

/// The complete internal state of an [`ExchangeabilityMartingale`].
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct MartingaleSnapshot {
    pub history: Vec<f64>,
    pub log_m: f64,
    pub max_log_m: f64,
    pub min_log_m: f64,
    pub max_growth: f64,
    pub tie_state: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn betting_function_matches_numeric_mixture_integral() {
        // Closed form of ∫₀¹ ε p^(ε−1) dε vs fine numeric integration.
        for &p in &[0.001f64, 0.01, 0.1, 0.5, 0.9, 0.999] {
            let grid = 200_000;
            let mut acc = 0.0f64;
            for i in 0..grid {
                let eps = (i as f64 + 0.5) / grid as f64;
                acc += eps * p.powf(eps - 1.0) / grid as f64;
            }
            let closed = ExchangeabilityMartingale::log_bet(p).exp();
            assert!(
                (closed - acc).abs() / acc < 1e-3,
                "p={p}: closed {closed} vs numeric {acc}"
            );
        }
    }

    #[test]
    fn betting_function_series_is_continuous_near_one() {
        let a = ExchangeabilityMartingale::log_bet(1.0 - 1e-5);
        let b = ExchangeabilityMartingale::log_bet(1.0 - 2e-4);
        assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        assert!((ExchangeabilityMartingale::log_bet(1.0).exp() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn stays_small_on_exchangeable_scores() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = ExchangeabilityMartingale::new();
        for _ in 0..2000 {
            m.observe(rng.gen::<f64>());
        }
        assert!(
            m.max_log10_martingale() < 2.0,
            "false alarm on iid data: {}",
            m.max_log10_martingale()
        );
        assert!(!m.rejects_at(1000.0));
        assert!(
            m.max_growth_log10() < 2.5,
            "growth false alarm on iid data: {}",
            m.max_growth_log10()
        );
    }

    #[test]
    fn grows_on_distribution_shift() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = ExchangeabilityMartingale::new();
        // Calm regime.
        for _ in 0..500 {
            m.observe(rng.gen_range(0.0..1.0));
        }
        let before = m.log10_martingale();
        // Shift: scores jump by 10x (model suddenly much worse).
        for _ in 0..500 {
            m.observe(rng.gen_range(5.0..10.0));
        }
        let after = m.max_log10_martingale();
        assert!(
            after - before > 3.0,
            "martingale should explode on shift: {before} -> {after}"
        );
        assert!(m.detects_shift_at(100.0), "growth {}", m.max_growth_log10());
    }

    #[test]
    fn deterministic_given_inputs() {
        let run = || {
            let mut m = ExchangeabilityMartingale::new();
            for i in 0..100 {
                m.observe((i % 7) as f64);
            }
            m.log10_martingale()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn snapshot_round_trip_resumes_bitwise() {
        let mut m = ExchangeabilityMartingale::new();
        for i in 0..200 {
            m.observe((i % 11) as f64);
        }
        let mut r = ExchangeabilityMartingale::restore_snapshot(m.snapshot());
        // Identical state must produce identical betting trajectories,
        // including the SplitMix64 tie-break stream.
        for i in 0..50 {
            assert_eq!(m.observe(i as f64), r.observe(i as f64));
        }
        assert_eq!(m.snapshot(), r.snapshot());
    }

    #[test]
    fn empty_martingale_reports_zero() {
        let m = ExchangeabilityMartingale::new();
        assert!(m.is_empty());
        assert_eq!(m.log10_martingale(), 0.0);
    }
}
