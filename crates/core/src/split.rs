//! Split conformal prediction (paper Algorithm 2).

use crate::interval::PredictionInterval;
use crate::quantile::conformal_quantile;
use crate::regressor::Regressor;
use crate::score::ScoreFunction;

/// Split conformal prediction: calibrate one threshold δ on a held-out set,
/// then every interval is the score inversion at δ around the model estimate.
///
/// The simplest and cheapest of the four methods — no extra model training —
/// at the cost of a constant-width (per score function) interval.
#[derive(Debug, Clone)]
pub struct SplitConformal<M, S> {
    model: M,
    score: S,
    delta: f64,
    alpha: f64,
}

impl<M: Regressor, S: ScoreFunction> SplitConformal<M, S> {
    /// Calibrates on `(calib_x, calib_y)` at miscoverage `alpha`.
    ///
    /// # Panics
    /// Panics on an empty calibration set, mismatched lengths, or `alpha`
    /// outside `(0, 1)`.
    pub fn calibrate(
        model: M,
        score: S,
        calib_x: &[Vec<f32>],
        calib_y: &[f64],
        alpha: f64,
    ) -> Self {
        assert_eq!(calib_x.len(), calib_y.len(), "calibration set length mismatch");
        assert!(!calib_x.is_empty(), "empty calibration set");
        let scores: Vec<f64> = calib_x
            .iter()
            .zip(calib_y)
            .map(|(x, &y)| score.score(y, model.predict(x)))
            .collect();
        let delta = conformal_quantile(&scores, alpha);
        SplitConformal { model, score, delta, alpha }
    }

    /// Builds directly from precomputed conformal scores (used when the
    /// model's calibration predictions are already available).
    pub fn from_scores(model: M, score: S, scores: &[f64], alpha: f64) -> Self {
        let delta = conformal_quantile(scores, alpha);
        SplitConformal { model, score, delta, alpha }
    }

    /// The calibrated threshold δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The miscoverage level the predictor was calibrated for.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The wrapped model's point estimate.
    pub fn predict(&self, features: &[f32]) -> f64 {
        self.model.predict(features)
    }

    /// The prediction interval for one query.
    pub fn interval(&self, features: &[f32]) -> PredictionInterval {
        let y_hat = self.model.predict(features);
        let (lo, hi) = self.score.interval(y_hat, self.delta);
        PredictionInterval::new(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::{AbsoluteResidual, QErrorScore};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A deliberately-imperfect model: y = x + noise, model predicts x.
    #[allow(clippy::type_complexity)]
    fn noisy_setup(
        n: usize,
        seed: u64,
    ) -> (Vec<Vec<f32>>, Vec<f64>, impl Fn(&[f32]) -> f64 + Copy) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f32>> = (0..n).map(|_| vec![rng.gen_range(0.0..10.0f32)]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|f| f[0] as f64 + rng.gen_range(-1.0..1.0))
            .collect();
        (x, y, |f: &[f32]| f[0] as f64)
    }

    #[test]
    fn covers_holdout_at_nominal_rate() {
        let (cx, cy, model) = noisy_setup(500, 1);
        let (tx, ty, _) = noisy_setup(500, 2);
        let scp = SplitConformal::calibrate(model, AbsoluteResidual, &cx, &cy, 0.1);
        let covered = tx
            .iter()
            .zip(&ty)
            .filter(|(x, &y)| scp.interval(x).contains(y))
            .count() as f64
            / tx.len() as f64;
        assert!(covered >= 0.87, "coverage {covered}");
        // And not absurdly conservative for uniform noise.
        assert!(covered <= 0.99, "coverage {covered}");
    }

    #[test]
    fn interval_width_is_constant_for_residual_score() {
        let (cx, cy, model) = noisy_setup(300, 3);
        let scp = SplitConformal::calibrate(model, AbsoluteResidual, &cx, &cy, 0.1);
        let w1 = scp.interval(&[1.0]).width();
        let w2 = scp.interval(&[9.0]).width();
        assert!((w1 - w2).abs() < 1e-12, "S-CP width must be constant");
        assert!((w1 - 2.0 * scp.delta()).abs() < 1e-12);
    }

    #[test]
    fn delta_shrinks_with_lower_coverage() {
        let (cx, cy, model) = noisy_setup(500, 4);
        let hi =
            SplitConformal::calibrate(model, AbsoluteResidual, &cx, &cy, 0.01).delta();
        let lo =
            SplitConformal::calibrate(model, AbsoluteResidual, &cx, &cy, 0.5).delta();
        assert!(hi > lo, "99% threshold {hi} must exceed 50% threshold {lo}");
    }

    #[test]
    fn q_error_score_gives_multiplicative_intervals() {
        // Multiplicative noise: y = x * U(0.5, 2); model predicts x.
        let mut rng = StdRng::seed_from_u64(5);
        let cx: Vec<Vec<f32>> =
            (0..400).map(|_| vec![rng.gen_range(1.0..100.0f32)]).collect();
        let cy: Vec<f64> = cx
            .iter()
            .map(|f| f[0] as f64 * rng.gen_range(0.5..2.0))
            .collect();
        let model = |f: &[f32]| f[0] as f64;
        let scp =
            SplitConformal::calibrate(model, QErrorScore::new(1e-6), &cx, &cy, 0.1);
        let small = scp.interval(&[2.0]);
        let large = scp.interval(&[80.0]);
        assert!(large.width() > small.width(), "q-error widths scale with ŷ");
        // Ratio hi/lo identical across queries.
        assert!(((small.hi / small.lo) - (large.hi / large.lo)).abs() < 1e-9);
    }

    #[test]
    fn from_scores_matches_calibrate() {
        let (cx, cy, model) = noisy_setup(100, 6);
        let scores: Vec<f64> = cx
            .iter()
            .zip(&cy)
            .map(|(x, &y)| AbsoluteResidual.score(y, model.predict(x)))
            .collect();
        let a = SplitConformal::calibrate(model, AbsoluteResidual, &cx, &cy, 0.2);
        let b = SplitConformal::from_scores(model, AbsoluteResidual, &scores, 0.2);
        assert_eq!(a.delta(), b.delta());
    }

    #[test]
    #[should_panic(expected = "empty calibration set")]
    fn rejects_empty_calibration() {
        let model = |_: &[f32]| 0.0;
        SplitConformal::calibrate(model, AbsoluteResidual, &[], &[], 0.1);
    }
}
