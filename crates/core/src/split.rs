//! Split conformal prediction (paper Algorithm 2).

use crate::error::{check_alpha, check_lengths, CardEstError};
use crate::interval::PredictionInterval;
use crate::quantile::{conformal_quantile, try_conformal_quantile};
use crate::regressor::Regressor;
use crate::score::ScoreFunction;

/// Split conformal prediction: calibrate one threshold δ on a held-out set,
/// then every interval is the score inversion at δ around the model estimate.
///
/// The simplest and cheapest of the four methods — no extra model training —
/// at the cost of a constant-width (per score function) interval.
#[derive(Debug, Clone)]
pub struct SplitConformal<M, S> {
    model: M,
    score: S,
    delta: f64,
    alpha: f64,
}

impl<M: Regressor, S: ScoreFunction> SplitConformal<M, S> {
    /// Calibrates on `(calib_x, calib_y)` at miscoverage `alpha`.
    ///
    /// Calibration scores are computed in parallel in index order (the
    /// quantile is order-independent anyway), so δ is bit-identical at any
    /// thread count.
    ///
    /// # Panics
    /// Panics on an empty calibration set, mismatched lengths, or `alpha`
    /// outside `(0, 1)`.
    pub fn calibrate(model: M, score: S, calib_x: &[Vec<f32>], calib_y: &[f64], alpha: f64) -> Self
    where
        M: Sync,
        S: Sync,
    {
        assert_eq!(calib_x.len(), calib_y.len(), "calibration set length mismatch");
        assert!(!calib_x.is_empty(), "empty calibration set");
        let _span = ce_telemetry::Span::enter("split_calibrate");
        let scores = ce_parallel::par_map(calib_x.len(), 64, |i| {
            score.score(calib_y[i], model.predict(&calib_x[i]))
        });
        let delta = conformal_quantile(&scores, alpha);
        SplitConformal { model, score, delta, alpha }
    }

    /// Non-panicking [`SplitConformal::calibrate`]: length mismatch and bad
    /// `alpha` become errors, while an empty calibration set degrades to the
    /// conservative infinite threshold (`δ = +∞`, so every interval covers).
    pub fn try_calibrate(
        model: M,
        score: S,
        calib_x: &[Vec<f32>],
        calib_y: &[f64],
        alpha: f64,
    ) -> Result<Self, CardEstError>
    where
        M: Sync,
        S: Sync,
    {
        check_lengths(calib_x.len(), calib_y.len())?;
        check_alpha(alpha)?;
        let _span = ce_telemetry::Span::enter("split_calibrate");
        let scores = ce_parallel::par_map(calib_x.len(), 64, |i| {
            score.score(calib_y[i], model.predict(&calib_x[i]))
        });
        let delta = try_conformal_quantile(&scores, alpha)?;
        Ok(SplitConformal { model, score, delta, alpha })
    }

    /// Builds directly from precomputed conformal scores (used when the
    /// model's calibration predictions are already available).
    pub fn from_scores(model: M, score: S, scores: &[f64], alpha: f64) -> Self {
        let delta = conformal_quantile(scores, alpha);
        SplitConformal { model, score, delta, alpha }
    }

    /// The calibrated threshold δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The miscoverage level the predictor was calibrated for.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The wrapped model's point estimate.
    pub fn predict(&self, features: &[f32]) -> f64 {
        self.model.predict(features)
    }

    /// The prediction interval for one query.
    pub fn interval(&self, features: &[f32]) -> PredictionInterval {
        let y_hat = self.model.predict(features);
        let (lo, hi) = self.score.interval(y_hat, self.delta);
        PredictionInterval::new(lo, hi)
    }

    /// Like [`SplitConformal::interval`], but a non-finite model prediction
    /// is reported as [`CardEstError::NonFiniteScore`].
    pub fn try_interval(&self, features: &[f32]) -> Result<PredictionInterval, CardEstError> {
        let y_hat = self.model.predict(features);
        if !y_hat.is_finite() {
            return Err(CardEstError::NonFiniteScore {
                value: y_hat,
                context: "model prediction",
            });
        }
        let (lo, hi) = self.score.interval(y_hat, self.delta);
        Ok(PredictionInterval::new(lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::{AbsoluteResidual, QErrorScore};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A deliberately-imperfect model: y = x + noise, model predicts x.
    #[allow(clippy::type_complexity)]
    fn noisy_setup(
        n: usize,
        seed: u64,
    ) -> (Vec<Vec<f32>>, Vec<f64>, impl Fn(&[f32]) -> f64 + Copy) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f32>> = (0..n).map(|_| vec![rng.gen_range(0.0..10.0f32)]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|f| f[0] as f64 + rng.gen_range(-1.0..1.0))
            .collect();
        (x, y, |f: &[f32]| f[0] as f64)
    }

    #[test]
    fn covers_holdout_at_nominal_rate() {
        let (cx, cy, model) = noisy_setup(500, 1);
        let (tx, ty, _) = noisy_setup(500, 2);
        let scp = SplitConformal::calibrate(model, AbsoluteResidual, &cx, &cy, 0.1);
        let covered = tx
            .iter()
            .zip(&ty)
            .filter(|(x, &y)| scp.interval(x).contains(y))
            .count() as f64
            / tx.len() as f64;
        assert!(covered >= 0.87, "coverage {covered}");
        // And not absurdly conservative for uniform noise.
        assert!(covered <= 0.99, "coverage {covered}");
    }

    #[test]
    fn interval_width_is_constant_for_residual_score() {
        let (cx, cy, model) = noisy_setup(300, 3);
        let scp = SplitConformal::calibrate(model, AbsoluteResidual, &cx, &cy, 0.1);
        let w1 = scp.interval(&[1.0]).width();
        let w2 = scp.interval(&[9.0]).width();
        assert!((w1 - w2).abs() < 1e-12, "S-CP width must be constant");
        assert!((w1 - 2.0 * scp.delta()).abs() < 1e-12);
    }

    #[test]
    fn delta_shrinks_with_lower_coverage() {
        let (cx, cy, model) = noisy_setup(500, 4);
        let hi =
            SplitConformal::calibrate(model, AbsoluteResidual, &cx, &cy, 0.01).delta();
        let lo =
            SplitConformal::calibrate(model, AbsoluteResidual, &cx, &cy, 0.5).delta();
        assert!(hi > lo, "99% threshold {hi} must exceed 50% threshold {lo}");
    }

    #[test]
    fn q_error_score_gives_multiplicative_intervals() {
        // Multiplicative noise: y = x * U(0.5, 2); model predicts x.
        let mut rng = StdRng::seed_from_u64(5);
        let cx: Vec<Vec<f32>> =
            (0..400).map(|_| vec![rng.gen_range(1.0..100.0f32)]).collect();
        let cy: Vec<f64> = cx
            .iter()
            .map(|f| f[0] as f64 * rng.gen_range(0.5..2.0))
            .collect();
        let model = |f: &[f32]| f[0] as f64;
        let scp =
            SplitConformal::calibrate(model, QErrorScore::new(1e-6), &cx, &cy, 0.1);
        let small = scp.interval(&[2.0]);
        let large = scp.interval(&[80.0]);
        assert!(large.width() > small.width(), "q-error widths scale with ŷ");
        // Ratio hi/lo identical across queries.
        assert!(((small.hi / small.lo) - (large.hi / large.lo)).abs() < 1e-9);
    }

    #[test]
    fn from_scores_matches_calibrate() {
        let (cx, cy, model) = noisy_setup(100, 6);
        let scores: Vec<f64> = cx
            .iter()
            .zip(&cy)
            .map(|(x, &y)| AbsoluteResidual.score(y, model.predict(x)))
            .collect();
        let a = SplitConformal::calibrate(model, AbsoluteResidual, &cx, &cy, 0.2);
        let b = SplitConformal::from_scores(model, AbsoluteResidual, &scores, 0.2);
        assert_eq!(a.delta(), b.delta());
    }

    #[test]
    #[should_panic(expected = "empty calibration set")]
    fn rejects_empty_calibration() {
        let model = |_: &[f32]| 0.0;
        SplitConformal::calibrate(model, AbsoluteResidual, &[], &[], 0.1);
    }

    #[test]
    fn try_calibrate_degrades_gracefully() {
        use crate::error::CardEstError;
        let model = |f: &[f32]| f[0] as f64;
        // Empty calibration: conservative infinite threshold, not a panic.
        let scp = SplitConformal::try_calibrate(model, AbsoluteResidual, &[], &[], 0.1)
            .expect("empty calibration degrades, not errors");
        assert!(scp.delta().is_infinite());
        assert!(scp.interval(&[3.0]).contains(1e18));
        // Mismatched lengths and bad alpha are caller bugs -> errors.
        assert!(matches!(
            SplitConformal::try_calibrate(model, AbsoluteResidual, &[vec![1.0]], &[], 0.1),
            Err(CardEstError::LengthMismatch { .. })
        ));
        assert!(matches!(
            SplitConformal::try_calibrate(model, AbsoluteResidual, &[], &[], 0.0),
            Err(CardEstError::InvalidAlpha(_))
        ));
        // A NaN in the calibration scores widens delta to +inf (NaN sorts
        // above all finite values under total order) instead of panicking.
        let nan_y = [f64::NAN; 3];
        let xs = vec![vec![1.0f32], vec![2.0], vec![3.0]];
        let scp = SplitConformal::try_calibrate(model, AbsoluteResidual, &xs, &nan_y, 0.1)
            .expect("NaN labels degrade, not error");
        assert!(scp.delta().is_infinite());
    }

    #[test]
    fn try_interval_rejects_non_finite_prediction() {
        use crate::error::CardEstError;
        let (cx, cy, _) = noisy_setup(50, 9);
        let nan_model = |f: &[f32]| {
            if f[0] < 0.0 {
                f64::NAN
            } else {
                f[0] as f64
            }
        };
        let scp = SplitConformal::calibrate(nan_model, AbsoluteResidual, &cx, &cy, 0.1);
        assert!(scp.try_interval(&[2.0]).is_ok());
        assert!(matches!(
            scp.try_interval(&[-1.0]),
            Err(CardEstError::NonFiniteScore { .. })
        ));
    }
}
