//! Conformalized quantile regression (paper Algorithm 4, after Romano et al.).

use crate::error::{check_alpha, check_lengths, CardEstError};
use crate::interval::PredictionInterval;
use crate::quantile::{conformal_quantile, try_conformal_quantile};
use crate::regressor::Regressor;

/// Conformalized quantile regression: two quantile models `Q̂_l` (τ = α/2)
/// and `Q̂_u` (τ = 1 − α/2) give a heuristic, naturally *asymmetric* and
/// adaptive interval; conformal calibration of the score
/// `max(Q̂_l(X) − y, y − Q̂_u(X))` turns it into a rigorous one.
///
/// This is the most intrusive of the four methods (the quantile heads need
/// the pinball loss, i.e. a change to the learned model's loss function) and,
/// per the paper, the tightest.
#[derive(Debug, Clone)]
pub struct ConformalizedQuantileRegression<L, U> {
    lower: L,
    upper: U,
    delta: f64,
    alpha: f64,
}

impl<L: Regressor, U: Regressor> ConformalizedQuantileRegression<L, U> {
    /// Calibrates on `(calib_x, calib_y)` at miscoverage `alpha`.
    ///
    /// `lower`/`upper` must already be trained with pinball losses at
    /// τ = α/2 and τ = 1 − α/2 for the *same* `alpha` — CQR is tied to a
    /// fixed coverage level (retrain the heads to change it).
    ///
    /// # Panics
    /// Panics on an empty calibration set, mismatched lengths, or `alpha`
    /// outside `(0, 1)`.
    pub fn calibrate(lower: L, upper: U, calib_x: &[Vec<f32>], calib_y: &[f64], alpha: f64) -> Self
    where
        L: Sync,
        U: Sync,
    {
        assert_eq!(calib_x.len(), calib_y.len(), "calibration set length mismatch");
        assert!(!calib_x.is_empty(), "empty calibration set");
        // Parallel in index order; δ is bit-identical at any thread count.
        let scores = ce_parallel::par_map(calib_x.len(), 64, |i| {
            let x = &calib_x[i];
            let y = calib_y[i];
            (lower.predict(x) - y).max(y - upper.predict(x))
        });
        let delta = conformal_quantile(&scores, alpha);
        ConformalizedQuantileRegression { lower, upper, delta, alpha }
    }

    /// Non-panicking [`ConformalizedQuantileRegression::calibrate`]: an
    /// empty calibration set degrades to `δ = +∞` (intervals cover
    /// everything); shape problems become errors.
    pub fn try_calibrate(
        lower: L,
        upper: U,
        calib_x: &[Vec<f32>],
        calib_y: &[f64],
        alpha: f64,
    ) -> Result<Self, CardEstError>
    where
        L: Sync,
        U: Sync,
    {
        check_lengths(calib_x.len(), calib_y.len())?;
        check_alpha(alpha)?;
        let scores = ce_parallel::par_map(calib_x.len(), 64, |i| {
            let x = &calib_x[i];
            let y = calib_y[i];
            (lower.predict(x) - y).max(y - upper.predict(x))
        });
        let delta = try_conformal_quantile(&scores, alpha)?;
        Ok(ConformalizedQuantileRegression { lower, upper, delta, alpha })
    }

    /// The calibrated conformity margin δ (can be negative when the raw
    /// quantile band over-covers — CQR then *shrinks* the band).
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The miscoverage level.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The raw (unconformalized) quantile band, for diagnostics.
    pub fn raw_band(&self, features: &[f32]) -> PredictionInterval {
        PredictionInterval::new(self.lower.predict(features), self.upper.predict(features))
    }

    /// The conformalized prediction interval `[Q̂_l(X) − δ, Q̂_u(X) + δ]`.
    pub fn interval(&self, features: &[f32]) -> PredictionInterval {
        let ql = self.lower.predict(features);
        let qu = self.upper.predict(features);
        PredictionInterval::new(ql - self.delta, qu + self.delta)
    }

    /// Like [`ConformalizedQuantileRegression::interval`], but a non-finite
    /// quantile-head prediction is reported as
    /// [`CardEstError::NonFiniteScore`].
    pub fn try_interval(&self, features: &[f32]) -> Result<PredictionInterval, CardEstError> {
        let ql = self.lower.predict(features);
        let qu = self.upper.predict(features);
        for (v, context) in [(ql, "lower quantile head"), (qu, "upper quantile head")] {
            if !v.is_finite() {
                return Err(CardEstError::NonFiniteScore { value: v, context });
            }
        }
        Ok(PredictionInterval::new(ql - self.delta, qu + self.delta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// y = x + U(0, x): true α/2 and 1-α/2 conditional quantiles are known.
    fn hetero(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f32>> =
            (0..n).map(|_| vec![rng.gen_range(0.5..4.0f32)]).collect();
        let y: Vec<f64> =
            x.iter().map(|f| f[0] as f64 + rng.gen_range(0.0..f[0] as f64)).collect();
        (x, y)
    }

    /// Oracle quantile heads for the hetero data at alpha = 0.1.
    fn oracle_lower(f: &[f32]) -> f64 {
        f[0] as f64 + 0.05 * f[0] as f64
    }
    fn oracle_upper(f: &[f32]) -> f64 {
        f[0] as f64 + 0.95 * f[0] as f64
    }

    #[test]
    fn oracle_heads_need_almost_no_correction() {
        let (cx, cy) = hetero(1000, 1);
        let cqr = ConformalizedQuantileRegression::calibrate(
            oracle_lower,
            oracle_upper,
            &cx,
            &cy,
            0.1,
        );
        assert!(cqr.delta().abs() < 0.1, "oracle delta {}", cqr.delta());
    }

    #[test]
    fn covers_holdout_and_adapts_width() {
        let (cx, cy) = hetero(1000, 2);
        let (tx, ty) = hetero(1000, 3);
        let cqr = ConformalizedQuantileRegression::calibrate(
            oracle_lower,
            oracle_upper,
            &cx,
            &cy,
            0.1,
        );
        let covered = tx
            .iter()
            .zip(&ty)
            .filter(|(x, &y)| cqr.interval(x).contains(y))
            .count() as f64
            / tx.len() as f64;
        assert!(covered >= 0.87, "coverage {covered}");
        assert!(cqr.interval(&[3.5]).width() > 2.0 * cqr.interval(&[0.6]).width());
    }

    #[test]
    fn miscalibrated_heads_get_corrected() {
        // Heads that are far too narrow (both predict the median).
        let (cx, cy) = hetero(1000, 4);
        let (tx, ty) = hetero(1000, 5);
        let median = |f: &[f32]| f[0] as f64 * 1.5;
        let cqr =
            ConformalizedQuantileRegression::calibrate(median, median, &cx, &cy, 0.1);
        assert!(cqr.delta() > 0.0, "narrow heads need widening");
        let covered = tx
            .iter()
            .zip(&ty)
            .filter(|(x, &y)| cqr.interval(x).contains(y))
            .count() as f64
            / tx.len() as f64;
        assert!(covered >= 0.87, "coverage {covered}");
    }

    #[test]
    fn overly_wide_heads_get_shrunk() {
        let (cx, cy) = hetero(1000, 6);
        let wide_lo = |f: &[f32]| f[0] as f64 - 50.0;
        let wide_hi = |f: &[f32]| f[0] as f64 + 50.0;
        let cqr =
            ConformalizedQuantileRegression::calibrate(wide_lo, wide_hi, &cx, &cy, 0.1);
        assert!(cqr.delta() < 0.0, "over-wide heads should shrink: {}", cqr.delta());
        let band = cqr.raw_band(&[2.0]);
        let conf = cqr.interval(&[2.0]);
        assert!(conf.width() < band.width());
    }

    #[test]
    fn interval_is_asymmetric_around_point_estimate() {
        let (cx, cy) = hetero(500, 7);
        let cqr = ConformalizedQuantileRegression::calibrate(
            oracle_lower,
            oracle_upper,
            &cx,
            &cy,
            0.1,
        );
        // Conditional mean for y = x + U(0, x) is 1.5 x; the band [1.05x,
        // 1.95x] sits asymmetrically around it only in absolute terms —
        // check asymmetry vs the *median head midpoint* instead: interval
        // endpoints differ in distance from 1.5x only through delta, so use
        // a skewed-noise check: lower gap << upper gap relative to x itself.
        let x = [2.0f32];
        let iv = cqr.interval(&x);
        let point = 2.0f64; // the underlying model estimate f(x) = x
        assert!(iv.hi - point > point - iv.lo, "upper side should be wider");
    }

    #[test]
    #[should_panic(expected = "empty calibration set")]
    fn rejects_empty_calibration() {
        ConformalizedQuantileRegression::calibrate(
            |_: &[f32]| 0.0,
            |_: &[f32]| 0.0,
            &[],
            &[],
            0.1,
        );
    }

    #[test]
    fn try_calibrate_degrades_on_empty_and_flags_nan_heads() {
        use crate::error::CardEstError;
        let cqr = ConformalizedQuantileRegression::try_calibrate(
            |_: &[f32]| 0.0,
            |_: &[f32]| 1.0,
            &[],
            &[],
            0.1,
        )
        .expect("empty calibration degrades, not errors");
        assert!(cqr.delta().is_infinite());
        assert!(cqr.interval(&[0.0]).contains(1e15));
        let (cx, cy) = hetero(100, 8);
        let nan_head = |_: &[f32]| f64::NAN;
        // Both heads NaN -> every score NaN -> delta pinned at +inf (NaN
        // sorts above all finite values under total order).
        let bad = ConformalizedQuantileRegression::try_calibrate(
            nan_head, nan_head, &cx, &cy, 0.1,
        )
        .expect("NaN heads widen delta instead of erroring at calibration");
        assert!(bad.delta().is_infinite(), "NaN scores pin delta at +inf");
        // A single NaN head still calibrates (max() ignores the NaN arm)
        // but serving flags the corrupt head per query.
        let half_bad = ConformalizedQuantileRegression::try_calibrate(
            nan_head, oracle_upper, &cx, &cy, 0.1,
        )
        .expect("calibration survives");
        assert!(matches!(
            half_bad.try_interval(&[1.0]),
            Err(CardEstError::NonFiniteScore { context: "lower quantile head", .. })
        ));
    }
}
