//! Locally weighted split conformal prediction (paper Algorithm 3).

use crate::error::{check_alpha, check_lengths, CardEstError};
use crate::interval::PredictionInterval;
use crate::quantile::{conformal_quantile, try_conformal_quantile};
use crate::regressor::Regressor;
use crate::score::ScoreFunction;

/// Locally weighted split conformal: scores are normalized by a per-query
/// difficulty estimate `U(X)`, so the calibrated threshold scales with query
/// hardness — narrow intervals for easy queries, wide for hard ones.
///
/// `U` is any [`Regressor`] trained to predict the conditional score
/// magnitude (the paper instantiates it as an xgboost model of the
/// conditional MAD; here `ce-gbdt` plays that role, and an ensemble
/// variance works too).
#[derive(Debug, Clone)]
pub struct LocallyWeightedConformal<M, D, S> {
    model: M,
    difficulty: D,
    score: S,
    delta: f64,
    alpha: f64,
    /// Floor on U(X) so a confidently-wrong difficulty model cannot collapse
    /// the interval to a point.
    min_difficulty: f64,
}

impl<M: Regressor, D: Regressor, S: ScoreFunction> LocallyWeightedConformal<M, D, S> {
    /// Calibrates on `(calib_x, calib_y)` at miscoverage `alpha`, scaling
    /// each score by `difficulty.predict(x)` (floored at `min_difficulty`).
    ///
    /// # Panics
    /// Panics on an empty calibration set, mismatched lengths, `alpha`
    /// outside `(0, 1)`, or a non-positive `min_difficulty`.
    pub fn calibrate(
        model: M,
        difficulty: D,
        score: S,
        calib_x: &[Vec<f32>],
        calib_y: &[f64],
        alpha: f64,
        min_difficulty: f64,
    ) -> Self
    where
        M: Sync,
        D: Sync,
        S: Sync,
    {
        assert_eq!(calib_x.len(), calib_y.len(), "calibration set length mismatch");
        assert!(!calib_x.is_empty(), "empty calibration set");
        assert!(min_difficulty > 0.0, "difficulty floor must be positive");
        // Parallel in index order; δ is bit-identical at any thread count.
        let scaled = ce_parallel::par_map(calib_x.len(), 64, |i| {
            let x = &calib_x[i];
            let u = difficulty.predict(x).max(min_difficulty);
            score.score(calib_y[i], model.predict(x)) / u
        });
        let delta = conformal_quantile(&scaled, alpha);
        LocallyWeightedConformal { model, difficulty, score, delta, alpha, min_difficulty }
    }

    /// Non-panicking [`LocallyWeightedConformal::calibrate`]: an empty
    /// calibration set degrades to `δ = +∞`; shape/parameter problems become
    /// errors. A NaN difficulty estimate is floored up to `min_difficulty`
    /// (max() with a NaN operand keeps the finite floor), so corrupt `U(X)`
    /// widens rather than poisons.
    #[allow(clippy::too_many_arguments)]
    pub fn try_calibrate(
        model: M,
        difficulty: D,
        score: S,
        calib_x: &[Vec<f32>],
        calib_y: &[f64],
        alpha: f64,
        min_difficulty: f64,
    ) -> Result<Self, CardEstError>
    where
        M: Sync,
        D: Sync,
        S: Sync,
    {
        check_lengths(calib_x.len(), calib_y.len())?;
        check_alpha(alpha)?;
        // NaN fails this check too: a NaN floor must be rejected, not floored.
        if min_difficulty.is_nan() || min_difficulty <= 0.0 {
            return Err(CardEstError::InvalidParameter("difficulty floor must be positive"));
        }
        let scaled = ce_parallel::par_map(calib_x.len(), 64, |i| {
            let x = &calib_x[i];
            let u = difficulty.predict(x).max(min_difficulty);
            score.score(calib_y[i], model.predict(x)) / u
        });
        let delta = try_conformal_quantile(&scaled, alpha)?;
        Ok(LocallyWeightedConformal { model, difficulty, score, delta, alpha, min_difficulty })
    }

    /// The calibrated normalized threshold δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The miscoverage level.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The wrapped model's point estimate.
    pub fn predict(&self, features: &[f32]) -> f64 {
        self.model.predict(features)
    }

    /// The difficulty estimate `U(X)` after flooring.
    pub fn difficulty(&self, features: &[f32]) -> f64 {
        self.difficulty.predict(features).max(self.min_difficulty)
    }

    /// The adaptive prediction interval: the score inversion at `δ · U(X)`.
    pub fn interval(&self, features: &[f32]) -> PredictionInterval {
        let y_hat = self.model.predict(features);
        let u = self.difficulty(features);
        let (lo, hi) = self.score.interval(y_hat, self.delta * u);
        PredictionInterval::new(lo, hi)
    }

    /// Like [`LocallyWeightedConformal::interval`], but a non-finite model
    /// prediction is reported as [`CardEstError::NonFiniteScore`]. (A
    /// non-finite difficulty estimate is already absorbed by the floor /
    /// conservative widening and is not an error.)
    pub fn try_interval(&self, features: &[f32]) -> Result<PredictionInterval, CardEstError> {
        let y_hat = self.model.predict(features);
        if !y_hat.is_finite() {
            return Err(CardEstError::NonFiniteScore {
                value: y_hat,
                context: "model prediction",
            });
        }
        let u = self.difficulty(features);
        let (lo, hi) = self.score.interval(y_hat, self.delta * u);
        Ok(PredictionInterval::new(lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::AbsoluteResidual;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Heteroscedastic data: noise grows with x. The difficulty oracle knows
    /// the noise scale; LW intervals should adapt while plain S-CP cannot.
    fn hetero(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f32>> =
            (0..n).map(|_| vec![rng.gen_range(0.1..10.0f32)]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|f| {
                let scale = f[0] as f64;
                f[0] as f64 + rng.gen_range(-scale..scale) * 0.5
            })
            .collect();
        (x, y)
    }

    fn oracle_difficulty(f: &[f32]) -> f64 {
        f[0] as f64
    }

    #[test]
    fn adapts_interval_width_to_difficulty() {
        let (cx, cy) = hetero(600, 1);
        let model = |f: &[f32]| f[0] as f64;
        let lw = LocallyWeightedConformal::calibrate(
            model,
            oracle_difficulty,
            AbsoluteResidual,
            &cx,
            &cy,
            0.1,
            1e-6,
        );
        let easy = lw.interval(&[0.5]);
        let hard = lw.interval(&[9.0]);
        assert!(
            hard.width() > 4.0 * easy.width(),
            "hard {}, easy {}",
            hard.width(),
            easy.width()
        );
    }

    #[test]
    fn maintains_coverage_on_heteroscedastic_holdout() {
        let (cx, cy) = hetero(800, 2);
        let (tx, ty) = hetero(800, 3);
        let model = |f: &[f32]| f[0] as f64;
        let lw = LocallyWeightedConformal::calibrate(
            model,
            oracle_difficulty,
            AbsoluteResidual,
            &cx,
            &cy,
            0.1,
            1e-6,
        );
        let covered = tx
            .iter()
            .zip(&ty)
            .filter(|(x, &y)| lw.interval(x).contains(y))
            .count() as f64
            / tx.len() as f64;
        assert!(covered >= 0.87, "coverage {covered}");
    }

    #[test]
    fn tighter_than_split_conformal_on_easy_queries() {
        use crate::split::SplitConformal;
        let (cx, cy) = hetero(800, 4);
        let model = |f: &[f32]| f[0] as f64;
        let lw = LocallyWeightedConformal::calibrate(
            model,
            oracle_difficulty,
            AbsoluteResidual,
            &cx,
            &cy,
            0.1,
            1e-6,
        );
        let scp = SplitConformal::calibrate(model, AbsoluteResidual, &cx, &cy, 0.1);
        // On the easiest queries the adaptive interval is much tighter.
        assert!(lw.interval(&[0.2]).width() < 0.5 * scp.interval(&[0.2]).width());
    }

    #[test]
    fn difficulty_floor_prevents_collapse() {
        let (cx, cy) = hetero(200, 5);
        let model = |f: &[f32]| f[0] as f64;
        // A broken difficulty model that claims everything is trivially easy.
        let broken = |_: &[f32]| 0.0;
        let lw = LocallyWeightedConformal::calibrate(
            model,
            broken,
            AbsoluteResidual,
            &cx,
            &cy,
            0.1,
            0.5,
        );
        assert_eq!(lw.difficulty(&[3.0]), 0.5);
        assert!(lw.interval(&[3.0]).width() > 0.0);
    }

    #[test]
    fn try_calibrate_degrades_and_floors_nan_difficulty() {
        use crate::error::CardEstError;
        let model = |f: &[f32]| f[0] as f64;
        let nan_difficulty = |_: &[f32]| f64::NAN;
        let lw = LocallyWeightedConformal::try_calibrate(
            model,
            nan_difficulty,
            AbsoluteResidual,
            &[],
            &[],
            0.1,
            0.5,
        )
        .expect("empty calibration degrades, not errors");
        assert!(lw.delta().is_infinite());
        // NaN difficulty is floored to min_difficulty, never NaN.
        assert_eq!(lw.difficulty(&[1.0]), 0.5);
        assert!(matches!(
            LocallyWeightedConformal::try_calibrate(
                model,
                nan_difficulty,
                AbsoluteResidual,
                &[],
                &[],
                0.1,
                f64::NAN,
            ),
            Err(CardEstError::InvalidParameter(_))
        ));
        let (cx, cy) = hetero(100, 6);
        let lw = LocallyWeightedConformal::calibrate(
            model,
            oracle_difficulty,
            AbsoluteResidual,
            &cx,
            &cy,
            0.1,
            1e-6,
        );
        assert!(lw.try_interval(&[2.0]).is_ok());
        assert!(matches!(
            lw.try_interval(&[f32::NAN]),
            Err(CardEstError::NonFiniteScore { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "difficulty floor must be positive")]
    fn rejects_zero_floor() {
        let model = |_: &[f32]| 0.0;
        LocallyWeightedConformal::calibrate(
            model,
            model,
            AbsoluteResidual,
            &[vec![0.0]],
            &[0.0],
            0.1,
            0.0,
        );
    }
}
