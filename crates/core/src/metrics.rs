//! Evaluation metrics for prediction intervals and point estimates.

use crate::interval::PredictionInterval;
use crate::quantile::empirical_quantile;

/// Fraction of truths covered by their intervals.
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn coverage(intervals: &[PredictionInterval], truths: &[f64]) -> f64 {
    assert_eq!(intervals.len(), truths.len(), "interval/truth count mismatch");
    assert!(!intervals.is_empty(), "coverage of an empty set");
    intervals
        .iter()
        .zip(truths)
        .filter(|(iv, &y)| iv.contains(y))
        .count() as f64
        / intervals.len() as f64
}

/// Mean interval width.
pub fn mean_width(intervals: &[PredictionInterval]) -> f64 {
    assert!(!intervals.is_empty(), "mean width of an empty set");
    intervals.iter().map(PredictionInterval::width).sum::<f64>()
        / intervals.len() as f64
}

/// Median interval width.
pub fn median_width(intervals: &[PredictionInterval]) -> f64 {
    assert!(!intervals.is_empty(), "median width of an empty set");
    let widths: Vec<f64> = intervals.iter().map(PredictionInterval::width).collect();
    empirical_quantile(&widths, 0.5)
}

/// Q-error of one estimate (paper Eq. 1, with a positivity floor).
pub fn q_error(estimate: f64, truth: f64, floor: f64) -> f64 {
    let e = estimate.max(floor);
    let t = truth.max(floor);
    (e / t).max(t / e)
}

/// Named percentiles of a q-error (or any) sample — the shape Table I and
/// the accuracy discussions report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// 50th percentile (median).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes the standard percentile row over `values`.
///
/// # Panics
/// Panics on empty input.
pub fn percentiles(values: &[f64]) -> Percentiles {
    assert!(!values.is_empty(), "percentiles of an empty set");
    Percentiles {
        p50: empirical_quantile(values, 0.50),
        p90: empirical_quantile(values, 0.90),
        p95: empirical_quantile(values, 0.95),
        p99: empirical_quantile(values, 0.99),
        max: values.iter().copied().fold(f64::MIN, f64::max),
    }
}

/// A per-method evaluation summary over a test workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalReport {
    /// Empirical coverage.
    pub coverage: f64,
    /// Mean width.
    pub mean_width: f64,
    /// Median width.
    pub median_width: f64,
}

/// Builds the summary of intervals against truths.
pub fn interval_report(
    intervals: &[PredictionInterval],
    truths: &[f64],
) -> IntervalReport {
    IntervalReport {
        coverage: coverage(intervals, truths),
        mean_width: mean_width(intervals),
        median_width: median_width(intervals),
    }
}

/// Ratio of two methods' mean widths — the §V-D "JK-CV+ is 83–96% of S-CP"
/// style comparison.
pub fn width_ratio(a: &[PredictionInterval], b: &[PredictionInterval]) -> f64 {
    mean_width(a) / mean_width(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> PredictionInterval {
        PredictionInterval::new(lo, hi)
    }

    #[test]
    fn coverage_counts_containment() {
        let ivs = [iv(0.0, 1.0), iv(0.0, 1.0), iv(5.0, 6.0), iv(0.0, 10.0)];
        let ys = [0.5, 2.0, 5.5, 10.0];
        assert_eq!(coverage(&ivs, &ys), 0.75);
    }

    #[test]
    fn widths_average_correctly() {
        let ivs = [iv(0.0, 1.0), iv(0.0, 3.0)];
        assert_eq!(mean_width(&ivs), 2.0);
        let ivs = [iv(0.0, 1.0), iv(0.0, 3.0), iv(0.0, 100.0)];
        assert_eq!(median_width(&ivs), 3.0);
    }

    #[test]
    fn q_error_is_symmetric_and_floored() {
        assert_eq!(q_error(10.0, 100.0, 1.0), 10.0);
        assert_eq!(q_error(100.0, 10.0, 1.0), 10.0);
        assert_eq!(q_error(0.0, 5.0, 1.0), 5.0);
        assert_eq!(q_error(3.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn percentiles_are_ordered() {
        let values: Vec<f64> = (1..=1000).map(f64::from).collect();
        let p = percentiles(&values);
        assert!(p.p50 <= p.p90 && p.p90 <= p.p95 && p.p95 <= p.p99 && p.p99 <= p.max);
        assert_eq!(p.max, 1000.0);
        assert!((p.p90 - 900.0).abs() <= 1.0);
    }

    #[test]
    fn report_and_ratio_compose() {
        let a = [iv(0.0, 1.0), iv(0.0, 1.0)];
        let b = [iv(0.0, 2.0), iv(0.0, 2.0)];
        let r = interval_report(&a, &[0.5, 0.6]);
        assert_eq!(r.coverage, 1.0);
        assert_eq!(r.mean_width, 1.0);
        assert_eq!(width_ratio(&a, &b), 0.5);
    }

    #[test]
    #[should_panic(expected = "empty set")]
    fn coverage_rejects_empty() {
        coverage(&[], &[]);
    }

    #[test]
    fn q_error_floor_rescues_degenerate_inputs() {
        // Zero and negative estimates (a raw NN output can be either) are
        // lifted to the floor instead of producing 0 or a negative ratio.
        assert_eq!(q_error(0.0, 100.0, 1.0), 100.0);
        assert_eq!(q_error(-7.0, 100.0, 1.0), 100.0);
        assert_eq!(q_error(100.0, 0.0, 1.0), 100.0);
        assert_eq!(q_error(-2.0, -3.0, 1.0), 1.0);
        // Both at the floor: perfect score, not 0/0.
        assert_eq!(q_error(0.0, 0.0, 1e-6), 1.0);
        // The result is always >= 1 and finite for finite inputs.
        for &(e, t) in &[(0.0, 1.0), (1e-12, 1e12), (5.0, 5.0), (-1.0, 2.0)] {
            let q = q_error(e, t, 1e-9);
            assert!(q >= 1.0 && q.is_finite(), "q_error({e}, {t}) = {q}");
        }
    }

    #[test]
    fn coverage_treats_nan_truth_as_miss_in_finite_intervals() {
        // A NaN truth fails every comparison, so a finite interval misses it;
        // coverage stays a well-defined fraction rather than NaN.
        let ivs = [iv(0.0, 1.0), iv(0.0, 1.0)];
        let c = coverage(&ivs, &[f64::NAN, 0.5]);
        assert_eq!(c, 0.5);
    }

    #[test]
    fn widths_of_nan_constructed_intervals_are_infinite_not_nan() {
        // NaN endpoints degrade to conservative infinities at construction,
        // so width aggregates are +inf (honestly useless) instead of NaN
        // (silently poisonous).
        let ivs = [iv(f64::NAN, 1.0), iv(0.0, 1.0)];
        assert_eq!(mean_width(&ivs), f64::INFINITY);
        let ivs = [iv(0.0, f64::NAN), iv(0.0, 1.0), iv(0.0, 2.0)];
        assert!(median_width(&ivs).is_finite(), "median resists one bad interval");
    }
}
