//! Asymmetric split conformal prediction.
//!
//! Split conformal with the absolute residual score forces a symmetric
//! interval even when the model errs mostly in one direction — and learned
//! cardinality estimators systematically *under*-estimate range queries
//! (paper §I, citing [61]). Calibrating the two tails separately on *signed*
//! residuals (at `α/2` each) recovers the asymmetry CQR gets from quantile
//! heads, without touching the model at all.

use crate::interval::PredictionInterval;
use crate::quantile::conformal_quantile;
use crate::regressor::Regressor;

/// Two-sided split conformal on signed residuals: the interval is
/// `[ŷ − δ_hi_resid⁻, ŷ + δ_hi_resid⁺]` with each tail calibrated at α/2.
#[derive(Debug, Clone)]
pub struct AsymmetricSplitConformal<M> {
    model: M,
    delta_low: f64,  // quantile of (ŷ - y): how far truth falls below ŷ...
    delta_high: f64, // quantile of (y - ŷ): how far truth exceeds ŷ
    alpha: f64,
}

impl<M: Regressor> AsymmetricSplitConformal<M> {
    /// Calibrates both tails at `alpha / 2` each (total miscoverage ≤ α by a
    /// union bound).
    ///
    /// # Panics
    /// Panics on an empty calibration set, mismatched lengths, or `alpha`
    /// outside `(0, 1)`.
    pub fn calibrate(model: M, calib_x: &[Vec<f32>], calib_y: &[f64], alpha: f64) -> Self {
        assert_eq!(calib_x.len(), calib_y.len(), "calibration set length mismatch");
        assert!(!calib_x.is_empty(), "empty calibration set");
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
        let mut under = Vec::with_capacity(calib_x.len()); // ŷ - y
        let mut over = Vec::with_capacity(calib_x.len()); // y - ŷ
        for (x, &y) in calib_x.iter().zip(calib_y) {
            let y_hat = model.predict(x);
            under.push(y_hat - y);
            over.push(y - y_hat);
        }
        let half = alpha / 2.0;
        AsymmetricSplitConformal {
            model,
            delta_low: conformal_quantile(&under, half),
            delta_high: conformal_quantile(&over, half),
            alpha,
        }
    }

    /// Downward margin (how far the truth may fall below the estimate).
    pub fn delta_low(&self) -> f64 {
        self.delta_low
    }

    /// Upward margin (how far the truth may exceed the estimate).
    pub fn delta_high(&self) -> f64 {
        self.delta_high
    }

    /// The miscoverage level.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The wrapped model's point estimate.
    pub fn predict(&self, features: &[f32]) -> f64 {
        self.model.predict(features)
    }

    /// The asymmetric interval `[ŷ − δ_low, ŷ + δ_high]`.
    pub fn interval(&self, features: &[f32]) -> PredictionInterval {
        let y_hat = self.model.predict(features);
        PredictionInterval::new(y_hat - self.delta_low, y_hat + self.delta_high)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Skewed noise: the model only ever under-estimates (y >= ŷ).
    fn skewed(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f32>> =
            (0..n).map(|_| vec![rng.gen_range(0.0..1.0f32)]).collect();
        let y: Vec<f64> =
            x.iter().map(|f| f[0] as f64 + rng.gen_range(0.0..1.0)).collect();
        (x, y)
    }

    #[test]
    fn margins_reflect_error_skew() {
        let (cx, cy) = skewed(800, 1);
        let model = |f: &[f32]| f[0] as f64;
        let ac = AsymmetricSplitConformal::calibrate(model, &cx, &cy, 0.1);
        assert!(
            ac.delta_high() > 5.0 * ac.delta_low().abs().max(1e-3),
            "upward margin {} should dwarf downward {}",
            ac.delta_high(),
            ac.delta_low()
        );
        // Downward margin can even be negative: the interval starts above ŷ.
        assert!(ac.delta_low() < 0.2);
    }

    #[test]
    fn covers_skewed_holdout() {
        let (cx, cy) = skewed(800, 2);
        let (tx, ty) = skewed(800, 3);
        let model = |f: &[f32]| f[0] as f64;
        let ac = AsymmetricSplitConformal::calibrate(model, &cx, &cy, 0.1);
        let covered = tx
            .iter()
            .zip(&ty)
            .filter(|(f, &y)| ac.interval(f).contains(y))
            .count() as f64
            / tx.len() as f64;
        assert!(covered >= 0.88, "coverage {covered}");
    }

    #[test]
    fn tighter_than_symmetric_on_skewed_errors() {
        use crate::score::AbsoluteResidual;
        use crate::split::SplitConformal;
        let (cx, cy) = skewed(800, 4);
        let model = |f: &[f32]| f[0] as f64;
        let ac = AsymmetricSplitConformal::calibrate(model, &cx, &cy, 0.1);
        let sc = SplitConformal::calibrate(model, AbsoluteResidual, &cx, &cy, 0.1);
        let probe = [0.5f32];
        assert!(
            ac.interval(&probe).width() < sc.interval(&probe).width(),
            "asymmetric {} vs symmetric {}",
            ac.interval(&probe).width(),
            sc.interval(&probe).width()
        );
    }

    #[test]
    fn symmetric_noise_gives_near_symmetric_margins() {
        let mut rng = StdRng::seed_from_u64(5);
        let cx: Vec<Vec<f32>> =
            (0..800).map(|_| vec![rng.gen_range(0.0..1.0f32)]).collect();
        let cy: Vec<f64> =
            cx.iter().map(|f| f[0] as f64 + rng.gen_range(-0.5..0.5)).collect();
        let model = |f: &[f32]| f[0] as f64;
        let ac = AsymmetricSplitConformal::calibrate(model, &cx, &cy, 0.1);
        assert!((ac.delta_low() - ac.delta_high()).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "empty calibration set")]
    fn rejects_empty_calibration() {
        let model = |_: &[f32]| 0.0;
        AsymmetricSplitConformal::calibrate(model, &[], &[], 0.1);
    }
}
